"""The job service: queue leases, receipts, workers, and stress tests.

Covers the tentpole (claim-by-rename queue, lease reclaim, exactly-once
receipts, worker pools, the ``--via-jobs`` sweep path with resume) and
the multiprocessing stress cases the concurrency bugfixes exist for:
one cache key and one ledger hammered by concurrent writers, and a
queue surviving SIGKILLed workers with per-job attempt counts.
"""

import dataclasses
import json
import multiprocessing
import os
import signal

import pytest

from repro.errors import JobError
from repro.experiments.runner import (
    ExperimentConfig,
    clear_cache,
    run_benchmark,
)
from repro.experiments.sweeps import sweep_interval_sizes
from repro.jobs import (
    JobQueue,
    JobReceipt,
    JobResult,
    benchmark_job_spec,
    collect_run,
    decode_experiment_config,
    encode_experiment_config,
    ensure_default_executors,
    execute_record,
    job_id_for,
    record_job_metrics,
    register_executor,
    run_worker,
    run_worker_pool,
    submit_benchmark,
)
from repro.jobs import service as job_service
from repro.observability import metrics
from repro.observability.ledger import RunLedger
from repro.runtime import ProfileCache, runtime_session
from repro.runtime.cache import cache_from_root
from repro.simpoint.simpoint import SimPointConfig

_FORK = multiprocessing.get_context("fork")

#: Fast experiment settings for the end-to-end job tests.
_FAST_CONFIG = ExperimentConfig(
    interval_size=40_000, simpoint=SimPointConfig(max_k=3, n_init=2)
)


# -- module-level executors (workers fork, so plain globals work) -----

_SCRATCH = {"dir": None}


def _double(payload):
    return JobResult(value=payload["x"] * 2)


def _record_execution(payload):
    """Touch a unique per-execution file so tests can count executions."""
    path = os.path.join(
        _SCRATCH["dir"], f"exec-{payload['x']}-{os.getpid()}"
    )
    open(path, "w").close()
    return JobResult(value=payload["x"])


def _fail(payload):
    raise ValueError(f"cannot process {payload['x']}")


def _kill_self(payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _kill_once_then_double(payload):
    marker = os.path.join(_SCRATCH["dir"], f"killed-{payload['x']}")
    if not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return JobResult(value=payload["x"] * 2)


@pytest.fixture
def scratch(tmp_path):
    _SCRATCH["dir"] = str(tmp_path)
    yield tmp_path
    _SCRATCH["dir"] = None


def _expire_lease(queue, job_id):
    """Backdate a lease's embedded expiry stamp (the leaseholder died)."""
    lease = queue.active_dir / f"{job_id}.json"
    record = json.loads(lease.read_text())
    record["lease_expires_at"] = 0.0
    lease.write_text(json.dumps(record))


class TestJobQueue:
    def test_submit_is_idempotent_and_content_addressed(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        first = queue.submit("double", {"x": 3})
        second = queue.submit("double", {"x": 3})
        other = queue.submit("double", {"x": 4})
        assert first == second == job_id_for("double", {"x": 3})
        assert first != other
        assert queue.pending_ids() == sorted([first, other])

    def test_claim_lease_release_cycle(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        job_id = queue.submit("double", {"x": 1})
        record = queue.claim("w0")
        assert record["id"] == job_id and record["attempt"] == 0
        assert queue.pending_ids() == [] and queue.active_ids() == [job_id]
        assert queue.claim("w1") is None  # nothing left to claim
        queue.release(job_id)
        assert queue.is_drained()

    def test_reclaim_requeues_expired_lease_with_bumped_attempt(
        self, tmp_path
    ):
        queue = JobQueue(tmp_path / "q", lease_seconds=0.01)
        job_id = queue.submit("double", {"x": 1})
        queue.claim("w0")
        _expire_lease(queue, job_id)  # the leaseholder died long ago
        assert queue.reclaim_expired() == 1
        record = queue.claim("w1")
        assert record["attempt"] == 1

    def test_reclaim_exhausts_after_max_attempts(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_seconds=0.01, max_attempts=2)
        job_id = queue.submit("double", {"x": 1})
        for _ in range(2):
            if queue.pending_ids():
                queue.claim("w")
            _expire_lease(queue, job_id)
            queue.reclaim_expired()
        receipt = queue.receipt(job_id)
        assert receipt.status == "exhausted"
        assert receipt.attempt == 2
        assert queue.is_drained()

    def test_lease_clock_survives_coarse_mtime(self, tmp_path):
        """The lease expiry lives in the record, not the file mtime.

        Filesystems with coarse (or skewed) timestamps used to make a
        freshly claimed lease look ancient — ``reclaim_expired``
        compared ``time.time()`` against ``st_mtime``. The claim now
        stamps ``lease_expires_at`` inside the active record, so a
        backdated mtime must NOT expire a live lease.
        """
        queue = JobQueue(tmp_path / "q", lease_seconds=60.0)
        job_id = queue.submit("double", {"x": 1})
        record = queue.claim("w0")
        assert record["leased_by"] == "w0"
        assert record["lease_expires_at"] > record["leased_at"]
        lease = queue.active_dir / f"{job_id}.json"
        os.utime(lease, (0, 0))  # coarse/skewed filesystem clock
        assert queue.reclaim_expired() == 0
        assert queue.active_ids() == [job_id]
        # The embedded stamp is the only clock that expires a lease...
        _expire_lease(queue, job_id)
        assert queue.reclaim_expired() == 1
        assert queue.pending_ids() == [job_id]
        # ...and force-reclaim still ignores every clock.
        queue.claim("w1")
        assert queue.reclaim_expired(force=True) == 1
        assert queue.pending_ids() == [job_id]

    def test_receipts_are_exactly_once(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        first = JobReceipt(
            job_id="a" * 64, kind="k", status="ok", attempt=1
        )
        second = JobReceipt(
            job_id="a" * 64, kind="k", status="failed", attempt=2
        )
        assert queue.write_receipt(first) is True
        assert queue.write_receipt(second) is False
        assert queue.receipt("a" * 64).status == "ok"

    def test_submit_after_ok_receipt_is_a_noop(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        job_id = queue.submit("double", {"x": 5})
        record = queue.claim("w")
        register_executor("double", _double, replace=True)
        execute_record(queue, record, "w")
        assert queue.submit("double", {"x": 5}) == job_id
        assert queue.pending_ids() == []

    def test_retry_requeues_failed_jobs_only(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        register_executor("fail", _fail, replace=True)
        job_id = queue.submit("fail", {"x": 9})
        execute_record(queue, queue.claim("w"), "w")
        assert queue.receipt(job_id).status == "failed"
        # Terminal without retry=True ...
        queue.submit("fail", {"x": 9})
        assert queue.pending_ids() == []
        # ... requeued with it.
        queue.submit("fail", {"x": 9}, retry=True)
        assert queue.pending_ids() == [job_id]
        assert queue.receipt(job_id) is None

    def test_artifact_roundtrip_and_hash(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        digest = queue.store_artifact("b" * 64, {"answer": 42})
        assert len(digest) == 64
        assert queue.load_artifact("b" * 64) == {"answer": 42}
        with pytest.raises(JobError, match="no artifact"):
            queue.load_artifact("c" * 64)

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(JobError):
            JobQueue(tmp_path / "q", lease_seconds=0)
        with pytest.raises(JobError):
            JobQueue(tmp_path / "q", max_attempts=0)
        with pytest.raises(JobError):
            JobReceipt(job_id="x", kind="k", status="bogus", attempt=1)
        with pytest.raises(JobError):
            JobReceipt(job_id="x", kind="k", status="ok", attempt=0)


class TestWorkers:
    def test_run_worker_drains_and_writes_receipts(self, tmp_path):
        register_executor("double", _double, replace=True)
        queue = JobQueue(tmp_path / "q")
        ids = [queue.submit("double", {"x": x}) for x in range(5)]
        assert run_worker(queue, "w0") == 5
        assert queue.is_drained()
        for x, job_id in zip(range(5), ids):
            receipt = queue.receipt(job_id)
            assert receipt.ok and receipt.attempt == 1
            assert receipt.worker == "w0"
            assert queue.load_artifact(job_id) == x * 2

    def test_executor_exception_is_a_failed_receipt_not_a_retry(
        self, tmp_path
    ):
        register_executor("fail", _fail, replace=True)
        queue = JobQueue(tmp_path / "q")
        job_id = queue.submit("fail", {"x": 7})
        assert run_worker(queue, "w0") == 1
        receipt = queue.receipt(job_id)
        assert receipt.status == "failed"
        assert "ValueError: cannot process 7" in receipt.error
        assert queue.is_drained()  # deterministic failures do not loop

    def test_unknown_kind_is_a_failed_receipt(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        job_id = queue.submit("no-such-kind-ever", {"x": 1})
        run_worker(queue, "w0")
        receipt = queue.receipt(job_id)
        assert receipt.status == "failed"
        assert "no executor registered" in receipt.error

    def test_pool_executes_each_job_exactly_once(self, tmp_path, scratch):
        register_executor("record", _record_execution, replace=True)
        queue = JobQueue(tmp_path / "q", lease_seconds=300)
        ids = [queue.submit("record", {"x": x}) for x in range(12)]
        run_worker_pool(queue, 3)
        assert queue.is_drained()
        for x, job_id in zip(range(12), ids):
            executions = list(scratch.glob(f"exec-{x}-*"))
            assert len(executions) == 1, (
                f"job {x} executed {len(executions)} times"
            )
            assert queue.receipt(job_id).ok

    def test_pool_survives_sigkilled_worker_and_records_attempts(
        self, tmp_path, scratch
    ):
        register_executor("kill-once", _kill_once_then_double, replace=True)
        queue = JobQueue(tmp_path / "q", lease_seconds=300)
        ids = {x: queue.submit("kill-once", {"x": x}) for x in (3, 4)}
        run_worker_pool(queue, 2)
        assert queue.is_drained()
        for x, job_id in ids.items():
            receipt = queue.receipt(job_id)
            assert receipt.ok
            assert receipt.attempt == 2  # first execution was SIGKILLed
            assert queue.load_artifact(job_id) == x * 2

    def test_pool_exhausts_a_job_that_always_kills_its_worker(
        self, tmp_path
    ):
        register_executor("kill-always", _kill_self, replace=True)
        queue = JobQueue(tmp_path / "q", max_attempts=2)
        job_id = queue.submit("kill-always", {"x": 1})
        run_worker_pool(queue, 2)
        receipt = queue.receipt(job_id)
        assert receipt.status == "exhausted"
        assert receipt.attempt == 2
        assert queue.is_drained()

    def test_record_job_metrics_derives_counters_from_receipts(
        self, tmp_path, scratch
    ):
        register_executor("kill-once", _kill_once_then_double, replace=True)
        register_executor("fail", _fail, replace=True)
        queue = JobQueue(tmp_path / "q")
        ids = [
            queue.submit("kill-once", {"x": 1}),
            queue.submit("fail", {"x": 2}),
        ]
        run_worker_pool(queue, 2)
        with metrics.scoped_registry() as local:
            tallies = record_job_metrics(queue, ids)
        assert tallies == {
            "completed": 1, "failed": 1, "exhausted": 0, "retries": 1,
        }
        counters = local.snapshot()["counters"]
        assert counters["jobs.completed"] == 1
        assert counters["jobs.failed"] == 1
        assert counters["jobs.retries"] == 1


class TestExperimentJobs:
    def test_config_payload_roundtrip(self):
        config = ExperimentConfig(
            interval_size=50_000,
            simpoint=SimPointConfig(max_k=4, n_init=2),
            match_confidence=0.9,
        )
        payload = encode_experiment_config(config)
        json.dumps(payload)  # must be pure JSON
        assert decode_experiment_config(payload) == config

    def test_non_default_memory_config_rejected(self):
        import dataclasses

        from repro.cmpsim.config import TABLE1_CONFIG

        level = dataclasses.replace(
            TABLE1_CONFIG.levels[0], capacity=1 << 14
        )
        custom = dataclasses.replace(
            TABLE1_CONFIG,
            levels=(level,) + TABLE1_CONFIG.levels[1:],
        )
        with pytest.raises(JobError, match="memory"):
            encode_experiment_config(
                ExperimentConfig(memory=custom)
            )

    def test_malformed_payload_rejected(self):
        with pytest.raises(JobError, match="malformed"):
            decode_experiment_config({"interval_size": 1})

    def test_benchmark_job_bit_identical_to_direct_run(self, tmp_path):
        ensure_default_executors()
        cache = ProfileCache(tmp_path / "cache")
        queue = JobQueue(tmp_path / "q")
        with runtime_session(cache=cache):
            clear_cache()
            job_id = submit_benchmark(queue, "art", _FAST_CONFIG)
            run_worker_pool(queue, 2)
            via_job = collect_run(queue, job_id)
            clear_cache()
            direct = run_benchmark("art", _FAST_CONFIG, jobs=1)
        clear_cache()
        assert via_job == direct
        receipt = queue.receipt(job_id)
        assert receipt.ok and receipt.attempt == 1
        assert receipt.config_fingerprint is not None
        assert receipt.input_hashes["benchmark"]
        assert receipt.artifact_hashes["result"]

    def test_sweep_via_jobs_bit_identical_and_resumable(
        self, tmp_path, monkeypatch
    ):
        sizes = [30_000, 60_000]
        cache = ProfileCache(tmp_path / "cache")
        queue = JobQueue(tmp_path / "q")
        with runtime_session(cache=cache):
            clear_cache()
            direct = sweep_interval_sizes(
                "art", sizes, _FAST_CONFIG, jobs=1
            )
            clear_cache()
            via_jobs = sweep_interval_sizes(
                "art", sizes, _FAST_CONFIG, jobs=2, via_jobs=queue
            )
            assert via_jobs == direct  # bit-identical error tables
            # Resume: every cell has an ok receipt, so a rerun must not
            # execute anything — a bomb executor proves it.
            def _bomb(payload):
                raise AssertionError("resumed sweep re-executed a cell")

            monkeypatch.setattr(job_service, "_execute_benchmark", _bomb)
            clear_cache()
            resumed = sweep_interval_sizes(
                "art", sizes, _FAST_CONFIG, jobs=2, via_jobs=queue
            )
        clear_cache()
        assert resumed == direct
        for size in sizes:
            kind, payload = benchmark_job_spec(
                "art",
                dataclasses.replace(_FAST_CONFIG, interval_size=size),
            )
            receipt = queue.receipt(job_id_for(kind, payload))
            assert receipt.ok and receipt.attempt == 1

    def test_sweep_via_jobs_recovers_from_midrun_worker_kill(
        self, tmp_path, scratch, monkeypatch
    ):
        """The acceptance scenario: a worker is SIGKILLed mid-sweep; the
        queue reclaims its lease, retries, records the attempt count,
        and the final tables are bit-identical to the direct path."""
        sizes = [30_000, 60_000]
        cache = ProfileCache(tmp_path / "cache")
        queue = JobQueue(tmp_path / "q", lease_seconds=300)
        real_executor = job_service._execute_benchmark

        def _kill_first_execution(payload):
            # Kill only the 30k cell's first execution — keyed to one
            # job so exactly one receipt ends with attempt == 2.
            marker = os.path.join(_SCRATCH["dir"], "sweep-killed")
            if payload["config"]["interval_size"] == 30_000 and (
                not os.path.exists(marker)
            ):
                open(marker, "w").close()
                os.kill(os.getpid(), signal.SIGKILL)
            return real_executor(payload)

        with runtime_session(cache=cache):
            clear_cache()
            direct = sweep_interval_sizes(
                "art", sizes, _FAST_CONFIG, jobs=1
            )
            clear_cache()
            monkeypatch.setattr(
                job_service, "_execute_benchmark", _kill_first_execution
            )
            via_jobs = sweep_interval_sizes(
                "art", sizes, _FAST_CONFIG, jobs=2, via_jobs=queue
            )
        clear_cache()
        assert via_jobs == direct
        receipts = queue.receipts()
        assert len(receipts) == 2 and all(r.ok for r in receipts)
        attempts = sorted(r.attempt for r in receipts)
        assert attempts == [1, 2]  # exactly one job survived a SIGKILL


# -- multiprocessing stress: shared cache key and shared ledger -------


def _hammer_cache_key(root, barrier_dir, index):
    """One writer process: everyone races get_or_compute on ONE key."""
    cache = cache_from_root(root)
    value = cache.get_or_compute(
        "stress", ("shared-key",), lambda: {"payload": list(range(200))}
    )
    assert value == {"payload": list(range(200))}
    open(os.path.join(barrier_dir, f"done-{index}"), "w").close()


def _hammer_ledger(path, run_id):
    from tests.test_observability_ledger import _manifest

    RunLedger(path).log_manifest(_manifest(run_id))


def _race_duplicate_run_id(path, index, outcome_dir):
    from repro.errors import FileFormatError
    from tests.test_observability_ledger import _manifest

    try:
        RunLedger(path).log_manifest(_manifest("contested-run"))
    except FileFormatError:
        return
    open(os.path.join(outcome_dir, f"won-{index}"), "w").close()


class TestConcurrencyStress:
    def test_one_cache_key_hammered_by_concurrent_writers(self, tmp_path):
        """Many processes race one key — including over a stale entry
        that unpickles to a missing module — and all must succeed."""
        root = tmp_path / "cache"
        cache = ProfileCache(root)
        # Seed the address with a stale pickle referencing a module
        # that no longer exists (the refactor scenario).
        digest_path = None
        cache.get_or_compute("stress", ("shared-key",), lambda: "seed")
        digest_path = next(root.rglob("*.pkl"))
        digest_path.write_bytes(b"cgone_module_xyz\nKlass\n.")
        workers = [
            _FORK.Process(
                target=_hammer_cache_key,
                args=(str(root), str(tmp_path), index),
            )
            for index in range(6)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(worker.exitcode == 0 for worker in workers)
        assert len(list(tmp_path.glob("done-*"))) == 6
        # The stale entry was evicted and rewritten with a good value.
        fresh = cache_from_root(root)
        assert fresh.get_or_compute(
            "stress", ("shared-key",), lambda: "unused"
        ) == {"payload": list(range(200))}

    def test_one_ledger_hammered_by_concurrent_writers(self, tmp_path):
        """No interleaved or corrupt lines under concurrent appends."""
        path = tmp_path / "ledger.jsonl"
        writers = [
            _FORK.Process(
                target=_hammer_ledger, args=(str(path), f"run-{index:03d}")
            )
            for index in range(8)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join()
        assert all(writer.exitcode == 0 for writer in writers)
        # Every line must parse on its own (entries() raises on any
        # corrupt line) and every run id must have landed exactly once.
        entries = RunLedger(path).entries()
        assert sorted(e.run_id for e in entries) == [
            f"run-{index:03d}" for index in range(8)
        ]
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_duplicate_run_id_refusal_is_race_free(self, tmp_path):
        """Exactly one of many concurrent same-run-id logs may win."""
        path = tmp_path / "ledger.jsonl"
        outcome = tmp_path / "outcome"
        outcome.mkdir()
        racers = [
            _FORK.Process(
                target=_race_duplicate_run_id,
                args=(str(path), index, str(outcome)),
            )
            for index in range(6)
        ]
        for racer in racers:
            racer.start()
        for racer in racers:
            racer.join()
        assert all(racer.exitcode == 0 for racer in racers)
        entries = RunLedger(path).entries()
        assert [e.run_id for e in entries] == ["contested-run"]
        assert len(list(outcome.glob("won-*"))) == 1
