"""The accelerated clustering engine: pruning, fan-out, and reuse.

Three independent accelerations ride under ``weighted_kmeans`` /
``choose_clustering`` and all of them promise *bit-identical* results
to the plain serial reference kernel:

- Hamerly-style bound pruning (``use_pruned``, default on),
- parallel restart fan-out (``jobs``), and
- content-keyed clustering reuse (the ``"clustering"`` cache kind).

This suite enforces the promise with hypothesis-driven equivalence
checks on tie-heavy integer grids (where a sloppy pruning margin or a
nondeterministic reduction would surface first), exercises the
empty-cluster repair path explicitly, and covers the cache key schema,
the escape hatches, and the observability surface in the style of
``tests/test_simcache.py``.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ClusteringError
from repro.jobs.receipts import JobReceipt
from repro.observability import metrics
from repro.observability.diff import (
    DriftThresholds,
    check_drift,
    diff_runs,
)
from repro.observability.inspect import render_manifest
from repro.observability.ledger import entry_from_manifest
from repro.observability.manifest import build_manifest, validate_manifest
from repro.observability.metrics import Registry
from repro.runtime import ProfileCache, fingerprint, runtime_session
from repro.simpoint.clustercache import (
    CLUSTERING_KIND,
    cached_choose_clustering,
    clustering_key,
)
from repro.simpoint.kmeans import (
    _lloyd,
    _lloyd_pruned,
    _point_norms,
    weighted_kmeans,
)
from repro.simpoint.select import (
    choose_clustering,
    choose_clustering_binary_search,
)
from repro.simpoint.simpoint import SimPointConfig, run_simpoint
from repro.simpoint.vectors import Interval

_SETTINGS = settings(deadline=None, max_examples=40)

#: Tie-heavy inputs: small integer grids force duplicate points,
#: equidistant centroid choices, and zero-distance draws in k-means++ —
#: exactly where pruning margins and argmin tie-breaks could diverge.
_grid_points = st.builds(
    lambda rows, seed: np.asarray(rows, dtype=np.float64)
    if rows
    else np.asarray([[0.0, 0.0]]),
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=4),
        ).map(list),
        min_size=2,
        max_size=24,
    ),
    seed=st.just(0),
)


def _assert_same_result(a, b):
    assert np.array_equal(a.centroids, b.centroids)
    assert np.array_equal(a.labels, b.labels)
    assert a.inertia == b.inertia
    assert a.iterations == b.iterations


def _assert_same_choice(a, b):
    assert a.k == b.k
    assert a.chosen_index == b.chosen_index
    assert a.bic_scores == b.bic_scores
    _assert_same_result(a.result, b.result)


class TestPrunedEquivalence:
    @_SETTINGS
    @given(
        points=_grid_points,
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=3),
        weighted=st.booleans(),
    )
    def test_pruned_matches_reference(self, points, k, seed, weighted):
        k = min(k, points.shape[0])
        weights = None
        if weighted:
            rng = np.random.default_rng(seed)
            weights = rng.integers(1, 6, size=points.shape[0]).astype(
                np.float64
            )
        reference = weighted_kmeans(
            points, k, weights, n_init=2, seed=seed, use_pruned=False
        )
        pruned = weighted_kmeans(
            points, k, weights, n_init=2, seed=seed, use_pruned=True
        )
        _assert_same_result(reference, pruned)

    def test_duplicate_points_and_exact_ties(self):
        # Every point duplicated; centroids land exactly on points, so
        # distances tie at 0 and the stale-test margin must force a
        # recompute rather than trust a stale bound.
        points = np.repeat(
            np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]), 4, axis=0
        )
        for k in (1, 2, 3):
            reference = weighted_kmeans(
                points, k, n_init=3, seed=5, use_pruned=False
            )
            pruned = weighted_kmeans(
                points, k, n_init=3, seed=5, use_pruned=True
            )
            _assert_same_result(reference, pruned)

    def test_empty_cluster_repair_path(self):
        # Two far-apart duplicate piles and k=3: one centroid must go
        # empty mid-iteration and be repaired. Drive the kernels
        # directly so the repair branch is exercised no matter what
        # k-means++ would have seeded.
        points = np.array(
            [[0.0, 0.0]] * 5 + [[100.0, 0.0]] * 5, dtype=np.float64
        )
        weights = np.ones(10)
        # Seed all three centroids inside one pile: iteration one
        # leaves at least one of them empty.
        init = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]], dtype=np.float64
        )
        norms = _point_norms(points)
        reference = _lloyd(points, weights, init.copy(), 100,
                           point_norms=norms)
        pruned = _lloyd_pruned(points, weights, init.copy(), 100,
                               point_norms=norms)
        _assert_same_result(reference, pruned)
        assert set(np.unique(reference.labels)) == {0, 1, 2}

    def test_pruning_counters_tick(self):
        rng = np.random.default_rng(11)
        points = rng.normal(size=(200, 8))
        with metrics.scoped_registry() as local:
            weighted_kmeans(points, 6, n_init=2, seed=1, use_pruned=True)
        counters = local.snapshot()["counters"]
        assert counters["simpoint.kmeans_pruned_points"] > 0
        assert counters["simpoint.kmeans_distance_rows"] > 0

    def test_env_hatch_disables_pruning(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PRUNED_KMEANS", "1")
        rng = np.random.default_rng(3)
        points = rng.normal(size=(60, 4))
        with metrics.scoped_registry() as local:
            weighted_kmeans(points, 4, n_init=2, seed=2)
        counters = local.snapshot()["counters"]
        assert "simpoint.kmeans_pruned_points" not in counters


class TestParallelEquivalence:
    @_SETTINGS
    @given(
        points=_grid_points,
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_parallel_restarts_match_serial(self, points, k, seed):
        k = min(k, points.shape[0])
        serial = weighted_kmeans(points, k, n_init=3, seed=seed, jobs=1)
        fanned = weighted_kmeans(points, k, n_init=3, seed=seed, jobs=4)
        _assert_same_result(serial, fanned)

    def test_choose_clustering_parallel_matches_serial(self):
        rng = np.random.default_rng(23)
        points = rng.normal(size=(40, 5))
        weights = rng.integers(1, 5, size=40).astype(np.float64)
        serial = choose_clustering(points, weights, max_k=5, n_init=2,
                                   seed=9, jobs=1)
        fanned = choose_clustering(points, weights, max_k=5, n_init=2,
                                   seed=9, jobs=4)
        _assert_same_choice(serial, fanned)

    def test_binary_search_pruned_matches_reference(self):
        rng = np.random.default_rng(31)
        points = rng.normal(size=(50, 4))
        weights = np.ones(50)
        reference = choose_clustering_binary_search(
            points, weights, max_k=8, n_init=2, seed=4, use_pruned=False
        )
        pruned = choose_clustering_binary_search(
            points, weights, max_k=8, n_init=2, seed=4, use_pruned=True,
            jobs=2,
        )
        _assert_same_choice(reference, pruned)


class TestKeySchema:
    def _points(self):
        rng = np.random.default_rng(17)
        return rng.normal(size=(12, 3)), np.ones(12)

    def test_key_is_stable(self):
        points, weights = self._points()

        def key():
            return fingerprint(clustering_key(
                points, weights, max_k=5, bic_threshold=0.9, n_init=5,
                max_iter=100, seed=0, k_search="exhaustive",
            ))

        assert key() == key()

    def test_key_tracks_every_input(self):
        points, weights = self._points()
        base_kwargs = dict(max_k=5, bic_threshold=0.9, n_init=5,
                           max_iter=100, seed=0, k_search="exhaustive")
        base = clustering_key(points, weights, **base_kwargs)
        variants = [
            # Different projected-BBV content.
            clustering_key(points + 1.0, weights, **base_kwargs),
            # Different interval weights.
            clustering_key(points, weights * 2.0, **base_kwargs),
            # Every scalar knob.
            clustering_key(points, weights,
                           **{**base_kwargs, "max_k": 6}),
            clustering_key(points, weights,
                           **{**base_kwargs, "bic_threshold": 0.8}),
            clustering_key(points, weights,
                           **{**base_kwargs, "n_init": 4}),
            clustering_key(points, weights,
                           **{**base_kwargs, "max_iter": 99}),
            clustering_key(points, weights, **{**base_kwargs, "seed": 1}),
            clustering_key(points, weights,
                           **{**base_kwargs, "k_search": "binary"}),
        ]
        digests = {fingerprint(variant) for variant in variants}
        assert fingerprint(base) not in digests
        assert len(digests) == len(variants)

    def test_jobs_and_pruning_are_not_part_of_the_key(self, tmp_path):
        # Bit-identity makes any kernel/fan-out combination a valid
        # answer for any other, so the key deliberately omits both.
        points, weights = self._points()
        cache = ProfileCache(tmp_path)
        kwargs = dict(max_k=4, n_init=2, cache=cache)
        pruned = cached_choose_clustering(
            points, weights, use_pruned=True, jobs=4, **kwargs
        )
        reference = cached_choose_clustering(
            points, weights, use_pruned=False, jobs=1, **kwargs
        )
        assert pickle.dumps(pruned) == pickle.dumps(reference)
        row = cache.stats.by_kind[CLUSTERING_KIND]
        assert (row.hits, row.misses) == (1, 1)


class TestCachedChooseClustering:
    def _points(self):
        rng = np.random.default_rng(29)
        return rng.normal(size=(20, 4)), np.ones(20)

    def test_warm_choice_bit_identical_and_counted(self, tmp_path):
        points, weights = self._points()
        kwargs = dict(max_k=4, n_init=2, seed=3)
        direct = choose_clustering(points, weights, **kwargs)
        cache = ProfileCache(tmp_path)
        with metrics.scoped_registry() as local:
            cold = cached_choose_clustering(points, weights, cache=cache,
                                            **kwargs)
            warm = cached_choose_clustering(points, weights, cache=cache,
                                            **kwargs)
        assert pickle.dumps(direct) == pickle.dumps(cold)
        assert pickle.dumps(direct) == pickle.dumps(warm)
        row = cache.stats.by_kind[CLUSTERING_KIND]
        assert (row.hits, row.misses) == (1, 1)
        counters = local.snapshot()["counters"]
        assert counters["cache.clustering.hits"] == 1
        assert counters["cache.clustering.misses"] == 1

    def test_invalid_k_search_rejected(self, tmp_path):
        points, weights = self._points()
        with pytest.raises(ClusteringError, match="k_search"):
            cached_choose_clustering(
                points, weights, max_k=3, k_search="linear",
                cache=ProfileCache(tmp_path),
            )

    def test_escape_hatches_disable_reuse(self, tmp_path, monkeypatch):
        points, weights = self._points()
        cache = ProfileCache(tmp_path)
        kwargs = dict(max_k=3, n_init=2, cache=cache)
        # Per-call veto.
        cached_choose_clustering(points, weights,
                                 use_clustering_cache=False, **kwargs)
        assert CLUSTERING_KIND not in cache.stats.by_kind
        # Process default (the CLI's --no-clustering-cache lands here).
        with runtime_session(clustering_cache=False):
            cached_choose_clustering(points, weights, **kwargs)
        assert CLUSTERING_KIND not in cache.stats.by_kind
        # Environment veto.
        monkeypatch.setenv("REPRO_NO_CLUSTERING_CACHE", "1")
        cached_choose_clustering(points, weights, **kwargs)
        assert CLUSTERING_KIND not in cache.stats.by_kind
        monkeypatch.delenv("REPRO_NO_CLUSTERING_CACHE")
        # And with every hatch open, reuse resumes.
        cached_choose_clustering(points, weights, **kwargs)
        assert cache.stats.by_kind[CLUSTERING_KIND].misses == 1

    def test_run_simpoint_reuses_warm_clusterings(self, tmp_path):
        rng = np.random.default_rng(41)
        intervals = [
            Interval(
                index=index,
                instructions=10_000,
                bbv={
                    block: 1000.0 * (1 + rng.uniform())
                    for block in range((index % 3) * 4, (index % 3) * 4 + 4)
                },
            )
            for index in range(30)
        ]
        config = SimPointConfig(max_k=4, n_init=2)
        direct = run_simpoint(intervals, config)
        cache = ProfileCache(tmp_path)
        with metrics.scoped_registry() as local:
            cold = run_simpoint(intervals, config, cache=cache)
            warm = run_simpoint(intervals, config, cache=cache)
        assert cold == direct == warm
        counters = local.snapshot()["counters"]
        assert counters["cache.clustering.misses"] == 1
        assert counters["cache.clustering.hits"] == 1


class TestObservabilitySurface:
    def _manifest(self, run_id, *, hits, misses):
        registry = Registry()
        if hits:
            registry.counter("cache.clustering.hits").inc(hits)
        if misses:
            registry.counter("cache.clustering.misses").inc(misses)
        return build_manifest(
            total_seconds=1.0,
            stages={"cluster": 1.0},
            metrics_snapshot=registry.snapshot(),
            config_fingerprint="fp-clustering",
            run_id=run_id,
        )

    def test_manifest_carries_clustering_block(self):
        manifest = self._manifest("run-cluster", hits=3, misses=1)
        validate_manifest(manifest)
        assert manifest["cache"]["clustering"] == {
            "hits": 3, "misses": 1, "stale_evictions": 0,
            "reuse_ratio": 0.75,
        }

    def test_ledger_flattens_clustering_block(self):
        entry = entry_from_manifest(
            self._manifest("run-flat", hits=3, misses=1)
        )
        assert entry.cache["clustering.reuse_ratio"] == 0.75
        assert entry.cache["clustering.misses"] == 1

    def test_min_clustering_hit_rate_gate(self):
        old = entry_from_manifest(
            self._manifest("run-a", hits=4, misses=0)
        )
        warm = entry_from_manifest(
            self._manifest("run-b", hits=4, misses=0)
        )
        cold = entry_from_manifest(
            self._manifest("run-c", hits=0, misses=4)
        )
        # Off by default: a cold candidate is not drift.
        assert check_drift(diff_runs(old, cold)) == []
        limits = DriftThresholds(min_clustering_hit_rate=0.5)
        assert check_drift(diff_runs(old, warm), limits) == []
        violations = check_drift(diff_runs(old, cold), limits)
        assert [v.kind for v in violations] == ["performance"]
        assert violations[0].delta.field == "clustering.reuse_ratio"

    def test_inspect_renders_clustering_line(self):
        manifest = self._manifest("run-render", hits=1, misses=1)
        rendered = render_manifest(manifest)
        assert (
            "clustering reuse: 1 of 2 clustering lookups (50.0%)"
            in rendered
        )

    def test_receipt_roundtrips_clustering_tallies(self):
        receipt = JobReceipt(
            job_id="job-1", kind="benchmark", status="ok", attempt=1,
            clustering_cache={"hits": 2, "misses": 1},
        )
        loaded = JobReceipt.from_record(receipt.to_record())
        assert loaded.clustering_cache == {"hits": 2, "misses": 1}
        # Receipts written before the field existed still load.
        record = receipt.to_record()
        del record["clustering_cache"]
        assert JobReceipt.from_record(record).clustering_cache == {}
