"""Whole-pipeline property tests over random programs.

Hypothesis generates arbitrary small programs; every property below
must hold for all of them — these are the invariants the paper's
technique rests on.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS
from repro.core.mapping import interval_boundaries
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.core.weights import measure_interval_instructions
from repro.execution.engine import ExecutionEngine, run_binary
from repro.execution.events import ExecutionConsumer, iteration_profile
from repro.profiling.bbv import collect_fli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile

from tests.strategies import programs

_SETTINGS = settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


class _ReferenceBBVCollector(ExecutionConsumer):
    """Brute-force FLI BBV reference: unrolls every span per execution.

    Used to verify the production collector's bulk-span arithmetic.
    Attribution convention matches the production collector: spans are
    attributed per block in body order (block totals), boundary splits
    at exact instruction counts.
    """

    def __init__(self, binary, interval_size):
        self._binary = binary
        self._size = interval_size
        self._cur = {}
        self._cur_instr = 0
        self.intervals = []

    def _add(self, block_id, instructions):
        while instructions > 0:
            space = self._size - self._cur_instr
            take = min(space, instructions)
            self._cur[block_id] = self._cur.get(block_id, 0.0) + take
            self._cur_instr += take
            instructions -= take
            if self._cur_instr == self._size:
                self.intervals.append((self._cur_instr, self._cur))
                self._cur = {}
                self._cur_instr = 0

    def on_block(self, block_id, execs=1):
        size = self._binary.blocks[block_id].instructions
        for _ in range(execs):
            self._add(block_id, size)

    def on_iterations(self, loop, iterations):
        profile = iteration_profile(self._binary, loop)
        for block_id in profile.body_blocks:
            size = self._binary.blocks[block_id].instructions
            self._add(block_id, size * iterations)
        self._add(
            profile.branch_block,
            profile.branch_instructions * iterations,
        )

    def finish(self):
        if self._cur_instr > 0:
            self.intervals.append((self._cur_instr, self._cur))


class TestCompilationInvariants:
    @_SETTINGS
    @given(program=programs())
    def test_all_targets_compile_and_run(self, program):
        binaries = compile_standard_binaries(program)
        for binary in binaries.values():
            totals = run_binary(binary)
            assert totals.instructions > 0

    @_SETTINGS
    @given(program=programs())
    def test_unoptimized_never_executes_fewer_instructions(self, program):
        binaries = compile_standard_binaries(program)
        by_label = {
            target.label: run_binary(binary).instructions
            for target, binary in binaries.items()
        }
        assert by_label["32u"] > by_label["32o"]
        assert by_label["64u"] > by_label["64o"]


class TestProfilingInvariants:
    @_SETTINGS
    @given(program=programs())
    def test_bulk_bbv_collector_matches_reference(self, program):
        binaries = compile_standard_binaries(program)
        binary = binaries[STANDARD_TARGETS[0]]
        production = collect_fli_bbvs(binary, 5_000)
        reference = _ReferenceBBVCollector(binary, 5_000)
        ExecutionEngine(binary).run(reference)
        assert len(production) == len(reference.intervals)
        for interval, (instr, bbv) in zip(production, reference.intervals):
            assert interval.instructions == instr
            assert interval.bbv == bbv

    @_SETTINGS
    @given(program=programs())
    def test_profile_totals_match_engine(self, program):
        binaries = compile_standard_binaries(program)
        for binary in binaries.values():
            profile = collect_call_branch_profile(binary)
            assert (
                profile.total_instructions
                == run_binary(binary).instructions
            )


class TestCrossBinaryInvariants:
    @_SETTINGS
    @given(program=programs())
    def test_mappable_counts_equal_everywhere(self, program):
        """Every mappable point's count matches its declared total in
        every binary — the invariant coordinates depend on."""
        binaries = compile_standard_binaries(program)
        ordered = [binaries[target] for target in STANDARD_TARGETS]
        profiles = [
            (binary, collect_call_branch_profile(binary))
            for binary in ordered
        ]
        marker_set, _ = find_mappable_points(profiles)

        class Counter(ExecutionConsumer):
            def __init__(self, binary, table):
                self.binary = binary
                self.map = table.block_to_marker()
                self.counts = {}

            def on_block(self, block_id, execs=1):
                marker = self.map.get(block_id)
                if marker is not None:
                    self.counts[marker] = (
                        self.counts.get(marker, 0) + execs
                    )

            def on_iterations(self, loop, iterations):
                profile = iteration_profile(self.binary, loop)
                marker = self.map.get(profile.branch_block)
                if marker is not None:
                    self.counts[marker] = (
                        self.counts.get(marker, 0) + iterations
                    )

        declared = {
            point.marker_id: point.total_count
            for point in marker_set.points
        }
        for binary in ordered:
            counter = Counter(binary, marker_set.table_for(binary.name))
            ExecutionEngine(binary).run(counter)
            assert counter.counts == declared

    @_SETTINGS
    @given(program=programs())
    def test_vli_boundaries_locatable_in_every_binary(self, program):
        """Boundaries built on the primary exist in every binary, and
        the per-binary interval counts partition the whole run."""
        binaries = compile_standard_binaries(program)
        ordered = [binaries[target] for target in STANDARD_TARGETS]
        profiles = [
            (binary, collect_call_branch_profile(binary))
            for binary in ordered
        ]
        marker_set, _ = find_mappable_points(profiles)
        intervals = collect_vli_bbvs(ordered[0], marker_set, 5_000)
        assert intervals, "a run always produces at least one interval"
        boundaries = interval_boundaries(intervals)
        for binary in ordered:
            counts = measure_interval_instructions(
                binary, marker_set, boundaries
            )
            assert len(counts) == len(intervals)
            assert sum(counts) == run_binary(binary).instructions

    @_SETTINGS
    @given(program=programs())
    def test_vli_intervals_meet_target_and_conserve_mass(self, program):
        binaries = compile_standard_binaries(program)
        ordered = [binaries[target] for target in STANDARD_TARGETS]
        profiles = [
            (binary, collect_call_branch_profile(binary))
            for binary in ordered
        ]
        marker_set, _ = find_mappable_points(profiles)
        intervals = collect_vli_bbvs(ordered[0], marker_set, 5_000)
        totals = run_binary(ordered[0])
        assert (
            sum(i.instructions for i in intervals) == totals.instructions
        )
        for interval in intervals[:-1]:
            assert interval.instructions >= 5_000
        for interval in intervals:
            assert interval.bbv_total() == pytest.approx(
                interval.instructions
            )
