"""Deeper hierarchy tests: writeback chains, non-inclusion, prefetch
interactions, and conservation properties under random access streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cmpsim.config import (
    CacheLevelConfig,
    MemoryConfig,
    PREFETCH_CONFIG,
)
from repro.cmpsim.hierarchy import AccessResult, MemoryHierarchy

#: A tiny hierarchy where evictions are easy to force.
TINY = MemoryConfig(
    levels=(
        CacheLevelConfig("l1", 4 * 64, 1, 64, hit_latency=1),   # 4 sets
        CacheLevelConfig("l2", 8 * 64, 1, 64, hit_latency=5),   # 8 sets
        CacheLevelConfig("l3", 16 * 64, 1, 64, hit_latency=9),  # 16 sets
    ),
    dram_latency=50,
)


class TestWritebackChains:
    def test_dirty_line_survives_into_l2_after_l1_eviction(self):
        hierarchy = MemoryHierarchy(TINY)
        hierarchy.access(0, write=True)    # dirty in L1 (set 0)
        hierarchy.access(4, write=False)   # same L1 set -> evict 0 dirty
        # 0 was written back into L2; it must hit there, still dirty.
        assert hierarchy.access(0, write=False) == AccessResult.L2

    def test_dirty_eviction_cascade_reaches_dram(self):
        hierarchy = MemoryHierarchy(TINY)
        hierarchy.access(0, write=True)
        # March conflicting lines through every level: L1 set 0 is
        # lines = 0 mod 4; L2 set 0 is 0 mod 8; L3 set 0 is 0 mod 16.
        for line in (16, 32, 48, 64, 80, 96, 112, 128):
            hierarchy.access(line, write=True)
        assert hierarchy.dram_writebacks >= 1

    def test_non_inclusion_l1_can_hold_lines_l2_lost(self):
        """A line can live in L1 after L2 has evicted it — the defining
        possibility of a non-inclusive hierarchy. Needs an L1 with more
        ways per aliasing group than L2: L1 4-sets/2-way vs L2
        8-sets/1-way, so lines 0 and 8 coexist in L1 set 0 but conflict
        in L2 set 0."""
        config = MemoryConfig(
            levels=(
                CacheLevelConfig("l1", 4 * 2 * 64, 2, 64, hit_latency=1),
                CacheLevelConfig("l2", 8 * 64, 1, 64, hit_latency=5),
                CacheLevelConfig("l3", 32 * 64, 1, 64, hit_latency=9),
            ),
            dram_latency=50,
        )
        hierarchy = MemoryHierarchy(config)
        hierarchy.access(0, write=False)
        hierarchy.access(8, write=False)  # evicts 0 from L2, not L1
        assert hierarchy.caches[0].contains(0)
        assert not hierarchy.caches[1].contains(0)
        # And the demand access is serviced by L1 regardless.
        assert hierarchy.access(0, write=False) == AccessResult.L1


class TestPrefetchInteractions:
    def test_prefetch_does_not_perturb_l1(self):
        hierarchy = MemoryHierarchy(PREFETCH_CONFIG)
        for line in range(0, 64, 2):
            hierarchy.access(line, write=False)
        l1 = hierarchy.caches[0]
        for line in range(1, 64, 2):
            assert not l1.contains(line)

    def test_prefetch_counter_matches_l1_misses(self):
        hierarchy = MemoryHierarchy(PREFETCH_CONFIG)
        for line in range(100):
            hierarchy.access(line, write=False)
        assert hierarchy.prefetches == hierarchy.caches[0].stats.misses

    def test_reset_clears_prefetch_counter(self):
        hierarchy = MemoryHierarchy(PREFETCH_CONFIG)
        hierarchy.access(0, write=False)
        hierarchy.reset()
        assert hierarchy.prefetches == 0


class TestConservationProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.lists(
        st.tuples(st.integers(0, 255), st.booleans()),
        min_size=1, max_size=400,
    ))
    def test_accesses_conserve_down_the_hierarchy(self, stream):
        """Demand accesses at level N+1 equal misses at level N, and
        DRAM reads equal LLC misses — for arbitrary access streams."""
        hierarchy = MemoryHierarchy(TINY)
        for line, write in stream:
            hierarchy.access(line, write)
        l1, l2, l3 = hierarchy.caches
        assert l1.stats.accesses == len(stream)
        assert l2.stats.accesses == l1.stats.misses
        assert l3.stats.accesses == l2.stats.misses
        assert hierarchy.dram_reads == l3.stats.misses

    @settings(deadline=None, max_examples=30)
    @given(st.lists(
        st.tuples(st.integers(0, 255), st.booleans()),
        min_size=1, max_size=400,
    ))
    def test_servicing_level_is_consistent_with_stats(self, stream):
        hierarchy = MemoryHierarchy(TINY)
        serviced = {0: 0, 1: 0, 2: 0, 3: 0}
        for line, write in stream:
            serviced[hierarchy.access(line, write)] += 1
        assert serviced[0] == hierarchy.caches[0].stats.hits
        assert serviced[1] == hierarchy.caches[1].stats.hits
        assert serviced[2] == hierarchy.caches[2].stats.hits
        assert serviced[3] == hierarchy.dram_reads

    @settings(deadline=None, max_examples=20)
    @given(st.lists(
        st.tuples(st.integers(0, 255), st.booleans()),
        min_size=1, max_size=300,
    ))
    def test_prefetch_never_hurts_l2_hit_rate_on_replay(self, stream):
        """Replaying the same stream, the prefetching hierarchy's L1
        misses are serviced at least as often above DRAM as the plain
        one's, for forward-local streams (here: the DRAM service count
        never exceeds the plain hierarchy's by more than the number of
        prefetch-displaced lines — bounded sanity, not strict
        dominance)."""
        plain = MemoryHierarchy(TINY)
        fetching = MemoryHierarchy(
            MemoryConfig(
                levels=TINY.levels,
                dram_latency=TINY.dram_latency,
                next_line_prefetch=True,
            )
        )
        plain_dram = sum(
            1 for line, write in stream
            if plain.access(line, write) == 3
        )
        prefetch_dram = sum(
            1 for line, write in stream
            if fetching.access(line, write) == 3
        )
        # Prefetching can displace useful lines in the tiny hierarchy,
        # but never pathologically: bounded by the prefetch count.
        assert prefetch_dram <= plain_dram + fetching.prefetches
