"""Determinism snapshot tests.

The whole reproduction promises bit-identical results across runs and
machines. These tests pin structural fingerprints of the generated
suite and pipeline outputs; if a change alters them, EXPERIMENTS.md
numbers are stale and must be regenerated (that is the intent of a
failure here, not a bug per se).
"""

import hashlib
import json

import pytest

from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS
from repro.execution.engine import run_binary
from repro.programs.ir import Compute, Loop, iter_program_statements
from repro.programs.suite import benchmark_names, build_benchmark


def _program_fingerprint(name: str) -> str:
    """Stable structural hash of a generated program."""
    program = build_benchmark(name)
    parts = []
    for proc_name in sorted(program.procedures):
        proc = program.procedures[proc_name]
        parts.append(f"proc {proc_name} inlinable={proc.inlinable}")
    for proc_name, stmt in iter_program_statements(program):
        if isinstance(stmt, Compute):
            behavior = stmt.behavior
            extra = (
                f"{behavior.kind.value}:{behavior.footprint}:"
                f"{behavior.refs_per_exec}"
                if behavior else "none"
            )
            parts.append(
                f"{proc_name}/{stmt.name}:compute:{stmt.instructions}:"
                f"{extra}"
            )
        elif isinstance(stmt, Loop):
            parts.append(
                f"{proc_name}/{stmt.name}:loop:{stmt.trips}:"
                f"{stmt.input_scaled}:{stmt.unrollable}:{stmt.splittable}"
            )
    digest = hashlib.sha256("\n".join(parts).encode()).hexdigest()
    return digest[:16]


class TestSuiteFingerprints:
    def test_fingerprints_stable_within_process(self):
        for name in ("art", "gcc", "applu"):
            assert _program_fingerprint(name) == _program_fingerprint(name)

    def test_all_benchmarks_have_distinct_fingerprints(self):
        fingerprints = {
            _program_fingerprint(name) for name in benchmark_names()
        }
        assert len(fingerprints) == len(benchmark_names())


class TestExecutionTotalsSnapshot:
    """Exact instruction totals of art's four binaries.

    These totals are load-bearing for EXPERIMENTS.md; update the
    snapshot (and regenerate EXPERIMENTS.md) when intentionally
    changing the suite, compiler, or inputs.
    """

    EXPECTED = {
        "32u": 9_117_235,
        "32o": 3_495_742,
        "64u": 8_041_725,
        "64o": 3_043_057,
    }

    def test_art_instruction_totals(self):
        binaries = compile_standard_binaries(build_benchmark("art"))
        measured = {
            target.label: run_binary(binaries[target]).instructions
            for target in STANDARD_TARGETS
        }
        assert measured == self.EXPECTED


class TestPipelineSnapshot:
    def test_art_cross_binary_shape(self):
        """Marker and interval counts for art's default pipeline."""
        from repro.core.pipeline import (
            CrossBinaryConfig,
            run_cross_binary_simpoint,
        )

        binaries = compile_standard_binaries(build_benchmark("art"))
        ordered = [binaries[target] for target in STANDARD_TARGETS]
        result = run_cross_binary_simpoint(ordered, CrossBinaryConfig())
        assert result.marker_set.n_points == 20
        assert len(result.intervals) == 90
        assert result.simpoint.k == 9
