"""Tests for the confidence-scored fuzzy marker-matching fallback.

The exact stages (symbol, debug line, count signature) are covered by
``test_core_matching``; this file covers stage 4: canonical-name
scoring, threshold resolution, graceful degradation, and the hard
bit-identity guarantee at the default threshold of 1.0.
"""

import dataclasses

import pytest

from repro.core.markers import MappablePoint, MarkerKind
from repro.core.matching import (
    canonical_loop_name,
    canonical_symbol_name,
    find_mappable_points,
)
from repro.errors import CacheError, MatchingError
from repro.profiling.callbranch import collect_call_branch_profile
from repro.runtime.config import (
    resolve_match_confidence,
    runtime_session,
    set_match_confidence,
)


@pytest.fixture(scope="module")
def micro_profiles(micro_binary_list):
    return [
        (binary, collect_call_branch_profile(binary))
        for binary in micro_binary_list
    ]


class TestCanonicalNames:
    @pytest.mark.parametrize(
        "decorated, plain",
        [
            ("solve", "solve"),
            ("solve.part.1", "solve"),
            ("solve.isra.0", "solve"),
            ("solve.constprop.12", "solve"),
            ("solve.cold.3", "solve"),
            ("solve.isra.0.constprop.2", "solve"),
            ("solve.part.1.part.2", "solve"),
        ],
    )
    def test_symbol_decorations_stripped(self, decorated, plain):
        assert canonical_symbol_name(decorated) == plain

    def test_unrelated_dots_survive(self):
        # Only the known clone decorations strip; other dotted names
        # are real symbols and must not collapse together.
        assert canonical_symbol_name("ns.solve") == "ns.solve"

    @pytest.mark.parametrize(
        "mangled, canonical",
        [
            ("pde0_loop", "pde0_loop"),
            ("solver_call__pde0_loop", "pde0_loop"),
            ("solver_call_pde0__pde0_loop__a", "pde0_loop"),
            ("s1_call__kern_b_loop__b", "kern_b_loop"),
            ("kern_b_loop.part.1", "kern_b_loop"),
        ],
    )
    def test_loop_inlining_and_split_decorations_stripped(
        self, mangled, canonical
    ):
        assert canonical_loop_name(mangled) == canonical


class TestThresholdResolution:
    def test_default_is_exact_only(self, monkeypatch):
        monkeypatch.delenv("REPRO_MATCH_CONFIDENCE", raising=False)
        assert resolve_match_confidence() == 1.0

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATCH_CONFIDENCE", "0.9")
        assert resolve_match_confidence(0.6) == 0.6

    def test_environment_beats_process_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATCH_CONFIDENCE", "0.8")
        with runtime_session(match_confidence=0.5):
            assert resolve_match_confidence() == 0.8

    def test_process_default_applies(self, monkeypatch):
        monkeypatch.delenv("REPRO_MATCH_CONFIDENCE", raising=False)
        with runtime_session(match_confidence=0.7):
            assert resolve_match_confidence() == 0.7
        assert resolve_match_confidence() == 1.0

    def test_set_match_confidence_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_MATCH_CONFIDENCE", raising=False)
        set_match_confidence(0.65)
        try:
            assert resolve_match_confidence() == 0.65
        finally:
            set_match_confidence(None)
        assert resolve_match_confidence() == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.2, 1.5])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(CacheError):
            set_match_confidence(bad)
        with pytest.raises(CacheError):
            resolve_match_confidence(bad)

    def test_malformed_environment_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATCH_CONFIDENCE", "not-a-number")
        with pytest.raises(CacheError):
            resolve_match_confidence()


class TestConfidenceModel:
    def test_point_confidence_validated(self):
        with pytest.raises(MatchingError):
            MappablePoint(
                marker_id=0, kind=MarkerKind.PROCEDURE,
                key=("proc", "x"), total_count=1, confidence=0.0,
            )
        with pytest.raises(MatchingError):
            MappablePoint(
                marker_id=0, kind=MarkerKind.PROCEDURE,
                key=("proc", "x"), total_count=1, confidence=1.2,
            )

    def test_exact_points_default_to_full_confidence(self):
        point = MappablePoint(
            marker_id=0, kind=MarkerKind.PROCEDURE,
            key=("proc", "x"), total_count=1,
        )
        assert point.confidence == 1.0


class TestFuzzyMatchingOnMicroProgram:
    def test_threshold_one_is_bit_identical(self, micro_profiles):
        exact_set, exact_report = find_mappable_points(micro_profiles)
        explicit_set, explicit_report = find_mappable_points(
            micro_profiles, match_confidence=1.0
        )
        assert explicit_set.points == exact_set.points
        assert explicit_report == exact_report
        assert exact_set.fuzzy_points() == ()
        assert exact_report.confidence_threshold == 1.0
        assert exact_report.min_confidence == 1.0

    def test_split_loop_recovered_at_low_threshold(self, micro_profiles):
        """kern_b_loop splits into equal-count same-line halves at O2 —
        the exact stages drop it, the fuzzy stage recovers its entry
        from the canonicalized fragment group."""
        exact_set, exact_report = find_mappable_points(micro_profiles)
        fuzzy_set, fuzzy_report = find_mappable_points(
            micro_profiles, match_confidence=0.6
        )
        assert fuzzy_set.n_points > exact_set.n_points
        keys = {point.key: point for point in fuzzy_set.fuzzy_points()}
        entry = keys[("fuzzy", "kern_b_loop", "entry")]
        assert entry.kind is MarkerKind.LOOP_ENTRY
        assert 0.6 <= entry.confidence < 1.0
        assert fuzzy_report.loops_matched_fuzzy >= 1
        assert fuzzy_report.min_confidence == pytest.approx(
            min(p.confidence for p in fuzzy_set.points)
        )

    def test_exact_prefix_unchanged_by_fuzzy_stage(self, micro_profiles):
        """Fuzzy markers append after the exact markers: lowering the
        threshold never renumbers or alters an exact match."""
        exact_set, _ = find_mappable_points(micro_profiles)
        fuzzy_set, _ = find_mappable_points(
            micro_profiles, match_confidence=0.6
        )
        assert fuzzy_set.points[: exact_set.n_points] == exact_set.points

    def test_coverage_improves_with_fuzzy_matches(self, micro_profiles):
        _, exact_report = find_mappable_points(micro_profiles)
        _, fuzzy_report = find_mappable_points(
            micro_profiles, match_confidence=0.6
        )
        assert (
            fuzzy_report.min_pair_coverage()
            > exact_report.min_pair_coverage()
        )
        assert exact_report.pair_coverage, "coverage recorded at 1.0 too"
        for pair in fuzzy_report.pair_coverage:
            assert 0.0 < pair.coverage <= 1.0

    def test_high_threshold_drops_low_confidence_match(
        self, micro_profiles
    ):
        """Between 0.72 (the fragment match's confidence) and 1.0 the
        candidate is found but rejected, and the report says why."""
        fuzzy_set, report = find_mappable_points(
            micro_profiles, match_confidence=0.95
        )
        assert ("fuzzy", "kern_b_loop", "entry") not in {
            point.key for point in fuzzy_set.points
        }
        assert report.low_confidence_dropped >= 1
        assert any(
            "below threshold" in detail
            for detail in report.dropped_details
        )

    def test_dropped_procedures_are_detailed(self, micro_profiles):
        """The inlined helper vanishes from optimized binaries; the
        report now names it instead of silently dropping it."""
        _, report = find_mappable_points(micro_profiles)
        assert any(
            detail.startswith("procedure helper: missing from")
            for detail in report.dropped_details
        )

    def test_environment_variable_enables_fuzzy_stage(
        self, micro_profiles, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MATCH_CONFIDENCE", "0.6")
        fuzzy_set, report = find_mappable_points(micro_profiles)
        assert report.confidence_threshold == 0.6
        assert fuzzy_set.fuzzy_points()

    def test_fuzzy_markers_fire_identically_across_binaries(
        self, micro_binary_list, micro_profiles
    ):
        """The count-equality invariant holds for fuzzy markers too:
        confidence scores identity risk, never count mismatch."""
        from repro.execution.engine import ExecutionEngine
        from repro.execution.events import (
            ExecutionConsumer,
            iteration_profile,
        )

        fuzzy_set, _ = find_mappable_points(
            micro_profiles, match_confidence=0.6
        )
        assert fuzzy_set.fuzzy_points()

        class MarkerCounter(ExecutionConsumer):
            def __init__(self, binary, table):
                self.binary = binary
                self.map = table.block_to_marker()
                self.counts = {}

            def on_block(self, block_id, execs=1):
                marker = self.map.get(block_id)
                if marker is not None:
                    self.counts[marker] = self.counts.get(marker, 0) + execs

            def on_iterations(self, loop, iterations):
                profile = iteration_profile(self.binary, loop)
                marker = self.map.get(profile.branch_block)
                if marker is not None:
                    self.counts[marker] = (
                        self.counts.get(marker, 0) + iterations
                    )

        all_counts = []
        for binary in micro_binary_list:
            counter = MarkerCounter(
                binary, fuzzy_set.table_for(binary.name)
            )
            ExecutionEngine(binary).run(counter)
            all_counts.append(counter.counts)
        for counts in all_counts[1:]:
            assert counts == all_counts[0]

    def test_deterministic_output(self, micro_profiles):
        a, report_a = find_mappable_points(
            micro_profiles, match_confidence=0.6
        )
        b, report_b = find_mappable_points(
            micro_profiles, match_confidence=0.6
        )
        assert a.points == b.points
        assert report_a == report_b


def _rename_procedure(binary, profile, old, new):
    """Inject a compiler-style symbol rename into one binary+profile."""
    procedures = dict(binary.procedures)
    procedures[new] = procedures.pop(old)
    symbols = frozenset(
        new if name == old else name for name in binary.symbols
    )
    renamed_binary = dataclasses.replace(
        binary, procedures=procedures, symbols=symbols
    )
    entries = dict(profile.procedure_entries)
    entries[new] = entries.pop(old)
    renamed_profile = dataclasses.replace(
        profile, procedure_entries=entries
    )
    return renamed_binary, renamed_profile


class TestInjectedSymbolRename:
    """A ``.part.N``-style clone decoration on one binary's symbol must
    not lose the procedure when fuzzy matching is enabled."""

    @pytest.fixture(scope="class")
    def renamed_profiles(self, micro_profiles):
        mutated = list(micro_profiles)
        mutated[1] = _rename_procedure(
            *mutated[1], "kern_a", "kern_a.part.1"
        )
        return mutated

    def test_exact_matching_loses_renamed_procedure(
        self, renamed_profiles
    ):
        marker_set, _ = find_mappable_points(renamed_profiles)
        assert ("proc", "kern_a") not in {
            point.key for point in marker_set.points
        }

    def test_fuzzy_matching_recovers_renamed_procedure(
        self, renamed_profiles
    ):
        marker_set, report = find_mappable_points(
            renamed_profiles, match_confidence=0.6
        )
        points = {point.key: point for point in marker_set.points}
        recovered = points[("fuzzy-proc", "kern_a")]
        assert recovered.kind is MarkerKind.PROCEDURE
        assert recovered.confidence >= 0.85
        assert report.procedures_matched_fuzzy == 1

    def test_anchors_cover_every_binary(self, renamed_profiles):
        marker_set, _ = find_mappable_points(
            renamed_profiles, match_confidence=0.6
        )
        points = {point.key: point for point in marker_set.points}
        marker_id = points[("fuzzy-proc", "kern_a")].marker_id
        for binary, _ in renamed_profiles:
            assert marker_id in marker_set.table_for(
                binary.name
            ).anchor_blocks


class TestAppluStyleInlinedSiblings:
    """The paper's Section 3.3 defeat case: applu's pde loops are
    inlined into equal-count call sites, which defeats both the
    debug-line stage (renamed call-site lines) and the count-signature
    stage (equal counts are ambiguous). The fuzzy stage recovers them
    from their canonical names."""

    @pytest.fixture(scope="class")
    def applu_profiles(self):
        from repro.compilation.compiler import compile_standard_binaries
        from repro.programs.suite import build_benchmark

        program = build_benchmark("applu")
        binaries = compile_standard_binaries(program)
        return [
            (binary, collect_call_branch_profile(binary))
            for binary in binaries.values()
        ]

    def test_pde_loops_recovered(self, applu_profiles):
        exact_set, _ = find_mappable_points(applu_profiles)
        fuzzy_set, report = find_mappable_points(
            applu_profiles, match_confidence=0.6
        )
        fuzzy_names = {
            point.key[1] for point in fuzzy_set.fuzzy_points()
        }
        assert {f"pde{i}_loop" for i in range(5)} <= fuzzy_names
        assert fuzzy_set.n_points > exact_set.n_points
        assert report.loops_matched_fuzzy >= 5
        assert fuzzy_set.points[: exact_set.n_points] == exact_set.points

    def test_coverage_reflects_recovery(self, applu_profiles):
        _, exact_report = find_mappable_points(applu_profiles)
        _, fuzzy_report = find_mappable_points(
            applu_profiles, match_confidence=0.6
        )
        assert (
            fuzzy_report.min_pair_coverage()
            - exact_report.min_pair_coverage()
            > 0.05
        )
