"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "nosuchbench"])

    def test_bad_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["pinpoints", "art", "--target", "128u"]
            )


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "wupwise" in out
        assert out.count("\n") >= 22  # header + 21 benchmarks

    def test_summary(self, capsys):
        assert main(["summary", "art"]) == 0
        out = capsys.readouterr().out
        assert "mappable points" in out
        assert "32u" in out and "64o" in out
        assert "speedup errors" in out

    def test_summary_detail(self, capsys):
        assert main(["summary", "art", "--detail"]) == 0
        out = capsys.readouterr().out
        assert "memory system, art/32u" in out
        assert "DRAM MPKI" in out
        assert "miss rate" in out

    def test_pinpoints_writes_files(self, tmp_path, capsys):
        assert main([
            "pinpoints", "art", "--target", "32o",
            "--output", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "simulation points" in out
        assert (tmp_path / "art_32o.simpoints").exists()
        assert (tmp_path / "art_32o.weights").exists()

    def test_regions_writes_file(self, tmp_path, capsys):
        assert main(["regions", "art", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mappable" in out
        assert (tmp_path / "art.regions").exists()

    def test_figures_json_export(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "results.json"
        assert main([
            "figures", "--benchmarks", "art", "--json", str(out_path),
        ]) == 0
        assert out_path.exists()
        payload = json.loads(out_path.read_text())
        assert set(payload["figures"]) == {
            "figure1", "figure2", "figure3", "figure4", "figure5",
        }
        assert "art" in payload["benchmarks"]

    def test_figures_subset(self, capsys):
        assert main(["figures", "--benchmarks", "art"]) == 0
        out = capsys.readouterr().out
        assert "Memory System Configuration" in out
        assert "Number of SimPoints" in out
        assert "Speedup error, cross platform" in out
        # gcc/apsi tables are skipped when those benchmarks are absent.
        assert "phase comparison" not in out
