"""Tests for repro.analysis: estimate, speedup, phases."""

import pytest

from repro.analysis.estimate import (
    MethodEstimate,
    estimate_from_points,
    relative_error,
    signed_relative_error,
)
from repro.analysis.phases import phase_table
from repro.analysis.speedup import speedup_comparison
from repro.cmpsim.simulator import IntervalStats
from repro.errors import SimulationError


def _stats(instructions, cpi):
    return IntervalStats(instructions=instructions,
                         cycles=instructions * cpi)


class TestErrors:
    def test_relative_error_symmetric_magnitude(self):
        assert relative_error(2.0, 1.0) == pytest.approx(0.5)
        assert relative_error(2.0, 3.0) == pytest.approx(0.5)

    def test_signed_error_direction(self):
        assert signed_relative_error(4.0, 3.0) == pytest.approx(0.25)
        assert signed_relative_error(4.0, 5.0) == pytest.approx(-0.25)

    def test_zero_true_value_rejected(self):
        with pytest.raises(SimulationError):
            relative_error(0.0, 1.0)
        with pytest.raises(SimulationError):
            signed_relative_error(0.0, 1.0)


class TestEstimateFromPoints:
    def test_weighted_average(self):
        intervals = [_stats(100, 2.0), _stats(100, 4.0), _stats(100, 6.0)]
        estimate = estimate_from_points(
            "b", "fli",
            point_weights=[(0, 0.5), (2, 0.5)],
            interval_stats=intervals,
            true_stats=_stats(300, 4.0),
        )
        assert estimate.estimated_cpi == pytest.approx(4.0)
        assert estimate.cpi_error == pytest.approx(0.0)

    def test_biased_estimate(self):
        intervals = [_stats(100, 2.0), _stats(100, 6.0)]
        estimate = estimate_from_points(
            "b", "vli",
            point_weights=[(0, 1.0)],
            interval_stats=intervals,
            true_stats=_stats(200, 4.0),
        )
        assert estimate.estimated_cpi == pytest.approx(2.0)
        assert estimate.cpi_error == pytest.approx(0.5)

    def test_estimated_cycles(self):
        intervals = [_stats(100, 2.0)]
        estimate = estimate_from_points(
            "b", "fli", [(0, 1.0)], intervals, _stats(1000, 2.5)
        )
        assert estimate.estimated_cycles == pytest.approx(2000.0)

    def test_weights_renormalized(self):
        intervals = [_stats(100, 2.0), _stats(100, 4.0)]
        estimate = estimate_from_points(
            "b", "fli", [(0, 2.0), (1, 2.0)], intervals, _stats(200, 3.0)
        )
        assert estimate.estimated_cpi == pytest.approx(3.0)

    def test_rejects_empty_points(self):
        with pytest.raises(SimulationError):
            estimate_from_points("b", "fli", [], [], _stats(1, 1.0))

    def test_rejects_out_of_range_interval(self):
        with pytest.raises(SimulationError, match="out of range"):
            estimate_from_points(
                "b", "fli", [(5, 1.0)], [_stats(10, 1.0)], _stats(10, 1.0)
            )


class TestSpeedup:
    def _estimate(self, name, method, true_cpi, est_cpi, instructions=1000):
        return MethodEstimate(
            binary_name=name,
            method=method,
            n_points=1,
            true_cpi=true_cpi,
            estimated_cpi=est_cpi,
            total_instructions=instructions,
            true_cycles=true_cpi * instructions,
        )

    def test_perfect_estimates_zero_error(self):
        baseline = self._estimate("a", "fli", 4.0, 4.0)
        improved = self._estimate("b", "fli", 2.0, 2.0)
        comparison = speedup_comparison(baseline, improved)
        assert comparison.true_speedup == pytest.approx(2.0)
        assert comparison.error == pytest.approx(0.0)

    def test_consistent_bias_cancels(self):
        """The paper's key insight: equal relative biases in both
        binaries cancel out of the speedup ratio."""
        baseline = self._estimate("a", "vli", 4.0, 4.0 * 0.9)
        improved = self._estimate("b", "vli", 2.0, 2.0 * 0.9)
        comparison = speedup_comparison(baseline, improved)
        assert comparison.error == pytest.approx(0.0)

    def test_inconsistent_bias_shows_up(self):
        baseline = self._estimate("a", "fli", 4.0, 4.0 * 1.2)
        improved = self._estimate("b", "fli", 2.0, 2.0 * 0.8)
        comparison = speedup_comparison(baseline, improved)
        assert comparison.error == pytest.approx(0.5)

    def test_different_instruction_counts(self):
        baseline = self._estimate("a", "fli", 2.0, 2.0, instructions=3000)
        improved = self._estimate("b", "fli", 3.0, 3.0, instructions=1000)
        comparison = speedup_comparison(baseline, improved)
        assert comparison.true_speedup == pytest.approx(2.0)

    def test_rejects_method_mismatch(self):
        baseline = self._estimate("a", "fli", 2.0, 2.0)
        improved = self._estimate("b", "vli", 2.0, 2.0)
        with pytest.raises(SimulationError):
            speedup_comparison(baseline, improved)


class TestPhaseTable:
    def test_basic_table(self):
        labels = [0, 0, 1, 1, 1]
        intervals = [
            _stats(100, 2.0), _stats(100, 4.0),
            _stats(100, 5.0), _stats(100, 5.0), _stats(100, 5.0),
        ]
        rows = phase_table(
            labels, intervals, point_intervals={0: 0, 1: 2}, top=3
        )
        assert len(rows) == 2
        # Phase 1 (3 intervals) outweighs phase 0 (2 intervals).
        assert rows[0].cluster == 1
        assert rows[0].weight == pytest.approx(0.6)
        assert rows[0].true_cpi == pytest.approx(5.0)
        assert rows[0].sp_cpi == pytest.approx(5.0)
        assert rows[0].cpi_error == pytest.approx(0.0)
        # Phase 0's representative (CPI 2.0) underestimates true 3.0.
        assert rows[1].true_cpi == pytest.approx(3.0)
        assert rows[1].cpi_error == pytest.approx(1 / 3)

    def test_top_truncates(self):
        labels = [0, 1, 2, 3]
        intervals = [_stats(100, 1.0)] * 4
        rows = phase_table(
            labels, intervals,
            point_intervals={0: 0, 1: 1, 2: 2, 3: 3},
            top=2,
        )
        assert len(rows) == 2
        assert [row.rank for row in rows] == [1, 2]

    def test_external_weights_override(self):
        labels = [0, 1]
        intervals = [_stats(100, 1.0), _stats(100, 2.0)]
        rows = phase_table(
            labels, intervals, point_intervals={0: 0, 1: 1},
            weights={0: 0.9, 1: 0.1},
        )
        assert rows[0].cluster == 0
        assert rows[0].weight == pytest.approx(0.9)

    def test_rejects_length_mismatch(self):
        with pytest.raises(SimulationError):
            phase_table([0], [], {0: 0})

    def test_rejects_missing_point(self):
        with pytest.raises(SimulationError, match="no simulation point"):
            phase_table([0], [_stats(10, 1.0)], {})
