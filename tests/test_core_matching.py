"""Tests for repro.core.markers and repro.core.matching."""

import pytest

from repro.core.markers import (
    MappablePoint,
    MarkerKind,
    MarkerSet,
    MarkerTable,
)
from repro.core.matching import find_mappable_points
from repro.errors import MatchingError
from repro.profiling.callbranch import collect_call_branch_profile


@pytest.fixture(scope="module")
def micro_marker_set(micro_binary_list):
    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in micro_binary_list
    ]
    return find_mappable_points(profiles)


class TestMarkerModel:
    def test_mappable_point_rejects_zero_count(self):
        with pytest.raises(MatchingError):
            MappablePoint(marker_id=0, kind=MarkerKind.PROCEDURE,
                          key=("proc", "x"), total_count=0)

    def test_marker_table_inverse(self):
        table = MarkerTable(binary_name="b", anchor_blocks={0: 10, 1: 20})
        assert table.block_to_marker() == {10: 0, 20: 1}

    def test_marker_table_rejects_shared_anchor(self):
        table = MarkerTable(binary_name="b", anchor_blocks={0: 10, 1: 10})
        with pytest.raises(MatchingError):
            table.block_to_marker()

    def test_marker_set_requires_anchor_per_binary(self):
        point = MappablePoint(marker_id=0, kind=MarkerKind.PROCEDURE,
                              key=("proc", "x"), total_count=1)
        table = MarkerTable(binary_name="b", anchor_blocks={})
        with pytest.raises(MatchingError, match="no anchors"):
            MarkerSet(points=(point,), tables={"b": table})

    def test_marker_set_lookups(self, micro_marker_set):
        marker_set, _ = micro_marker_set
        point = marker_set.points[0]
        assert marker_set.point(point.marker_id) == point
        with pytest.raises(MatchingError):
            marker_set.point(10_000)
        with pytest.raises(MatchingError):
            marker_set.table_for("nonexistent")


class TestMatchingOnMicroProgram:
    def test_non_inlined_procedures_match(self, micro_marker_set):
        marker_set, _ = micro_marker_set
        proc_names = {
            point.key[1]
            for point in marker_set.points_of_kind(MarkerKind.PROCEDURE)
        }
        # All non-inlinable procedures survive in all four binaries.
        assert {"main", "stage_0", "stage_1", "stage_2",
                "kern_a", "kern_b"} <= proc_names

    def test_inlined_helper_not_a_procedure_marker(self, micro_marker_set):
        marker_set, _ = micro_marker_set
        proc_names = {
            point.key[1]
            for point in marker_set.points_of_kind(MarkerKind.PROCEDURE)
        }
        assert "helper" not in proc_names

    def test_helper_loop_recovered_by_signature(self, micro_marker_set):
        marker_set, report = micro_marker_set
        assert report.loops_recovered_by_signature >= 1
        sig_points = [
            point for point in marker_set.points if point.key[0] == "sig"
        ]
        # helper_loop: 18 entries, 666 iterations.
        assert any(point.key[1] == 18 and point.key[2] == 666
                   for point in sig_points)

    def test_unrolled_loop_keeps_entry_loses_branch(self, micro_marker_set):
        """kern_a_loop is unrolled at O2: entry counts still match, but
        iteration counts differ, so only the entry is mappable."""
        marker_set, _ = micro_marker_set
        line_keys = {
            point.key: point.kind for point in marker_set.points
            if point.key[0] == "line"
        }
        entries = [k for k, kind in line_keys.items()
                   if kind is MarkerKind.LOOP_ENTRY]
        branches = [k for k, kind in line_keys.items()
                    if kind is MarkerKind.LOOP_BRANCH]
        # There is at least one entry-only line (the unrolled loop).
        entry_lines = {key[2] for key in entries}
        branch_lines = {key[2] for key in branches}
        assert entry_lines - branch_lines

    def test_split_loop_dropped_as_ambiguous(self, micro_marker_set):
        """kern_b_loop splits into two same-line same-count halves at O2;
        counts cannot disambiguate them, so the line is dropped."""
        _, report = micro_marker_set
        assert report.loops_dropped_ambiguous >= 1
        assert any("ambiguous" in detail for detail in report.dropped_details)

    def test_marker_counts_identical_across_binaries(
        self, micro_binary_list, micro_marker_set
    ):
        """The core invariant: every mappable point fires the same number
        of times in every binary."""
        from repro.execution.engine import ExecutionEngine
        from repro.execution.events import ExecutionConsumer, iteration_profile

        marker_set, _ = micro_marker_set

        class MarkerCounter(ExecutionConsumer):
            def __init__(self, binary, table):
                self.binary = binary
                self.map = table.block_to_marker()
                self.counts = {}

            def on_block(self, block_id, execs=1):
                marker = self.map.get(block_id)
                if marker is not None:
                    self.counts[marker] = self.counts.get(marker, 0) + execs

            def on_iterations(self, loop, iterations):
                profile = iteration_profile(self.binary, loop)
                marker = self.map.get(profile.branch_block)
                if marker is not None:
                    self.counts[marker] = (
                        self.counts.get(marker, 0) + iterations
                    )

        all_counts = []
        for binary in micro_binary_list:
            counter = MarkerCounter(
                binary, marker_set.table_for(binary.name)
            )
            ExecutionEngine(binary).run(counter)
            all_counts.append(counter.counts)
        for counts in all_counts[1:]:
            assert counts == all_counts[0]

    def test_observed_counts_match_declared_totals(
        self, micro_binary_list, micro_marker_set
    ):
        marker_set, _ = micro_marker_set
        profile = collect_call_branch_profile(micro_binary_list[0])
        for point in marker_set.points:
            if point.kind is MarkerKind.PROCEDURE:
                assert (
                    profile.procedure_entries[point.key[1]]
                    == point.total_count
                )


class TestMatchingValidation:
    def test_needs_two_binaries(self, micro_binary_32u):
        profile = collect_call_branch_profile(micro_binary_32u)
        with pytest.raises(MatchingError, match="at least two"):
            find_mappable_points([(micro_binary_32u, profile)])

    def test_rejects_duplicate_binaries(self, micro_binary_32u):
        profile = collect_call_branch_profile(micro_binary_32u)
        with pytest.raises(MatchingError, match="duplicate"):
            find_mappable_points(
                [(micro_binary_32u, profile), (micro_binary_32u, profile)]
            )

    def test_signature_recovery_can_be_disabled(self, micro_binary_list):
        profiles = [
            (binary, collect_call_branch_profile(binary))
            for binary in micro_binary_list
        ]
        with_recovery, report_on = find_mappable_points(profiles)
        without, report_off = find_mappable_points(
            profiles, enable_signature_recovery=False
        )
        assert report_off.loops_recovered_by_signature == 0
        assert without.n_points < with_recovery.n_points

    def test_marker_ids_deterministic(self, micro_binary_list):
        profiles = [
            (binary, collect_call_branch_profile(binary))
            for binary in micro_binary_list
        ]
        a, _ = find_mappable_points(profiles)
        b, _ = find_mappable_points(profiles)
        assert a.points == b.points
