"""Property tests for the simulator's interval trackers.

The trackers attribute instructions and cycles to interval structures
while the detailed simulation streams by. These properties pin down
their conservation laws and their equivalence to the profiling-side
interval builders, over random programs.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.cmpsim.simulator import CMPSim, FLITracker, VLITracker
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS
from repro.core.mapping import interval_boundaries
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.profiling.bbv import collect_fli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile

from tests.strategies import programs

_SETTINGS = settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)

_INTERVAL = 5_000


class TestFLITrackerProperties:
    @_SETTINGS
    @given(program=programs())
    def test_tracker_intervals_align_with_profiler(self, program):
        """Same interval count and per-interval instruction counts as
        the BBV profiler (both cut at exact instruction positions)."""
        binaries = compile_standard_binaries(program)
        for target in STANDARD_TARGETS[:2]:
            binary = binaries[target]
            profiled = collect_fli_bbvs(binary, _INTERVAL)
            tracker = FLITracker(_INTERVAL)
            stats = CMPSim(binary).run_full(trackers=(tracker,)).stats
            assert len(tracker.intervals) == len(profiled)
            assert [i.instructions for i in tracker.intervals] == [
                i.instructions for i in profiled
            ]
            assert sum(i.cycles for i in tracker.intervals) == (
                pytest.approx(stats.cycles)
            )

    @_SETTINGS
    @given(program=programs())
    def test_cycles_positive_and_bounded(self, program):
        binaries = compile_standard_binaries(program)
        binary = binaries[STANDARD_TARGETS[0]]
        tracker = FLITracker(_INTERVAL)
        CMPSim(binary).run_full(trackers=(tracker,))
        for interval in tracker.intervals:
            assert interval.cycles > 0
            # CPI is bounded below by the smallest base CPI and above
            # by every-ref-missing-to-DRAM behaviour.
            assert 0.3 < interval.cpi < 300.0


class TestVLITrackerProperties:
    def _setup(self, program):
        binaries = compile_standard_binaries(program)
        ordered = [binaries[target] for target in STANDARD_TARGETS]
        profiles = [
            (binary, collect_call_branch_profile(binary))
            for binary in ordered
        ]
        marker_set, _ = find_mappable_points(profiles)
        intervals = collect_vli_bbvs(ordered[0], marker_set, _INTERVAL)
        boundaries = interval_boundaries(intervals)
        return ordered, marker_set, intervals, boundaries

    @_SETTINGS
    @given(program=programs())
    def test_conservation_in_every_binary(self, program):
        ordered, marker_set, intervals, boundaries = self._setup(program)
        for binary in ordered:
            tracker = VLITracker(
                marker_set.table_for(binary.name), boundaries
            )
            stats = CMPSim(binary).run_full(trackers=(tracker,)).stats
            assert len(tracker.intervals) == len(intervals)
            assert sum(i.instructions for i in tracker.intervals) == (
                stats.instructions
            )
            assert sum(i.cycles for i in tracker.intervals) == (
                pytest.approx(stats.cycles)
            )

    @_SETTINGS
    @given(program=programs())
    def test_primary_tracker_matches_builder_sizes(self, program):
        ordered, marker_set, intervals, boundaries = self._setup(program)
        tracker = VLITracker(
            marker_set.table_for(ordered[0].name), boundaries
        )
        CMPSim(ordered[0]).run_full(trackers=(tracker,))
        assert [i.instructions for i in tracker.intervals] == [
            i.instructions for i in intervals
        ]
