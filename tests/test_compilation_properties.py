"""Property tests for the compilation layer over random programs."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.compilation.binary import BlockKind, validate_binary
from repro.compilation.compiler import compile_program
from repro.compilation.optimizer import optimize_ir
from repro.compilation.targets import (
    STANDARD_TARGETS,
    TARGET_32O,
    TARGET_32U,
    TARGET_64U,
)
from repro.programs.ir import (
    Compute,
    Loop,
    iter_program_statements,
)

from tests.strategies import programs

_SETTINGS = settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


def _source_work(program, statement_filter=None):
    """Static sum of compute instructions (per execution of each)."""
    total = 0
    for _, stmt in iter_program_statements(program):
        if isinstance(stmt, Compute):
            total += stmt.instructions
    return total


class TestOptimizerProperties:
    @_SETTINGS
    @given(program=programs())
    def test_unrolling_preserves_loop_work(self, program):
        """trips x per-iteration instructions is invariant under
        unrolling, for every unrolled loop that was already straight-
        line in the source. (A loop around a call can *become*
        straight-line after inlining and then unroll; its static work
        grew by the inlined body, so only originally-straight-line
        loops have this invariant.)"""
        optimized, report = optimize_ir(program)
        unrolled_names = {name for name, _ in report.unrolled_loops}
        if not unrolled_names:
            return

        def loop_work(prog, name_predicate, require_straight_line):
            total = {}
            for _, stmt in iter_program_statements(prog):
                if isinstance(stmt, Loop) and name_predicate(stmt.name):
                    if require_straight_line and not all(
                        isinstance(inner, Compute) for inner in stmt.body
                    ):
                        continue
                    work = sum(
                        inner.instructions
                        for inner in stmt.body
                        if isinstance(inner, Compute)
                    )
                    total[stmt.name] = stmt.trips * work
            return total

        before = loop_work(
            program, lambda n: n in unrolled_names,
            require_straight_line=True,
        )
        after = loop_work(
            optimized, lambda n: n in before,
            require_straight_line=False,
        )
        for name, work in after.items():
            assert work == before[name]

    @_SETTINGS
    @given(program=programs())
    def test_split_loops_share_lines_pairwise(self, program):
        optimized, report = optimize_ir(program)
        by_prefix = {}
        for _, stmt in iter_program_statements(optimized):
            if isinstance(stmt, Loop) and stmt.split_index:
                by_prefix.setdefault(
                    stmt.name.rsplit("__", 1)[0], []
                ).append(stmt)
        for prefix, loops in by_prefix.items():
            assert len(loops) == 2, prefix
            assert loops[0].location == loops[1].location
            assert loops[0].trips == loops[1].trips

    @_SETTINGS
    @given(program=programs())
    def test_optimizer_is_deterministic(self, program):
        first, report_a = optimize_ir(program)
        second, report_b = optimize_ir(program)
        assert report_a == report_b
        assert first == second

    @_SETTINGS
    @given(program=programs())
    def test_split_and_motion_preserve_static_work(self, program):
        """Splitting and code motion conserve the static compute
        volume. (Inlining duplicates code across call sites and
        unrolling fattens bodies while dividing trips, so only these
        two passes have a static invariant.)"""
        optimized, _ = optimize_ir(program, inline=False, unroll=False)
        assert _source_work(optimized) == _source_work(program)


class TestLoweringProperties:
    @_SETTINGS
    @given(program=programs())
    def test_every_binary_validates(self, program):
        for target in STANDARD_TARGETS:
            binary, _ = compile_program(program, target)
            validate_binary(binary)  # raises on any broken reference

    @_SETTINGS
    @given(program=programs())
    def test_block_kinds_partition(self, program):
        binary, _ = compile_program(program, TARGET_32U)
        kinds = {block.kind for block in binary.blocks.values()}
        assert BlockKind.PROC_ENTRY in kinds
        for block in binary.blocks.values():
            if block.kind is not BlockKind.COMPUTE:
                assert block.accesses == ()

    @_SETTINGS
    @given(program=programs())
    def test_loop_metadata_complete(self, program):
        binary, _ = compile_program(program, TARGET_32O)
        seen = set()
        for proc_name in binary.procedures:
            for loop in binary.iter_loops_of(proc_name):
                seen.add(loop.loop_id)
                meta = binary.loop(loop.loop_id)
                assert meta.loop_id == loop.loop_id
        assert seen == set(binary.loops)

    @_SETTINGS
    @given(program=programs())
    def test_isa_does_not_change_structure(self, program):
        """32- and 64-bit binaries at the same opt level have identical
        control structure (same blocks modulo instruction counts)."""
        b32, _ = compile_program(program, TARGET_32U)
        b64, _ = compile_program(program, TARGET_64U)
        assert set(b32.blocks) == set(b64.blocks)
        assert set(b32.loops) == set(b64.loops)
        assert b32.symbols == b64.symbols
        for block_id in b32.blocks:
            assert (
                b32.blocks[block_id].kind is b64.blocks[block_id].kind
            )
            assert (
                b32.blocks[block_id].source_name
                == b64.blocks[block_id].source_name
            )
