"""Tests for the systematic-sampling baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.systematic import (
    compare_sampling_budgets,
    systematic_sample,
)
from repro.cmpsim.simulator import IntervalStats
from repro.errors import SimulationError


def _stats(instructions, cpi):
    return IntervalStats(instructions=instructions,
                         cycles=instructions * cpi)


class TestSystematicSample:
    def test_period_one_is_exact(self):
        intervals = [_stats(100, 2.0), _stats(100, 4.0), _stats(100, 6.0)]
        sample = systematic_sample(intervals, period=1)
        assert sample.estimate == pytest.approx(4.0)
        assert sample.n_samples == 3
        assert sample.detail_fraction == pytest.approx(1.0)

    def test_period_two_samples_alternating(self):
        intervals = [_stats(100, cpi) for cpi in (1.0, 9.0, 1.0, 9.0)]
        even = systematic_sample(intervals, period=2, offset=0)
        odd = systematic_sample(intervals, period=2, offset=1)
        assert even.estimate == pytest.approx(1.0)
        assert odd.estimate == pytest.approx(9.0)
        assert even.sampled_indices == (0, 2)

    def test_weighted_by_instructions(self):
        intervals = [_stats(300, 1.0), _stats(999, 0.5), _stats(100, 3.0)]
        sample = systematic_sample(intervals, period=2)
        # Samples indices 0 and 2: (300*1 + 100*3) / 400.
        assert sample.estimate == pytest.approx(1.5)

    def test_std_error_zero_for_constant_metric(self):
        intervals = [_stats(100, 2.0)] * 8
        sample = systematic_sample(intervals, period=2)
        assert sample.std_error == pytest.approx(0.0)
        assert sample.half_width_95 == pytest.approx(0.0)

    def test_single_sample_has_infinite_error_bar(self):
        intervals = [_stats(100, 2.0), _stats(100, 4.0)]
        sample = systematic_sample(intervals, period=2)
        assert sample.n_samples == 1
        assert sample.std_error == float("inf")

    def test_custom_metric(self):
        intervals = [
            IntervalStats(1000, 1000.0, 5.0),
            IntervalStats(1000, 1000.0, 15.0),
        ]
        sample = systematic_sample(
            intervals, period=1, metric=lambda s: s.dram_mpki
        )
        assert sample.estimate == pytest.approx(10.0)

    def test_rejects_bad_period(self):
        with pytest.raises(SimulationError):
            systematic_sample([_stats(1, 1.0)], period=0)

    def test_rejects_bad_offset(self):
        with pytest.raises(SimulationError):
            systematic_sample([_stats(1, 1.0)], period=2, offset=2)

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            systematic_sample([], period=1)

    @settings(deadline=None, max_examples=30)
    @given(
        n=st.integers(2, 60),
        period=st.integers(1, 10),
        seed=st.integers(0, 100),
    )
    def test_estimate_bounded_by_extremes(self, n, period, seed):
        import random

        rng = random.Random(seed)
        cpis = [rng.uniform(1.0, 8.0) for _ in range(n)]
        intervals = [_stats(100, cpi) for cpi in cpis]
        sample = systematic_sample(intervals, period=min(period, n))
        assert min(cpis) - 1e-9 <= sample.estimate <= max(cpis) + 1e-9


class TestBudgetComparison:
    def test_denser_sampling_converges(self):
        import random

        rng = random.Random(1)
        intervals = [
            _stats(100, rng.uniform(1.0, 5.0)) for _ in range(200)
        ]
        true = sum(i.cycles for i in intervals) / sum(
            i.instructions for i in intervals
        )
        results = compare_sampling_budgets(
            intervals, true, periods=(1, 4, 32)
        )
        errors = {period: error for period, _, error in results}
        assert errors[1] == pytest.approx(0.0)
        assert errors[1] <= errors[4] <= errors[32] + 0.05

    def test_rejects_zero_true_value(self):
        with pytest.raises(SimulationError):
            compare_sampling_budgets([_stats(1, 1.0)], 0.0, (1,))

    def test_on_real_benchmark(self):
        """Systematic sampling needs a far larger detail budget than
        SimPoint's ~9 points to reach comparable accuracy on gcc."""
        from repro.experiments.runner import run_benchmark

        run = run_benchmark("art")
        outcome = run.outcome("32u")
        intervals = list(outcome.fli_intervals)
        true_cpi = outcome.true_cpi
        simpoint_error = outcome.fli_estimate.cpi_error
        simpoint_budget = outcome.fli_estimate.n_points

        # Same budget as SimPoint, spread systematically.
        period = max(1, len(intervals) // simpoint_budget)
        _, sample, systematic_error = compare_sampling_budgets(
            intervals, true_cpi, (period,)
        )[0]
        assert sample.n_samples <= simpoint_budget + 2
        # Phase-aware selection beats position-blind selection at an
        # equal budget on phase-structured programs (or at worst ties).
        assert simpoint_error <= systematic_error + 0.02
