"""Tests for repro.cmpsim.simulator: full runs, trackers, regions."""

import pytest

from repro.cmpsim.simulator import (
    CMPSim,
    FLITracker,
    IntervalStats,
    RegionSpec,
    VLITracker,
)
from repro.core.mapping import interval_boundaries
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.errors import SimulationError
from repro.execution.engine import run_binary
from repro.profiling.callbranch import collect_call_branch_profile

from tests.conftest import MICRO_INTERVAL


@pytest.fixture(scope="module")
def marker_set(micro_binary_list):
    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in micro_binary_list
    ]
    marker_set, _ = find_mappable_points(profiles)
    return marker_set


@pytest.fixture(scope="module")
def primary_vlis(micro_binary_32u, marker_set):
    return collect_vli_bbvs(micro_binary_32u, marker_set, MICRO_INTERVAL)


@pytest.fixture(scope="module")
def full_run_with_trackers(micro_binary_32u, marker_set, primary_vlis):
    fli = FLITracker(MICRO_INTERVAL)
    vli = VLITracker(
        marker_set.table_for(micro_binary_32u.name),
        interval_boundaries(primary_vlis),
    )
    result = CMPSim(micro_binary_32u).run_full(trackers=(fli, vli))
    return result, fli, vli


class TestFullRun:
    def test_instruction_count_matches_engine(self, micro_binary_32u):
        stats = CMPSim(micro_binary_32u).run_full().stats
        assert stats.instructions == run_binary(micro_binary_32u).instructions

    def test_cpi_in_plausible_range(self, micro_binary_32u):
        stats = CMPSim(micro_binary_32u).run_full().stats
        assert 0.5 < stats.cpi < 20.0

    def test_deterministic(self, micro_binary_32u):
        a = CMPSim(micro_binary_32u).run_full().stats
        b = CMPSim(micro_binary_32u).run_full().stats
        assert a == b

    def test_cycles_at_least_base(self, micro_binary_32u):
        stats = CMPSim(micro_binary_32u).run_full().stats
        assert stats.cycles >= 0.5 * stats.instructions

    def test_memory_refs_counted(self, micro_binary_32u):
        stats = CMPSim(micro_binary_32u).run_full().stats
        assert stats.memory_refs > 0
        assert stats.level_accesses[0] == stats.memory_refs

    def test_misses_propagate_down(self, micro_binary_32u):
        stats = CMPSim(micro_binary_32u).run_full().stats
        assert stats.level_accesses[1] == stats.level_misses[0]
        assert stats.level_accesses[2] == stats.level_misses[1]
        assert stats.dram_reads == stats.level_misses[2]

    def test_interval_stats_cpi_guard(self):
        with pytest.raises(SimulationError):
            IntervalStats().cpi


class TestFLITracker:
    def test_rejects_bad_size(self):
        with pytest.raises(SimulationError):
            FLITracker(0)

    def test_intervals_exactly_sized(self, full_run_with_trackers):
        _, fli, _ = full_run_with_trackers
        for interval in fli.intervals[:-1]:
            assert interval.instructions == MICRO_INTERVAL

    def test_totals_conserved(self, full_run_with_trackers):
        result, fli, _ = full_run_with_trackers
        assert sum(i.instructions for i in fli.intervals) == (
            result.stats.instructions
        )
        assert sum(i.cycles for i in fli.intervals) == pytest.approx(
            result.stats.cycles
        )

    def test_interval_count_matches_bbv_profile(
        self, micro_binary_32u, full_run_with_trackers
    ):
        from repro.profiling.bbv import collect_fli_bbvs

        _, fli, _ = full_run_with_trackers
        profile = collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL)
        assert len(fli.intervals) == len(profile)

    def test_cpis_vary_across_intervals(self, full_run_with_trackers):
        _, fli, _ = full_run_with_trackers
        cpis = [interval.cpi for interval in fli.intervals]
        assert max(cpis) > 1.2 * min(cpis)  # phase behaviour visible


class TestVLITracker:
    def test_interval_count_matches_primary(
        self, full_run_with_trackers, primary_vlis
    ):
        _, _, vli = full_run_with_trackers
        assert len(vli.intervals) == len(primary_vlis)

    def test_totals_conserved(self, full_run_with_trackers):
        result, _, vli = full_run_with_trackers
        assert sum(i.instructions for i in vli.intervals) == (
            result.stats.instructions
        )
        assert sum(i.cycles for i in vli.intervals) == pytest.approx(
            result.stats.cycles
        )

    def test_primary_interval_sizes_match_builder(
        self, full_run_with_trackers, primary_vlis
    ):
        _, _, vli = full_run_with_trackers
        assert [i.instructions for i in vli.intervals] == [
            i.instructions for i in primary_vlis
        ]

    def test_works_on_other_binaries(
        self, micro_binary_32o, marker_set, primary_vlis
    ):
        vli = VLITracker(
            marker_set.table_for(micro_binary_32o.name),
            interval_boundaries(primary_vlis),
        )
        result = CMPSim(micro_binary_32o).run_full(trackers=(vli,))
        assert len(vli.intervals) == len(primary_vlis)
        assert sum(i.instructions for i in vli.intervals) == (
            result.stats.instructions
        )

    def test_unreachable_boundary_raises(self, micro_binary_32u, marker_set):
        vli = VLITracker(
            marker_set.table_for(micro_binary_32u.name),
            [(marker_set.points[0].marker_id, 10**9)],
        )
        with pytest.raises(SimulationError, match="never fired"):
            CMPSim(micro_binary_32u).run_full(trackers=(vli,))


class TestRegionSimulation:
    @pytest.fixture(scope="class")
    def regions(self, primary_vlis):
        """Three disjoint regions: intervals 0, 2, and the last."""
        chosen = [primary_vlis[0], primary_vlis[2], primary_vlis[-1]]
        return [
            RegionSpec(label=i, start=interval.start_coord,
                       end=interval.end_coord)
            for i, interval in enumerate(chosen)
        ]

    def test_warm_regions_match_full_run_intervals(
        self, micro_binary_32u, marker_set, primary_vlis, regions
    ):
        """Warm fast-forward keeps cache state identical to a full run,
        so region CPIs equal the full run's per-interval CPIs."""
        vli = VLITracker(
            marker_set.table_for(micro_binary_32u.name),
            interval_boundaries(primary_vlis),
        )
        CMPSim(micro_binary_32u).run_full(trackers=(vli,))
        result = CMPSim(micro_binary_32u).run_regions(
            regions, marker_set.table_for(micro_binary_32u.name), warm=True
        )
        expected = {0: 0, 1: 2, 2: len(primary_vlis) - 1}
        for label, interval_index in expected.items():
            region_stats = result.region(label)
            full_stats = vli.intervals[interval_index]
            assert region_stats.instructions == full_stats.instructions
            assert region_stats.cycles == pytest.approx(full_stats.cycles)

    def test_cold_regions_differ_from_warm(
        self, micro_binary_32u, marker_set, regions
    ):
        table = marker_set.table_for(micro_binary_32u.name)
        sim = CMPSim(micro_binary_32u)
        warm = sim.run_regions(regions, table, warm=True)
        cold = sim.run_regions(regions, table, warm=False)
        # Same instructions either way...
        for label in (0, 1, 2):
            assert (
                cold.region(label).instructions
                == warm.region(label).instructions
            )
        # The first region starts at program start, so its cache state
        # is identical in both modes...
        assert cold.region(0).cycles == pytest.approx(
            warm.region(0).cycles
        )
        # ...while later regions see different (stale vs warmed) caches.
        assert any(
            cold.region(label).cycles
            != pytest.approx(warm.region(label).cycles)
            for label in (1, 2)
        )

    def test_fast_forward_instructions_accounted(
        self, micro_binary_32u, marker_set, regions
    ):
        table = marker_set.table_for(micro_binary_32u.name)
        result = CMPSim(micro_binary_32u).run_regions(regions, table)
        detailed = sum(
            result.region(label).instructions for label in (0, 1, 2)
        )
        total = run_binary(micro_binary_32u).instructions
        assert result.fast_forward_instructions + detailed == total

    def test_rejects_empty_regions(self, micro_binary_32u, marker_set):
        table = marker_set.table_for(micro_binary_32u.name)
        with pytest.raises(SimulationError):
            CMPSim(micro_binary_32u).run_regions([], table)

    def test_rejects_duplicate_labels(
        self, micro_binary_32u, marker_set, primary_vlis
    ):
        table = marker_set.table_for(micro_binary_32u.name)
        spec = RegionSpec(label=0, start=primary_vlis[1].start_coord,
                          end=primary_vlis[1].end_coord)
        with pytest.raises(SimulationError, match="duplicate"):
            CMPSim(micro_binary_32u).run_regions([spec, spec], table)

    def test_region_result_unknown_label(
        self, micro_binary_32u, marker_set, regions
    ):
        table = marker_set.table_for(micro_binary_32u.name)
        result = CMPSim(micro_binary_32u).run_regions(regions, table)
        with pytest.raises(SimulationError):
            result.region(99)
