"""Tests for the observability layer: spans, metrics, manifests.

Covers the three sub-layers in isolation, their aggregation across the
``parallel_map`` seam, the cache counters' agreement with
``runtime.cache``'s own statistics, and the manifest schema's
stability (round-trips through ``json`` with a pinned key set).
"""

import json

import pytest

from repro.errors import FileFormatError
from repro.observability import (
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifest,
    metrics,
    observe,
    trace,
    validate_manifest,
    write_manifest,
)
from repro.observability.inspect import render_manifest
from repro.observability.manifest import MANIFEST_KEYS
from repro.runtime import ProfileCache, parallel_map, runtime_session


@pytest.fixture(autouse=True)
def _clean_observability():
    """Each test starts with no tracer and an empty metric registry."""
    metrics.reset()
    trace.uninstall()
    yield
    metrics.reset()
    trace.uninstall()


class TestTracer:
    def test_spans_nest_and_time(self):
        tracer = trace.Tracer()
        trace.install(tracer)
        with trace.span("outer", label="a"):
            with trace.span("inner"):
                pass
        with trace.span("outer"):
            pass
        assert [root.name for root in tracer.roots] == ["outer", "outer"]
        assert [c.name for c in tracer.roots[0].children] == ["inner"]
        stages = tracer.stage_seconds()
        assert list(stages) == ["outer"]  # aggregated by name
        assert stages["outer"] >= tracer.roots[0].seconds

    def test_stage_seconds_bounded_by_total(self):
        tracer = trace.Tracer()
        trace.install(tracer)
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        tracer.finish()
        assert sum(tracer.stage_seconds().values()) <= (
            tracer.total_seconds() + 1e-9
        )

    def test_disabled_tracing_is_a_noop(self):
        with trace.span("ignored", k=3):
            pass
        assert trace.active() is None

    def test_payload_is_json_serializable(self):
        tracer = trace.Tracer()
        trace.install(tracer)
        with trace.span("stage", k=4):
            pass
        payload = json.loads(json.dumps(tracer.to_payload()))
        assert payload["schema"] == "repro.trace/v1"
        assert payload["spans"][0]["attrs"] == {"k": 4}


class TestMetrics:
    def test_counter_gauge_histogram(self):
        metrics.counter("c").inc()
        metrics.counter("c").inc(4)
        metrics.gauge("g").set(2.5)
        metrics.histogram("h").observe(1.0)
        metrics.histogram("h").observe(3.0)
        snap = metrics.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"] == {
            "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0,
            "buckets": {"0": 1, "2": 1},
        }

    def test_merge_combines_snapshots(self):
        metrics.counter("c").inc(2)
        metrics.histogram("h").observe(5.0)
        delta = {
            "counters": {"c": 3, "new": 1},
            "gauges": {"g": 7.0},
            "histograms": {"h": {"count": 2, "sum": 2.0, "min": 0.5,
                                 "max": 1.5,
                                 "buckets": {"-1": 1, "1": 1}}},
        }
        metrics.merge(delta)
        snap = metrics.snapshot()
        assert snap["counters"] == {"c": 5, "new": 1}
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"] == {
            "count": 3, "sum": 7.0, "min": 0.5, "max": 5.0,
            "buckets": {"-1": 1, "1": 1, "3": 1},
        }

    def test_merge_tolerates_v1_snapshot_without_buckets(self):
        metrics.histogram("h").observe(2.0)
        metrics.merge(
            {"histograms": {"h": {"count": 2, "sum": 6.0, "min": 1.0,
                                  "max": 5.0}}}
        )
        instrument = metrics.histogram("h")
        assert instrument.count == 3
        assert instrument.total == 8.0
        # Part of the population has no bucket: quantiles degrade to
        # the (clamped) mean instead of lying about the distribution.
        assert instrument.quantile(0.5) == pytest.approx(8.0 / 3)

    def test_histogram_quantiles_from_buckets(self):
        instrument = metrics.histogram("h")
        for value in [0.0, 1.0, 2.0, 4.0, 4.0, 4.0, 64.0]:
            instrument.observe(value)
        assert instrument.quantile(0.0) == 0.0  # clamped to min
        assert instrument.quantile(1.0) == 64.0  # clamped to max
        # p50 -> 4th of 7 observations -> bucket (2, 4].
        assert instrument.quantile(0.5) == pytest.approx(2 ** 1.5)
        # p99 -> the top observation's bucket (32, 64].
        assert instrument.quantiles()["p99"] == pytest.approx(2 ** 5.5)
        assert metrics.histogram("empty").quantile(0.5) is None

    def test_scoped_registry_isolates_and_restores(self):
        metrics.counter("outside").inc()
        with metrics.scoped_registry() as local:
            metrics.counter("inside").inc(2)
            assert "outside" not in local.counters
        snap = metrics.snapshot()
        assert snap["counters"] == {"outside": 1}
        assert local.snapshot()["counters"] == {"inside": 2}

    def test_snapshot_survives_json(self):
        metrics.histogram("h").observe(1.25)
        assert json.loads(json.dumps(metrics.snapshot())) == (
            metrics.snapshot()
        )


def _metered_task(value):
    metrics.counter("task.calls").inc()
    metrics.histogram("task.value").observe(value)
    return value * 2


def _gauge_task(value):
    import time

    # Earlier tasks sleep longer, so completion order is (roughly) the
    # reverse of task order — the exact case where completion-order
    # gauge merging would record the wrong (first) task's value.
    time.sleep(0.05 if value == 0 else 0.0)
    metrics.gauge("task.last_value").set(value)
    return value


class TestParallelAggregation:
    def test_worker_metrics_merge_into_parent(self):
        results = parallel_map(_metered_task, [1, 2, 3, 4], jobs=2)
        assert results == [2, 4, 6, 8]
        snap = metrics.snapshot()
        assert snap["counters"]["task.calls"] == 4
        assert snap["histograms"]["task.value"]["count"] == 4
        assert snap["histograms"]["task.value"]["sum"] == 10.0
        assert snap["histograms"]["parallel.task_seconds"]["count"] == 4

    def test_serial_path_counts_identically(self):
        parallel_map(_metered_task, [5, 6], jobs=1)
        snap = metrics.snapshot()
        assert snap["counters"]["task.calls"] == 2
        assert snap["histograms"]["parallel.task_seconds"]["count"] == 2

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_gauge_merge_is_task_index_ordered(self, jobs):
        # Last-write-wins gauges must reflect the LAST task by index,
        # not whichever task completed last — identical work must
        # record identical gauges at any parallelism.
        parallel_map(_gauge_task, [0, 1, 2], jobs=jobs)
        assert metrics.snapshot()["gauges"]["task.last_value"] == 2.0


class TestCacheCounters:
    def test_metrics_match_cache_stats(self, tmp_path):
        cache = ProfileCache(tmp_path / "cache")
        for _ in range(3):
            cache.get_or_compute("kind", ["key"], lambda: {"v": 1})
        snap = metrics.snapshot()["counters"]
        assert snap["cache.hits"] == cache.stats.hits == 2
        assert snap["cache.misses"] == cache.stats.misses == 1
        assert snap["cache.bytes_read"] == cache.stats.bytes_read
        assert snap["cache.bytes_written"] == cache.stats.bytes_written


class TestManifest:
    def _manifest(self, **overrides):
        manifest = build_manifest(
            total_seconds=2.0,
            stages={"profile": 0.5, "cluster": 1.4},
            metrics_snapshot=metrics.snapshot(),
            clusterings={"art/32u": {"k": 4, "bic_scores": [1.0, 2.0]}},
            errors={"art/32u": {"fli_cpi_error": 0.02}},
            config_fingerprint="abc123",
            command=["summary", "art"],
        )
        manifest.update(overrides)
        return manifest

    def test_schema_key_set_is_stable(self):
        manifest = self._manifest()
        assert tuple(sorted(manifest)) == tuple(sorted(MANIFEST_KEYS))
        assert manifest["schema"] == MANIFEST_SCHEMA

    def test_roundtrips_through_json(self, tmp_path):
        path = write_manifest(tmp_path / "manifest.json", self._manifest())
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(loaded))
        assert loaded["stages"] == [
            {"name": "profile", "seconds": 0.5},
            {"name": "cluster", "seconds": 1.4},
        ]
        assert loaded["cache"]["hits"] == 0  # cache-less run: zeros

    def test_validation_rejects_missing_and_unknown_keys(self):
        incomplete = self._manifest()
        del incomplete["stages"]
        with pytest.raises(FileFormatError, match="missing"):
            validate_manifest(incomplete)
        extra = self._manifest()
        extra["surprise"] = 1
        with pytest.raises(FileFormatError, match="unknown"):
            validate_manifest(extra)
        with pytest.raises(FileFormatError, match="schema"):
            validate_manifest({"schema": "repro.manifest/v0"})

    def test_validation_rejects_malformed_stages_and_cache(self):
        with pytest.raises(FileFormatError, match="stage"):
            validate_manifest(self._manifest(stages=[{"name": 3}]))
        bad_cache = self._manifest()
        del bad_cache["cache"]["hits"]
        with pytest.raises(FileFormatError, match="hits"):
            validate_manifest(bad_cache)

    def test_render_manifest_summarizes(self):
        text = render_manifest(self._manifest())
        assert "summary art" in text
        assert "profile" in text and "cluster" in text
        assert "art/32u: k=4" in text
        assert "fli_cpi_error" in text

    def test_v2_carries_run_id_and_bias(self):
        manifest = build_manifest(
            total_seconds=1.0,
            stages={"profile": 1.0},
            metrics_snapshot=metrics.snapshot(),
            bias={"art/32u": {0: {"weight": 0.6, "bias": -0.01},
                              1: {"weight": 0.4, "bias": 0.02}}},
        )
        validated = validate_manifest(manifest)
        assert validated["schema"] == MANIFEST_SCHEMA
        assert validated["run_id"]
        assert validated["bias"]["art/32u"]["0"]["bias"] == -0.01
        text = render_manifest(validated)
        assert "bias tables" in text
        assert "cluster 1" in text

    def test_validation_rejects_malformed_bias(self):
        bad = self._manifest()
        bad["bias"] = {"art/32u": {"0": {"bias": "not-a-number"}}}
        with pytest.raises(FileFormatError, match="bias"):
            validate_manifest(bad)

    def test_matching_section_roundtrips_and_renders(self):
        manifest = self._manifest(matching={"art": {
            "threshold": 0.6,
            "min_confidence": 0.72,
            "fuzzy_procedures": 1,
            "fuzzy_loops": 2,
            "low_confidence_dropped": 0,
            "min_pair_coverage": 0.91,
            "pairs": {"art/32u|art/32o": {
                "matched_a": 10, "candidates_a": 11,
                "matched_b": 10, "candidates_b": 11,
                "coverage": 0.91,
            }},
        }})
        validated = validate_manifest(manifest)
        text = render_manifest(validated)
        assert "matching" in text
        assert "min confidence=0.72" in text
        assert "art/32u|art/32o" in text and "10/11" in text

    def test_validation_rejects_malformed_matching(self):
        bad = self._manifest()
        bad["matching"] = {"art": "not-an-object"}
        with pytest.raises(FileFormatError, match="matching"):
            validate_manifest(bad)

    def test_v2_without_matching_upgrades_to_empty(self):
        from repro.observability.manifest import upgrade_manifest

        manifest = self._manifest()
        del manifest["matching"]
        upgraded = upgrade_manifest(manifest)
        assert upgraded["matching"] == {}
        validate_manifest(upgraded)


class TestObserveSession:
    def test_writes_trace_metrics_and_manifest(self, tmp_path):
        trace_out = tmp_path / "out" / "trace.json"
        metrics_out = tmp_path / "out" / "metrics.json"
        with observe(
            trace_out=trace_out, metrics_out=metrics_out,
            command=["test"],
        ) as session:
            assert session is not None
            session.record_config({"interval_size": 100})
            with trace.span("stage_one"):
                metrics.counter("things").inc(3)
            session.record_clustering("bin/32u", k=3, bic_scores=[1.0, 2.0])
            session.record_errors("bin/32u", {"fli_cpi_error": 0.01})
        manifest = load_manifest(tmp_path / "out" / "manifest.json")
        assert manifest["command"] == ["test"]
        assert manifest["config_fingerprint"]
        assert [s["name"] for s in manifest["stages"]] == ["stage_one"]
        assert manifest["metrics"]["counters"]["things"] == 3
        assert manifest["clusterings"]["bin/32u"]["k"] == 3
        assert manifest["errors"]["bin/32u"]["fli_cpi_error"] == 0.01
        trace_payload = json.loads(trace_out.read_text())
        assert trace_payload["spans"][0]["name"] == "stage_one"
        assert json.loads(metrics_out.read_text())["counters"][
            "things"
        ] == 3

    def test_stage_seconds_sum_close_to_total(self, tmp_path):
        import time

        with observe(trace_out=tmp_path / "trace.json") as session:
            with trace.span("a"):
                time.sleep(0.02)
            with trace.span("b"):
                time.sleep(0.02)
        manifest = session.manifest
        accounted = sum(s["seconds"] for s in manifest["stages"])
        assert accounted <= manifest["total_seconds"]
        assert accounted >= 0.9 * manifest["total_seconds"]

    def test_no_outputs_means_no_session(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_OUT", raising=False)
        monkeypatch.delenv("REPRO_METRICS_OUT", raising=False)
        with observe() as session:
            assert session is None
            assert trace.active() is None

    def test_env_var_enables_session(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TRACE_OUT", str(tmp_path / "env-trace.json")
        )
        with observe() as session:
            assert session is not None
        assert (tmp_path / "env-trace.json").exists()
        assert (tmp_path / "manifest.json").exists()

    def test_nested_observe_reuses_outer_session(self, tmp_path):
        with observe(trace_out=tmp_path / "trace.json") as outer:
            with observe(trace_out=tmp_path / "inner.json") as inner:
                assert inner is outer
        assert not (tmp_path / "inner.json").exists()

    def test_manifest_reports_active_cache_stats(self, tmp_path):
        cache = ProfileCache(tmp_path / "cache")
        with runtime_session(cache=cache):
            with observe(trace_out=tmp_path / "trace.json") as session:
                cache.get_or_compute("k", ["x"], lambda: 1)
                cache.get_or_compute("k", ["x"], lambda: 1)
        manifest = session.manifest
        assert manifest["cache"]["hits"] == 1
        assert manifest["cache"]["misses"] == 1
        assert manifest["cache"]["hit_rate"] == 0.5
        counters = manifest["metrics"]["counters"]
        assert counters["cache.hits"] == manifest["cache"]["hits"]
        assert counters["cache.misses"] == manifest["cache"]["misses"]


class TestInspectCommand:
    def test_cli_inspect_prints_summary(self, tmp_path, capsys):
        from repro.cli import main

        path = write_manifest(
            tmp_path / "manifest.json",
            build_manifest(
                total_seconds=1.0,
                stages={"profile": 0.9},
                metrics_snapshot=metrics.snapshot(),
                command=["summary", "art"],
            ),
        )
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "total wall time" in out
        assert "profile" in out

    def test_cli_inspect_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["inspect", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_cli_inspect_explains_schema_mismatch(self, tmp_path, capsys):
        from repro.cli import main

        future = tmp_path / "future.json"
        future.write_text(json.dumps({"schema": "repro.manifest/v99"}))
        assert main(["inspect", str(future)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one line, not a traceback
        assert "repro.manifest/v99" in err and MANIFEST_SCHEMA in err

    def test_inspect_renders_empty_sections(self):
        manifest = build_manifest(
            total_seconds=0.0,
            stages={},
            metrics_snapshot=metrics.snapshot(),
        )
        text = render_manifest(manifest)
        assert "stages: (none recorded)" in text
        assert "clusterings: (none recorded)" in text
        assert "errors: (none recorded)" in text
