"""Tests for repro.experiments.sweeps."""

import pytest

from repro.errors import SimulationError
from repro.experiments.runner import ExperimentConfig, run_benchmark
from repro.experiments.sweeps import (
    sweep_early_tolerance,
    sweep_interval_sizes,
    sweep_max_k,
)


@pytest.fixture(scope="module")
def art_run():
    return run_benchmark("art")


class TestMaxKSweep:
    def test_chosen_k_bounded_by_budget(self, art_run):
        results = sweep_max_k(art_run, (1, 4, 10))
        for budget, point in results.items():
            assert point.k <= budget

    def test_representation_error_improves_with_budget(self, art_run):
        results = sweep_max_k(art_run, (1, 10))
        assert (
            results[10].representation_error
            <= results[1].representation_error
        )

    def test_rejects_empty(self, art_run):
        with pytest.raises(SimulationError):
            sweep_max_k(art_run, ())


class TestEarlySweep:
    def test_monotone_earliness(self, art_run):
        results = sweep_early_tolerance(art_run, (0.0, 1.0, 1e9))
        indices = [
            results[t].last_point_index for t in (0.0, 1.0, 1e9)
        ]
        assert indices[0] >= indices[1] >= indices[2]

    def test_errors_stay_bounded(self, art_run):
        results = sweep_early_tolerance(art_run, (0.0, 1e9))
        for point in results.values():
            assert point.cpi_error <= 0.5

    def test_rejects_empty(self, art_run):
        with pytest.raises(SimulationError):
            sweep_early_tolerance(art_run, ())


class TestIntervalSizeSweep:
    def test_two_sizes_on_art(self):
        results = sweep_interval_sizes("art", (100_000, 200_000))
        assert (
            results[100_000].n_intervals > results[200_000].n_intervals
        )
        for point in results.values():
            assert point.k >= 1
            assert 0 <= point.vli_speedup_error < 1.0

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            sweep_interval_sizes("art", ())
