"""Tests for multi-metric estimation (the paper's "CPI, miss rate, etc.")."""

import pytest

from repro.analysis.estimate import estimate_weighted_metric
from repro.cmpsim.simulator import IntervalStats
from repro.errors import SimulationError
from repro.experiments.runner import run_benchmark


class TestIntervalMetrics:
    def test_dram_mpki(self):
        stats = IntervalStats(
            instructions=10_000, cycles=20_000.0, dram_accesses=50.0
        )
        assert stats.dram_mpki == pytest.approx(5.0)

    def test_empty_interval_has_no_mpki(self):
        with pytest.raises(SimulationError):
            IntervalStats().dram_mpki


class TestEstimateWeightedMetric:
    def test_cpi_metric_matches_direct_path(self):
        intervals = [
            IntervalStats(100, 200.0, 1.0),
            IntervalStats(100, 400.0, 3.0),
        ]
        estimate = estimate_weighted_metric(
            [(0, 0.5), (1, 0.5)], intervals, lambda s: s.cpi
        )
        assert estimate == pytest.approx(3.0)

    def test_mpki_metric(self):
        intervals = [
            IntervalStats(1000, 2000.0, 2.0),
            IntervalStats(1000, 4000.0, 6.0),
        ]
        estimate = estimate_weighted_metric(
            [(0, 0.25), (1, 0.75)], intervals, lambda s: s.dram_mpki
        )
        assert estimate == pytest.approx(0.25 * 2.0 + 0.75 * 6.0)

    def test_rejects_empty_points(self):
        with pytest.raises(SimulationError):
            estimate_weighted_metric([], [], lambda s: s.cpi)

    def test_rejects_out_of_range(self):
        with pytest.raises(SimulationError, match="out of range"):
            estimate_weighted_metric(
                [(3, 1.0)], [IntervalStats(1, 1.0)], lambda s: s.cpi
            )


class TestMPKIOnRealRun:
    """The sampled MPKI estimate tracks the full-run MPKI, with the
    same machinery that estimates CPI — the paper's 'etc.' claim."""

    @pytest.fixture(scope="class")
    def art_run(self):
        return run_benchmark("art")

    def test_tracker_dram_totals_conserved(self, art_run):
        for outcome in art_run.outcomes.values():
            tracked = sum(
                interval.dram_accesses
                for interval in outcome.vli_intervals
            )
            assert tracked == pytest.approx(outcome.stats.dram_reads)

    def test_vli_mpki_estimate_accurate(self, art_run):
        for outcome in art_run.outcomes.values():
            weights = outcome.vli_weights
            point_weights = [
                (point.interval_index, weights.get(point.cluster, 0.0))
                for point in art_run.cross.mapped_points
            ]
            estimated = estimate_weighted_metric(
                point_weights, outcome.vli_intervals,
                lambda s: s.dram_mpki,
            )
            true_mpki = (
                1000.0 * outcome.stats.dram_reads
                / outcome.stats.instructions
            )
            assert estimated == pytest.approx(true_mpki, rel=0.25)

    def test_fli_mpki_estimate_accurate(self, art_run):
        for outcome in art_run.outcomes.values():
            point_weights = [
                (point.interval_index, point.weight)
                for point in outcome.fli_simpoint.points
            ]
            estimated = estimate_weighted_metric(
                point_weights, outcome.fli_intervals,
                lambda s: s.dram_mpki,
            )
            true_mpki = (
                1000.0 * outcome.stats.dram_reads
                / outcome.stats.instructions
            )
            assert estimated == pytest.approx(true_mpki, rel=0.25)
