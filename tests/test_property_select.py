"""Property tests for the BIC k-selection rules.

SimPoint 3.0's binary search is only a shortcut: on a monotone
(non-decreasing) BIC curve it must agree *exactly* with the exhaustive
rule, because both normalize against the same extremes (k=1 and k=maxK)
and the qualification predicate is monotone in k. Hypothesis drives
both choosers over arbitrary monotone curves with the BIC scorer
stubbed to the generated curve.
"""

from unittest import mock

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simpoint import select

_SETTINGS = settings(deadline=None, max_examples=50)

#: Monotone non-decreasing BIC curves: a base score plus cumulative
#: non-negative increments. Length doubles as maxK (and point count).
_monotone_curves = st.builds(
    lambda base, deltas: tuple(
        base + sum(deltas[:i]) for i in range(len(deltas) + 1)
    ),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=0,
        max_size=7,
    ),
)


class TestBinarySearchMatchesExhaustive:
    @_SETTINGS
    @given(
        curve=_monotone_curves,
        threshold=st.sampled_from([0.3, 0.9, 1.0]),
    )
    def test_agreement_on_monotone_curves(self, curve, threshold):
        n = len(curve)
        points = np.arange(float(n)).reshape(-1, 1)
        weights = np.ones(n)
        fake_bic = lambda points, result, weights: curve[result.k - 1]
        with mock.patch.object(select, "bic_score", fake_bic):
            exhaustive = select.choose_clustering(
                points, weights, max_k=n, bic_threshold=threshold,
                n_init=1, max_iter=10,
            )
            bisected = select.choose_clustering_binary_search(
                points, weights, max_k=n, bic_threshold=threshold,
                n_init=1, max_iter=10,
            )
        assert bisected.k == exhaustive.k

    @_SETTINGS
    @given(curve=_monotone_curves)
    def test_binary_search_trace_is_k_ordered(self, curve):
        n = len(curve)
        points = np.arange(float(n)).reshape(-1, 1)
        fake_bic = lambda points, result, weights: curve[result.k - 1]
        with mock.patch.object(select, "bic_score", fake_bic):
            choice = select.choose_clustering_binary_search(
                points, np.ones(n), max_k=n, n_init=1, max_iter=10
            )
        # The sparse trace reports evaluated scores in k order, and the
        # chosen index points at the chosen k's score.
        assert choice.bic_scores[choice.chosen_index] == curve[choice.k - 1]
