"""Tests for repro.analysis.timeline and the CLI phases command."""

import pytest

from repro.analysis.timeline import phase_strip, render_phase_timeline
from repro.errors import SimulationError


class TestPhaseStrip:
    def test_simple_strip(self):
        assert phase_strip([0, 1, 2, 0]) == "ABCA"

    def test_wraps_at_width(self):
        strip = phase_strip([0] * 10, width=4)
        assert strip == "AAAA\nAAAA\nAA"

    def test_many_phases_lump_beyond_glyphs(self):
        assert phase_strip([30]) == "#"

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            phase_strip([])

    def test_rejects_bad_width(self):
        with pytest.raises(SimulationError):
            phase_strip([0], width=0)

    def test_rejects_negative_label(self):
        with pytest.raises(SimulationError):
            phase_strip([-1])


class TestRenderTimeline:
    def test_includes_legend_and_title(self):
        text = render_phase_timeline(
            [0, 0, 1], weights={0: 0.7, 1: 0.3}, title="demo"
        )
        assert text.startswith("demo (3 intervals")
        assert "AAB" in text
        assert "A=phase 0 (70.0%)" in text
        assert "B=phase 1 (30.0%)" in text

    def test_weights_optional(self):
        text = render_phase_timeline([1, 0])
        assert "A=phase 0" in text
        assert "(%" not in text

    def test_legend_sorted_by_label(self):
        text = render_phase_timeline([2, 0, 1])
        legend = text.splitlines()[-1]
        assert legend.index("A=") < legend.index("B=") < legend.index("C=")


class TestCLIPhases:
    def test_phases_command(self, capsys):
        from repro.cli import main

        assert main(["phases", "art"]) == 0
        out = capsys.readouterr().out
        assert "mappable (VLI) phases" in out
        assert "art/32u: per-binary (FLI) phases" in out
        assert "art/64o: per-binary (FLI) phases" in out
        assert "legend:" in out
