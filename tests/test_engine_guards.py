"""Guard tests for the execution engine on malformed binaries."""

import pytest

from repro.compilation.binary import (
    Binary,
    BlockKind,
    LCall,
    LoweredBlock,
    ProcedureCode,
)
from repro.compilation.targets import TARGET_32U
from repro.errors import ExecutionError
from repro.execution.engine import MAX_CALL_DEPTH, run_binary


def _block(block_id):
    return LoweredBlock(
        block_id=block_id,
        kind=BlockKind.PROC_ENTRY if block_id % 2 == 0 else BlockKind.CALL,
        instructions=1,
        base_cpi=1.0,
    )


def _recursive_binary():
    """main calls itself forever (hand-built; the compiler can't emit
    this because the IR validator rejects call cycles)."""
    blocks = {0: _block(0), 1: _block(1)}
    main = ProcedureCode(
        name="main",
        entry_block=0,
        body=(LCall(callee="main", call_block=1),),
    )
    return Binary(
        program_name="evil",
        target=TARGET_32U,
        entry="main",
        procedures={"main": main},
        blocks=blocks,
        loops={},
        symbols=frozenset({"main"}),
    )


class TestEngineGuards:
    def test_recursion_detected(self):
        with pytest.raises(ExecutionError, match="call depth exceeded"):
            run_binary(_recursive_binary())

    def test_unknown_callee_detected(self):
        blocks = {0: _block(0), 1: _block(1)}
        main = ProcedureCode(
            name="main",
            entry_block=0,
            body=(LCall(callee="ghost", call_block=1),),
        )
        binary = Binary(
            program_name="evil",
            target=TARGET_32U,
            entry="main",
            procedures={"main": main},
            blocks=blocks,
            loops={},
            symbols=frozenset({"main"}),
        )
        with pytest.raises(ExecutionError, match="unknown procedure"):
            run_binary(binary)

    def test_depth_limit_is_generous(self):
        """Legitimate (deep but finite) call chains run fine."""
        blocks = {}
        procedures = {}
        depth = MAX_CALL_DEPTH - 8
        for i in range(depth):
            entry_id = 2 * i
            call_id = 2 * i + 1
            blocks[entry_id] = _block(entry_id)
            blocks[call_id] = _block(call_id)
            name = "main" if i == 0 else f"p{i}"
            body = ()
            if i + 1 < depth:
                callee = f"p{i + 1}"
                body = (LCall(callee=callee, call_block=call_id),)
            procedures[name] = ProcedureCode(
                name=name, entry_block=entry_id, body=body,
            )
        binary = Binary(
            program_name="deep",
            target=TARGET_32U,
            entry="main",
            procedures=procedures,
            blocks=blocks,
            loops={},
            symbols=frozenset(procedures),
        )
        totals = run_binary(binary)
        assert totals.instructions == 2 * depth - 1
