"""Scalar-vs-batched equivalence oracles for the memory-system kernels.

The batched paths — closed-form reference generation
(:func:`generate_refs_bulk` / :class:`BulkAccessPattern`), the cache
replay engines behind :meth:`SetAssociativeCache.access_many`, the
hierarchy's level-by-level :meth:`MemoryHierarchy.access_many`, and the
deferred-flush detailed simulator — must be *bit-identical* to the
scalar reference-at-a-time implementations, which serve as the oracle.
Identity is asserted on outputs, statistics, and observable cache state
(per-set MRU-ordered ``(line, dirty)`` pairs via ``set_state``; way
placement and raw stamp values are engine-internal and may differ).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmpsim.cache import SetAssociativeCache
from repro.cmpsim.config import (
    BIG_LLC_CONFIG,
    CacheLevelConfig,
    PREFETCH_CONFIG,
    TABLE1_CONFIG,
)
from repro.cmpsim.hierarchy import MemoryHierarchy
from repro.cmpsim.memory import (
    AddressStreamState,
    bulk_pattern,
    generate_refs,
    generate_refs_bulk,
)
from repro.cmpsim.simulator import CMPSim, FLITracker
from repro.compilation.binary import AccessSpec
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import TARGET_32O, TARGET_32U
from repro.programs.behaviors import AccessKind
from repro.programs.suite import build_benchmark


def stream_state(state):
    return (state.cursors, state.lcg, state.write_acc)


def cache_state(cache):
    return (
        [cache.set_state(i) for i in range(cache.config.n_sets)],
        (
            cache.stats.read_hits,
            cache.stats.read_misses,
            cache.stats.write_hits,
            cache.stats.write_misses,
            cache.stats.writebacks_out,
        ),
    )


def hierarchy_state(hierarchy):
    return (
        [cache_state(cache) for cache in hierarchy.caches],
        hierarchy.dram_reads,
        hierarchy.dram_writebacks,
        hierarchy.prefetches,
    )


def scalar_cache_replay(cache, lines, writes):
    """The oracle: one scalar access per reference, in order."""
    miss = []
    victims = []
    for position, (line, write) in enumerate(zip(lines, writes)):
        hit, victim = cache.access(line, write)
        if not hit:
            miss.append(position)
        if victim is not None:
            victims.append((position, victim))
    return miss, victims


def dup_heavy_workload(rng, n, span, write_p, dup_p):
    """Random references with block-stream-like consecutive repeats."""
    lines = [rng.randrange(span) for _ in range(n)]
    for index in range(1, n):
        if rng.random() < dup_p:
            lines[index] = lines[index - 1]
    writes = [rng.random() < write_p for _ in range(n)]
    return lines, writes


# ----------------------------------------------------------------------
# Reference generation
# ----------------------------------------------------------------------

SPEC_STRATEGY = st.builds(
    AccessSpec,
    stream_id=st.integers(min_value=0, max_value=7),
    kind=st.sampled_from(list(AccessKind)),
    base=st.sampled_from([0, 1 << 20, 3 << 21]),
    footprint=st.integers(min_value=64, max_value=200_000),
    stride=st.sampled_from([8, 16, 32, 64]),
    refs_per_exec=st.integers(min_value=1, max_value=5),
    read_fraction=st.sampled_from([0.0, 0.25, 0.5, 0.7, 0.9, 1.0]),
)


class TestBulkReferenceGeneration:
    @settings(deadline=None, max_examples=120)
    @given(spec=SPEC_STRATEGY, rounds=st.integers(min_value=1, max_value=60))
    def test_bulk_matches_scalar(self, spec, rounds):
        scalar_state = AddressStreamState()
        bulk_state = AddressStreamState()
        expected = []
        for _ in range(rounds):
            expected.extend(generate_refs(spec, scalar_state))
        lines, writes = generate_refs_bulk(spec, bulk_state, rounds)
        assert lines.tolist() == [line for line, _ in expected]
        assert writes.tolist() == [write for _, write in expected]
        assert stream_state(scalar_state) == stream_state(bulk_state)

    @settings(deadline=None, max_examples=60)
    @given(
        spec=SPEC_STRATEGY,
        prefix=st.integers(min_value=0, max_value=25),
        rounds=st.integers(min_value=1, max_value=25),
    )
    def test_mid_stream_handoff(self, spec, prefix, rounds):
        """Bulk generation picks up exactly where scalar left off."""
        scalar_state = AddressStreamState()
        bulk_state = AddressStreamState()
        expected = []
        for _ in range(prefix + rounds):
            expected.extend(generate_refs(spec, scalar_state))
        for _ in range(prefix):
            list(generate_refs(spec, bulk_state))
        lines, writes = generate_refs_bulk(spec, bulk_state, rounds)
        tail = expected[prefix * spec.refs_per_exec :]
        assert lines.tolist() == [line for line, _ in tail]
        assert writes.tolist() == [write for _, write in tail]
        assert stream_state(scalar_state) == stream_state(bulk_state)

    def test_shared_streams_across_specs(self):
        """Specs sharing a stream id interleave exactly as scalar."""
        shared = (
            AccessSpec(stream_id=11, kind=AccessKind.STACK, base=0,
                       footprint=2048, stride=32, refs_per_exec=2,
                       read_fraction=0.8),
            AccessSpec(stream_id=12, kind=AccessKind.RANDOM, base=1 << 21,
                       footprint=9999, stride=0, refs_per_exec=3,
                       read_fraction=0.4),
            AccessSpec(stream_id=11, kind=AccessKind.STACK, base=0,
                       footprint=2048, stride=32, refs_per_exec=1,
                       read_fraction=0.8),
            AccessSpec(stream_id=12, kind=AccessKind.POINTER_CHASE,
                       base=1 << 21, footprint=9999, stride=0,
                       refs_per_exec=2, read_fraction=0.4),
        )
        scalar_state = AddressStreamState()
        bulk_state = AddressStreamState()
        expected = []
        for _ in range(57):
            for spec in shared:
                expected.extend(generate_refs(spec, scalar_state))
        lines, writes = bulk_pattern(shared).generate(bulk_state, 57)
        assert lines.tolist() == [line for line, _ in expected]
        assert writes.tolist() == [write for _, write in expected]
        assert stream_state(scalar_state) == stream_state(bulk_state)


# ----------------------------------------------------------------------
# Cache replay engines
# ----------------------------------------------------------------------


class TestAccessManyEquivalence:
    @settings(deadline=None, max_examples=40)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=255), st.booleans()),
        min_size=1, max_size=200,
    ))
    def test_small_batches(self, accesses):
        """Small batches (Python replay path) match scalar exactly."""
        config = CacheLevelConfig(name="t", capacity=4096, associativity=4)
        scalar = SetAssociativeCache(config)
        batched = SetAssociativeCache(config)
        lines = [line for line, _ in accesses]
        writes = [write for _, write in accesses]
        expected_miss, expected_victims = scalar_cache_replay(
            scalar, lines, writes
        )
        miss, victims = batched.access_many(
            np.array(lines, dtype=np.int64), np.array(writes, dtype=bool)
        )
        assert miss.tolist() == expected_miss
        assert victims == expected_victims
        assert cache_state(scalar) == cache_state(batched)

    @pytest.mark.parametrize("assoc", [2, 4, 8])
    @pytest.mark.parametrize("dup_p", [0.0, 0.6])
    def test_large_batches(self, assoc, dup_p):
        """Large batches route to the vectorized engines (the 2-way
        closed form at ``assoc == 2``, lanes otherwise)."""
        rng = random.Random(assoc * 100 + int(dup_p * 10))
        config = CacheLevelConfig(
            name="t", capacity=64 * 64 * assoc, associativity=assoc
        )
        lines, writes = dup_heavy_workload(rng, 6000, 4000, 0.35, dup_p)
        scalar = SetAssociativeCache(config)
        batched = SetAssociativeCache(config)
        expected_miss, expected_victims = scalar_cache_replay(
            scalar, lines, writes
        )
        miss, victims = batched.access_many(
            np.array(lines, dtype=np.int64), np.array(writes, dtype=bool)
        )
        assert miss.tolist() == expected_miss
        assert victims == expected_victims
        assert cache_state(scalar) == cache_state(batched)

    def test_batch_then_scalar_handoff(self):
        """State left by a batch is indistinguishable to later scalar
        accesses (mixed-use sessions: warmup batched, probe scalar)."""
        rng = random.Random(9)
        config = CacheLevelConfig(name="t", capacity=8192, associativity=2)
        lines, writes = dup_heavy_workload(rng, 9000, 600, 0.4, 0.5)
        scalar = SetAssociativeCache(config)
        mixed = SetAssociativeCache(config)
        for line, write in zip(lines[:3000], writes[:3000]):
            scalar.access(line, write)
            mixed.access(line, write)
        expected_miss, expected_victims = scalar_cache_replay(
            scalar, lines[3000:6000], writes[3000:6000]
        )
        miss, victims = mixed.access_many(
            np.array(lines[3000:6000], dtype=np.int64),
            np.array(writes[3000:6000], dtype=bool),
        )
        assert miss.tolist() == expected_miss
        assert victims == expected_victims
        for line, write in zip(lines[6000:], writes[6000:]):
            hit_a, _ = scalar.access(line, write)
            hit_b, _ = mixed.access(line, write)
            assert hit_a == hit_b
        assert cache_state(scalar) == cache_state(mixed)


class TestHierarchyBatchEquivalence:
    @pytest.mark.parametrize(
        "config",
        [TABLE1_CONFIG, PREFETCH_CONFIG, BIG_LLC_CONFIG],
        ids=["table1", "prefetch", "big-llc"],
    )
    def test_access_many_matches_scalar(self, config):
        rng = random.Random(17)
        for n in (10, 300, 2000, 20000):
            lines, writes = dup_heavy_workload(rng, n, 70_000, 0.35, 0.3)
            scalar = MemoryHierarchy(config)
            expected = [
                scalar.access(line, write)
                for line, write in zip(lines, writes)
            ]
            batched = MemoryHierarchy(config)
            serviced = batched.access_many(
                np.array(lines, dtype=np.int64), np.array(writes, dtype=bool)
            )
            assert serviced.tolist() == expected
            assert hierarchy_state(scalar) == hierarchy_state(batched)

    @pytest.mark.parametrize(
        "config",
        [TABLE1_CONFIG, PREFETCH_CONFIG, BIG_LLC_CONFIG],
        ids=["table1", "prefetch", "big-llc"],
    )
    def test_scalar_batch_interleave(self, config):
        rng = random.Random(23)
        lines, writes = dup_heavy_workload(rng, 4000, 50_000, 0.35, 0.3)
        scalar = MemoryHierarchy(config)
        mixed = MemoryHierarchy(config)
        for line, write in zip(lines[:2000], writes[:2000]):
            scalar.access(line, write)
        mixed.access_many(
            np.array(lines[:2000], dtype=np.int64),
            np.array(writes[:2000], dtype=bool),
        )
        expected = [
            scalar.access(line, write)
            for line, write in zip(lines[2000:], writes[2000:])
        ]
        serviced = mixed.access_many(
            np.array(lines[2000:], dtype=np.int64),
            np.array(writes[2000:], dtype=bool),
        )
        assert serviced.tolist() == expected
        assert hierarchy_state(scalar) == hierarchy_state(mixed)


# ----------------------------------------------------------------------
# Full simulator runs
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def suite_binaries():
    binaries = {}
    for name in ("art", "mcf"):
        program = build_benchmark(name)
        binaries[name] = compile_standard_binaries(
            program, (TARGET_32U, TARGET_32O)
        )
    return binaries


FULL_RUN_CASES = [
    ("art", TARGET_32U, TABLE1_CONFIG, "art-32u-table1"),
    ("art", TARGET_32U, PREFETCH_CONFIG, "art-32u-prefetch"),
    ("art", TARGET_32O, TABLE1_CONFIG, "art-32o-table1"),
    ("mcf", TARGET_32U, BIG_LLC_CONFIG, "mcf-32u-big-llc"),
]


class TestFullRunEquivalence:
    @pytest.mark.parametrize(
        "program,target,config",
        [(p, t, c) for p, t, c, _ in FULL_RUN_CASES],
        ids=[case_id for _, _, _, case_id in FULL_RUN_CASES],
    )
    def test_batched_run_is_bit_identical(
        self, suite_binaries, program, target, config
    ):
        """The whole pipeline: SimulationStats, HierarchyStats, and
        every per-interval FLI value must match the scalar oracle."""
        binary = suite_binaries[program][target]
        sim = CMPSim(binary, config)
        scalar_fli = FLITracker(100_000)
        batched_fli = FLITracker(100_000)
        scalar = sim.run_full(trackers=(scalar_fli,), batched=False)
        batched = sim.run_full(trackers=(batched_fli,), batched=True)
        assert scalar.stats == batched.stats
        assert scalar.hierarchy == batched.hierarchy
        assert len(scalar_fli.intervals) == len(batched_fli.intervals)
        for left, right in zip(scalar_fli.intervals, batched_fli.intervals):
            assert left.instructions == right.instructions
            assert left.cycles == right.cycles
            assert left.dram_accesses == right.dram_accesses

    def test_untracked_run_is_bit_identical(self, suite_binaries):
        """The no-tracker cycle fold (np.add.accumulate) is exact."""
        binary = suite_binaries["art"][TARGET_32U]
        sim = CMPSim(binary)
        scalar = sim.run_full(batched=False)
        batched = sim.run_full(batched=True)
        assert scalar.stats == batched.stats
        assert scalar.hierarchy == batched.hierarchy
        assert scalar.stats.cycles == batched.stats.cycles
        assert scalar.stats.cpi == batched.stats.cpi
