"""Tests for repro.experiments: runner, figures, tables, reporting.

These run the real harness on the suite's smallest benchmark (art), so
they are integration-grade; the result is cached in-process.
"""

import pytest

from repro.errors import SimulationError
from repro.experiments.figures import (
    figure1_number_of_simpoints,
    figure2_interval_sizes,
    figure3_cpi_error,
    figure4_speedup_error_same_platform,
    figure5_speedup_error_cross_platform,
    pair_speedup_error,
)
from repro.experiments.reporting import (
    render_figure,
    render_phase_comparison,
    render_table1,
)
from repro.experiments.runner import run_benchmark, run_suite
from repro.experiments.tables import (
    phase_comparison,
    table1_configuration,
)


@pytest.fixture(scope="module")
def art_run():
    return run_benchmark("art")


@pytest.fixture(scope="module")
def art_runs(art_run):
    return {"art": art_run}


class TestRunner:
    def test_four_outcomes(self, art_run):
        assert set(art_run.outcomes) == {"32u", "32o", "64u", "64o"}

    def test_cache_returns_same_object(self, art_run):
        assert run_benchmark("art") is art_run

    def test_unknown_outcome_label(self, art_run):
        with pytest.raises(SimulationError):
            art_run.outcome("128u")

    def test_fli_interval_counts_differ_across_binaries(self, art_run):
        counts = {
            label: len(outcome.fli_intervals)
            for label, outcome in art_run.outcomes.items()
        }
        assert counts["32u"] > counts["32o"]

    def test_vli_interval_counts_identical(self, art_run):
        counts = {
            len(outcome.vli_intervals)
            for outcome in art_run.outcomes.values()
        }
        assert len(counts) == 1

    def test_estimates_present_and_sane(self, art_run):
        for outcome in art_run.outcomes.values():
            for estimate in (outcome.fli_estimate, outcome.vli_estimate):
                assert estimate.true_cpi > 0.5
                assert estimate.estimated_cpi > 0.5
                assert 0 <= estimate.cpi_error < 1.0

    def test_vli_weights_sum_to_one(self, art_run):
        for outcome in art_run.outcomes.values():
            assert sum(outcome.vli_weights.values()) == pytest.approx(1.0)

    def test_unoptimized_executes_more(self, art_run):
        assert (
            art_run.outcome("32u").stats.instructions
            > art_run.outcome("32o").stats.instructions
        )

    def test_run_suite_returns_all(self):
        runs = run_suite(["art"])
        assert set(runs) == {"art"}


class TestFigures:
    def test_figure1_series(self, art_runs):
        data = figure1_number_of_simpoints(art_runs)
        assert data.benchmarks == ("art",)
        assert 1 <= data.value("VLI", "art") <= 10
        assert 1 <= data.value("FLI", "art") <= 10

    def test_figure2_vli_at_least_near_target(self, art_runs, art_run):
        data = figure2_interval_sizes(art_runs)
        target = art_run.config.interval_size
        assert data.value("FLI (fixed)", "art") == target
        # Mapped intervals shrink in optimized binaries, so the average
        # can fall below the target, but not absurdly far.
        assert data.value("VLI", "art") > 0.3 * target

    def test_figure3_errors_are_small(self, art_runs):
        data = figure3_cpi_error(art_runs)
        assert 0 <= data.value("FLI", "art") < 0.5
        assert 0 <= data.value("VLI", "art") < 0.5

    def test_figure4_has_four_series(self, art_runs):
        data = figure4_speedup_error_same_platform(art_runs)
        assert set(data.series) == {
            "fli_32u32o", "vli_32u32o", "fli_64u64o", "vli_64u64o",
        }

    def test_figure5_has_four_series(self, art_runs):
        data = figure5_speedup_error_cross_platform(art_runs)
        assert set(data.series) == {
            "fli_32u64u", "vli_32u64u", "fli_32o64o", "vli_32o64o",
        }

    def test_pair_speedup_error_true_speedup_positive(self, art_run):
        comparison = pair_speedup_error(art_run, "vli", "32u", "32o")
        assert comparison.true_speedup > 1.0  # O2 is faster
        assert comparison.error >= 0.0

    def test_pair_speedup_rejects_unknown_method(self, art_run):
        with pytest.raises(SimulationError):
            pair_speedup_error(art_run, "nope", "32u", "32o")

    def test_average(self, art_runs):
        data = figure3_cpi_error(art_runs)
        assert data.average("FLI") == data.value("FLI", "art")


class TestTables:
    def test_table1_matches_paper_text(self):
        rows = table1_configuration()
        levels = {row.level: row for row in rows}
        assert levels["FLC(L1D)"].capacity == "32KB"
        assert levels["MLC(L2D)"].associativity == "8-way"
        assert levels["LLC(L3D)"].hit_latency == "35 cycles"
        assert levels["DRAM"].hit_latency == "250 cycles"

    def test_phase_comparison_shapes(self, art_run):
        comparison = phase_comparison("art", "32u", "64u", run=art_run)
        for label in ("32u", "64u"):
            assert 1 <= len(comparison.vli_rows[label]) <= 3
            assert 1 <= len(comparison.fli_rows[label]) <= 3
            for row in comparison.vli_rows[label]:
                assert 0 < row.weight <= 1
                assert row.true_cpi > 0

    def test_vli_phases_correspond_across_binaries(self, art_run):
        """VLI phases come from one clustering, so top phases in both
        binaries refer to the same cluster ids with similar weights."""
        comparison = phase_comparison("art", "32u", "64u", run=art_run)
        clusters_a = {r.cluster for r in comparison.vli_rows["32u"]}
        clusters_b = {r.cluster for r in comparison.vli_rows["64u"]}
        assert clusters_a == clusters_b

    def test_bias_swings_computable(self, art_run):
        comparison = phase_comparison("art", "32u", "64u", run=art_run)
        assert comparison.max_fli_bias_swing() >= 0.0
        assert comparison.max_vli_bias_swing() >= 0.0


class TestReporting:
    def test_render_figure_contains_all_benchmarks(self, art_runs):
        text = render_figure(figure1_number_of_simpoints(art_runs))
        assert "art" in text
        assert "Avg" in text
        assert "FLI" in text and "VLI" in text

    def test_render_table1(self):
        text = render_table1(table1_configuration())
        assert "32KB" in text
        assert "250 cycles" in text

    def test_render_phase_comparison(self, art_run):
        comparison = phase_comparison("art", "32u", "64u", run=art_run)
        text = render_phase_comparison(comparison)
        assert "[VLI]" in text and "[FLI]" in text
        assert "max bias swing" in text
