"""Tests for repro.cmpsim.memory and repro.cmpsim.cpu."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cmpsim.cpu import CPIModel
from repro.cmpsim.config import CacheLevelConfig, MemoryConfig, TABLE1_CONFIG
from repro.cmpsim.memory import (
    AddressStreamState,
    advance_stream,
    generate_refs,
)
from repro.compilation.binary import AccessSpec
from repro.errors import SimulationError
from repro.programs.behaviors import AccessKind


def _spec(kind, footprint=4096, refs=4, stride=64, read_fraction=0.75,
          stream_id=1, base=0x1000):
    return AccessSpec(
        stream_id=stream_id,
        kind=kind,
        base=base,
        footprint=footprint,
        stride=stride,
        refs_per_exec=refs,
        read_fraction=read_fraction,
    )


class TestGenerateRefs:
    def test_stream_is_strided(self):
        spec = _spec(AccessKind.STREAM, stride=64, refs=4)
        refs = generate_refs(spec, AddressStreamState())
        lines = [line for line, _ in refs]
        assert lines == [lines[0] + i for i in range(4)]

    def test_stream_wraps_at_footprint(self):
        spec = _spec(AccessKind.STREAM, footprint=128, stride=64, refs=4)
        refs = generate_refs(spec, AddressStreamState())
        lines = {line for line, _ in refs}
        assert len(lines) == 2  # only two lines exist in the footprint

    def test_cursor_persists_across_executions(self):
        spec = _spec(AccessKind.STREAM, footprint=1 << 16, refs=2)
        state = AddressStreamState()
        first = generate_refs(spec, state)
        second = generate_refs(spec, state)
        assert second[0][0] > first[-1][0] - 1  # keeps advancing

    def test_random_within_footprint(self):
        spec = _spec(AccessKind.RANDOM, footprint=4096, refs=100)
        refs = generate_refs(spec, AddressStreamState())
        base_line = spec.base >> 6
        end_line = (spec.base + spec.footprint) >> 6
        for line, _ in refs:
            assert base_line <= line <= end_line

    def test_pointer_chase_deterministic(self):
        spec = _spec(AccessKind.POINTER_CHASE, refs=10)
        a = generate_refs(spec, AddressStreamState())
        b = generate_refs(spec, AddressStreamState())
        assert a == b

    def test_blocked_stays_in_window(self):
        spec = _spec(AccessKind.BLOCKED, footprint=1 << 20, stride=16,
                     refs=64)
        refs = generate_refs(spec, AddressStreamState())
        lines = [line for line, _ in refs]
        assert max(lines) - min(lines) <= (8 * 1024) >> 6

    def test_write_fraction_approximate(self):
        spec = _spec(AccessKind.STREAM, refs=1000, read_fraction=0.75)
        refs = generate_refs(spec, AddressStreamState())
        writes = sum(1 for _, write in refs if write)
        assert writes == pytest.approx(250, abs=5)

    def test_zero_refs(self):
        spec = _spec(AccessKind.STREAM, refs=0)
        assert generate_refs(spec, AddressStreamState()) == []

    def test_distinct_streams_have_independent_cursors(self):
        spec_a = _spec(AccessKind.STREAM, stream_id=1)
        spec_b = _spec(AccessKind.STREAM, stream_id=2, base=0x100000)
        state = AddressStreamState()
        generate_refs(spec_a, state)
        before = state.cursors.get(2, 0)
        generate_refs(spec_b, state)
        assert state.cursors[1] == state.cursors[2] + before


class TestAdvanceStream:
    @pytest.mark.parametrize("kind", [
        AccessKind.STREAM, AccessKind.STACK, AccessKind.BLOCKED,
        AccessKind.RANDOM, AccessKind.POINTER_CHASE,
    ])
    @pytest.mark.parametrize("execs", [1, 3, 17])
    def test_advance_equals_generate(self, kind, execs):
        """advance_stream(n) must land exactly where n generate_refs
        calls land — this keeps cold fast-forward deterministic."""
        spec = _spec(kind, footprint=1 << 16, refs=5)
        generated = AddressStreamState()
        for _ in range(execs):
            generate_refs(spec, generated)
        advanced = AddressStreamState()
        advance_stream(spec, advanced, execs)
        next_gen = generate_refs(spec, generated)
        next_adv = generate_refs(spec, advanced)
        assert next_gen == next_adv

    @settings(deadline=None, max_examples=20)
    @given(execs=st.integers(min_value=1, max_value=1000))
    def test_lcg_jump_matches_iteration(self, execs):
        spec = _spec(AccessKind.RANDOM, refs=3)
        slow = AddressStreamState()
        for _ in range(execs):
            generate_refs(spec, slow)
        fast = AddressStreamState()
        advance_stream(spec, fast, execs)
        assert generate_refs(spec, slow) == generate_refs(spec, fast)


class TestCPIModel:
    def test_from_table1(self):
        model = CPIModel.from_config(TABLE1_CONFIG)
        assert model.penalties == (0, 14, 35, 250)

    def test_block_cycles(self):
        model = CPIModel.from_config(TABLE1_CONFIG)
        assert model.block_cycles(100, 1.1, 250) == pytest.approx(360.0)

    def test_rejects_wrong_level_count(self):
        config = MemoryConfig(
            levels=(CacheLevelConfig("only", 1024, 1, 64, 3),)
        )
        with pytest.raises(SimulationError):
            CPIModel.from_config(config)
