"""Content-keyed reuse of detailed-simulation results.

Covers the key schema (stability and sensitivity), full-run and
per-region reuse with bit-identity against the uncached path, the
escape hatches, sweep-level reuse on both the direct and ``--via-jobs``
paths, and the observability surface (manifest sim block, ledger
flattening, drift gate).
"""

import dataclasses
import pickle

import pytest

from repro.cmpsim.config import TABLE1_CONFIG
from repro.cmpsim.simcache import (
    SIMRESULT_KIND,
    TrackedRun,
    cached_full_run,
    cached_region_run,
    full_run_key,
    region_run_keys,
)
from repro.cmpsim.simulator import CMPSim, RegionSpec
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.errors import SimulationError
from repro.experiments.runner import ExperimentConfig, clear_cache
from repro.experiments.sweeps import sweep_interval_sizes
from repro.jobs import JobQueue, ensure_default_executors
from repro.observability import metrics
from repro.observability.diff import (
    DriftThresholds,
    check_drift,
    diff_runs,
)
from repro.observability.ledger import entry_from_manifest
from repro.observability.manifest import build_manifest, validate_manifest
from repro.observability.metrics import Registry
from repro.profiling.callbranch import collect_call_branch_profile
from repro.programs.inputs import REF_INPUT, TEST_INPUT
from repro.runtime import ProfileCache, fingerprint, runtime_session
from repro.simpoint.simpoint import SimPointConfig

from tests.conftest import MICRO_INTERVAL

#: Fast experiment settings for the sweep-level reuse tests.
_FAST_CONFIG = ExperimentConfig(
    interval_size=40_000, simpoint=SimPointConfig(max_k=3, n_init=2)
)


@pytest.fixture(scope="module")
def marked(micro_binary_list):
    """(binary, marker table, VLI intervals) for the micro 32u binary."""
    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in micro_binary_list
    ]
    marker_set, _ = find_mappable_points(profiles)
    binary = micro_binary_list[0]
    intervals = collect_vli_bbvs(binary, marker_set, MICRO_INTERVAL)
    return binary, marker_set.table_for(binary.name), intervals


def _regions(intervals):
    return [
        RegionSpec(label=0, start=intervals[1].start_coord,
                   end=intervals[1].end_coord),
        RegionSpec(label=1, start=intervals[3].start_coord,
                   end=intervals[3].end_coord),
    ]


class TestKeySchema:
    def test_full_run_key_is_stable(self, micro_binary_32u):
        def key():
            return fingerprint(full_run_key(
                micro_binary_32u, TABLE1_CONFIG, REF_INPUT,
                MICRO_INTERVAL, None, None,
            ))

        assert key() == key()

    def test_full_run_key_tracks_every_input(self, marked,
                                             micro_binary_32o):
        binary, table, intervals = marked
        boundaries = tuple(
            interval.start_coord for interval in intervals[1:]
        )
        base = full_run_key(
            binary, TABLE1_CONFIG, REF_INPUT, MICRO_INTERVAL,
            table, boundaries,
        )
        variants = [
            # Different binary content.
            full_run_key(micro_binary_32o, TABLE1_CONFIG, REF_INPUT,
                         MICRO_INTERVAL, table, boundaries),
            # Different CMPSim memory configuration.
            full_run_key(binary,
                         dataclasses.replace(TABLE1_CONFIG,
                                             dram_latency=999),
                         REF_INPUT, MICRO_INTERVAL, table, boundaries),
            # Different program input.
            full_run_key(binary, TABLE1_CONFIG, TEST_INPUT,
                         MICRO_INTERVAL, table, boundaries),
            # Different FLI tracker granularity.
            full_run_key(binary, TABLE1_CONFIG, REF_INPUT,
                         MICRO_INTERVAL * 2, table, boundaries),
            # Different VLI boundaries.
            full_run_key(binary, TABLE1_CONFIG, REF_INPUT,
                         MICRO_INTERVAL, table, boundaries[:-1]),
        ]
        digests = {fingerprint(variant) for variant in variants}
        assert fingerprint(base) not in digests
        assert len(digests) == len(variants)

    def test_region_keys_cover_the_prefix_only(self, marked):
        binary, table, intervals = marked
        regions = _regions(intervals)
        keys, tail = region_run_keys(
            binary, regions, table, True, TABLE1_CONFIG, REF_INPUT
        )
        assert len(keys) == len(regions)
        # A boundary edit to region 1 leaves region 0's key untouched
        # but changes region 1's and the tail's.
        moved = [
            regions[0],
            RegionSpec(label=1, start=intervals[2].start_coord,
                       end=intervals[3].end_coord),
        ]
        moved_keys, moved_tail = region_run_keys(
            binary, moved, table, True, TABLE1_CONFIG, REF_INPUT
        )
        assert fingerprint(keys[0]) == fingerprint(moved_keys[0])
        assert fingerprint(keys[1]) != fingerprint(moved_keys[1])
        assert fingerprint(tail) != fingerprint(moved_tail)

    def test_warmup_policy_changes_region_keys(self, marked):
        binary, table, intervals = marked
        regions = _regions(intervals)
        warm_keys, _ = region_run_keys(
            binary, regions, table, True, TABLE1_CONFIG, REF_INPUT
        )
        cold_keys, _ = region_run_keys(
            binary, regions, table, False, TABLE1_CONFIG, REF_INPUT
        )
        assert all(
            fingerprint(warm) != fingerprint(cold)
            for warm, cold in zip(warm_keys, cold_keys)
        )


class TestCachedFullRun:
    def test_warm_run_bit_identical_and_counted(self, marked, tmp_path):
        binary, table, intervals = marked
        boundaries = tuple(
            interval.start_coord for interval in intervals[1:]
        )
        kwargs = dict(
            fli_interval_size=MICRO_INTERVAL,
            vli_table=table,
            vli_boundaries=boundaries,
        )
        direct = cached_full_run(binary, use_sim_cache=False, **kwargs)
        cache = ProfileCache(tmp_path)
        with metrics.scoped_registry() as local:
            cold = cached_full_run(binary, cache=cache, **kwargs)
            warm = cached_full_run(binary, cache=cache, **kwargs)
        assert isinstance(direct, TrackedRun)
        assert pickle.dumps(direct) == pickle.dumps(cold)
        assert pickle.dumps(direct) == pickle.dumps(warm)
        row = cache.stats.by_kind[SIMRESULT_KIND]
        assert (row.hits, row.misses) == (1, 1)
        counters = local.snapshot()["counters"]
        assert counters["cache.sim.hits"] == 1
        assert counters["cache.sim.misses"] == 1

    def test_batched_flag_is_not_part_of_the_key(self, micro_binary_32u,
                                                 tmp_path):
        cache = ProfileCache(tmp_path)
        batched = cached_full_run(
            micro_binary_32u, fli_interval_size=MICRO_INTERVAL,
            cache=cache, batched=True,
        )
        scalar = cached_full_run(
            micro_binary_32u, fli_interval_size=MICRO_INTERVAL,
            cache=cache, batched=False,
        )
        assert pickle.dumps(batched) == pickle.dumps(scalar)
        row = cache.stats.by_kind[SIMRESULT_KIND]
        assert (row.hits, row.misses) == (1, 1)

    def test_escape_hatches_disable_reuse(self, micro_binary_32u,
                                          tmp_path, monkeypatch):
        cache = ProfileCache(tmp_path)
        kwargs = dict(fli_interval_size=MICRO_INTERVAL, cache=cache)
        # Per-call veto.
        cached_full_run(micro_binary_32u, use_sim_cache=False, **kwargs)
        assert SIMRESULT_KIND not in cache.stats.by_kind
        # Process default (the CLI's --no-sim-cache lands here).
        with runtime_session(sim_cache=False):
            cached_full_run(micro_binary_32u, **kwargs)
        assert SIMRESULT_KIND not in cache.stats.by_kind
        # Environment veto.
        monkeypatch.setenv("REPRO_NO_SIM_CACHE", "1")
        cached_full_run(micro_binary_32u, **kwargs)
        assert SIMRESULT_KIND not in cache.stats.by_kind
        monkeypatch.delenv("REPRO_NO_SIM_CACHE")
        # And with every hatch open, reuse resumes.
        cached_full_run(micro_binary_32u, **kwargs)
        assert cache.stats.by_kind[SIMRESULT_KIND].misses == 1


class TestCachedRegionRun:
    def test_full_hit_skips_simulation_entirely(self, marked, tmp_path,
                                                monkeypatch):
        binary, table, intervals = marked
        regions = _regions(intervals)
        direct = CMPSim(binary).run_regions(regions, table, warm=True)
        cache = ProfileCache(tmp_path)
        cold = cached_region_run(binary, regions, table, cache=cache)
        assert pickle.dumps(cold) == pickle.dumps(direct)

        def _bomb(self, *args, **kwargs):
            raise AssertionError("warm region run re-simulated")

        monkeypatch.setattr(CMPSim, "run_regions", _bomb)
        with metrics.scoped_registry() as local:
            warm = cached_region_run(binary, regions, table, cache=cache)
        assert pickle.dumps(warm) == pickle.dumps(direct)
        counters = local.snapshot()["counters"]
        # One per-region probe per region; the tail entry is run-level
        # bookkeeping and deliberately outside the sim counters.
        assert counters["cache.sim.hits"] == len(regions)
        assert "cache.sim.misses" not in counters

    def test_boundary_edit_reuses_the_unchanged_prefix(self, marked,
                                                       tmp_path):
        binary, table, intervals = marked
        regions = _regions(intervals)
        cache = ProfileCache(tmp_path)
        cached_region_run(binary, regions, table, cache=cache)
        moved = [
            regions[0],
            RegionSpec(label=1, start=intervals[2].start_coord,
                       end=intervals[3].end_coord),
        ]
        direct = CMPSim(binary).run_regions(moved, table, warm=True)
        with metrics.scoped_registry() as local:
            result = cached_region_run(binary, moved, table, cache=cache)
        assert pickle.dumps(result) == pickle.dumps(direct)
        counters = local.snapshot()["counters"]
        assert counters["cache.sim.hits"] == 1  # region 0's prefix key
        assert counters["cache.sim.misses"] == 1  # the edited region
        # And the refilled entries serve the edited list in full.
        fresh = cached_region_run(binary, moved, table, cache=cache)
        assert pickle.dumps(fresh) == pickle.dumps(direct)

    def test_invalid_region_lists_still_raise(self, marked, tmp_path):
        binary, table, intervals = marked
        bad = [
            RegionSpec(label=0, start=intervals[1].start_coord,
                       end=intervals[1].end_coord),
            RegionSpec(label=1, start=None,
                       end=intervals[3].end_coord),
        ]
        cache = ProfileCache(tmp_path)
        for _ in range(2):  # the failure must not poison the cache
            with pytest.raises(SimulationError, match="first region"):
                cached_region_run(binary, bad, table, cache=cache)


class TestSweepReuse:
    def test_warm_sweep_bit_identical_to_cold_and_uncached(self,
                                                           tmp_path):
        sizes = [30_000, 60_000]
        with runtime_session(cache=None):
            clear_cache()
            uncached = sweep_interval_sizes(
                "art", sizes, _FAST_CONFIG, jobs=1
            )
        cache = ProfileCache(tmp_path)
        with runtime_session(cache=cache):
            clear_cache()
            with metrics.scoped_registry() as cold_registry:
                cold = sweep_interval_sizes(
                    "art", sizes, _FAST_CONFIG, jobs=1
                )
            clear_cache()
            with metrics.scoped_registry() as warm_registry:
                warm = sweep_interval_sizes(
                    "art", sizes, _FAST_CONFIG, jobs=1
                )
        clear_cache()
        assert uncached == cold == warm
        cold_counters = cold_registry.snapshot()["counters"]
        warm_counters = warm_registry.snapshot()["counters"]
        assert "cache.sim.hits" not in cold_counters
        assert cold_counters["cache.sim.misses"] > 0
        assert "cache.sim.misses" not in warm_counters
        assert (
            warm_counters["cache.sim.hits"]
            == cold_counters["cache.sim.misses"]
        )

    def test_via_jobs_sweep_reuses_and_receipts_count_hits(self,
                                                           tmp_path):
        sizes = [30_000, 60_000]
        ensure_default_executors()
        cache = ProfileCache(tmp_path / "cache")
        queue = JobQueue(tmp_path / "q")
        with runtime_session(cache=cache):
            clear_cache()
            direct = sweep_interval_sizes(
                "art", sizes, _FAST_CONFIG, jobs=1
            )
            clear_cache()
            with metrics.scoped_registry() as local:
                via_jobs = sweep_interval_sizes(
                    "art", sizes, _FAST_CONFIG, jobs=2, via_jobs=queue
                )
        clear_cache()
        assert via_jobs == direct  # bit-identical tables, warm or not
        receipts = queue.receipts()
        assert receipts and all(receipt.ok for receipt in receipts)
        hits = sum(
            receipt.sim_cache.get("hits", 0) for receipt in receipts
        )
        misses = sum(
            receipt.sim_cache.get("misses", 0) for receipt in receipts
        )
        assert hits > 0 and misses == 0  # the direct pass primed it all
        counters = local.snapshot()["counters"]
        # record_job_metrics folds receipt tallies into the parent's
        # counters exactly once.
        assert counters["cache.sim.hits"] == hits


class TestObservabilitySurface:
    def _manifest(self, run_id, *, hits, misses, cache_stats=None):
        registry = Registry()
        if hits:
            registry.counter("cache.sim.hits").inc(hits)
        if misses:
            registry.counter("cache.sim.misses").inc(misses)
        return build_manifest(
            total_seconds=1.0,
            stages={"profile": 1.0},
            metrics_snapshot=registry.snapshot(),
            cache_stats=cache_stats,
            config_fingerprint="fp-sim",
            run_id=run_id,
        )

    def test_manifest_carries_kinds_and_sim_blocks(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.get_or_compute(SIMRESULT_KIND, ("key",), lambda: "value")
        cache.get_or_compute(SIMRESULT_KIND, ("key",), lambda: "unused")
        manifest = self._manifest(
            "run-sim", hits=1, misses=1, cache_stats=cache.stats
        )
        validate_manifest(manifest)
        kinds = manifest["cache"]["kinds"]
        assert kinds[SIMRESULT_KIND]["hits"] == 1
        assert kinds[SIMRESULT_KIND]["misses"] == 1
        sim = manifest["cache"]["sim"]
        assert sim == {
            "hits": 1, "misses": 1, "stale_evictions": 0,
            "reuse_ratio": 0.5,
        }

    def test_ledger_flattens_cache_sub_blocks(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.get_or_compute(SIMRESULT_KIND, ("key",), lambda: "value")
        manifest = self._manifest(
            "run-flat", hits=3, misses=1, cache_stats=cache.stats
        )
        entry = entry_from_manifest(manifest)
        assert entry.cache["sim.reuse_ratio"] == 0.75
        assert entry.cache[f"{SIMRESULT_KIND}.misses"] == 1
        assert entry.cache["hits"] == 0  # aggregate counters survive

    def test_min_sim_hit_rate_gate(self):
        old = entry_from_manifest(
            self._manifest("run-a", hits=4, misses=0)
        )
        warm = entry_from_manifest(
            self._manifest("run-b", hits=4, misses=0)
        )
        cold = entry_from_manifest(
            self._manifest("run-c", hits=0, misses=4)
        )
        # Off by default: a cold candidate is not drift.
        assert check_drift(diff_runs(old, cold)) == []
        limits = DriftThresholds(min_sim_hit_rate=0.5)
        assert check_drift(diff_runs(old, warm), limits) == []
        violations = check_drift(diff_runs(old, cold), limits)
        assert [v.kind for v in violations] == ["performance"]
        assert violations[0].delta.field == "sim.reuse_ratio"

    def test_inspect_renders_kinds_and_sim_lines(self, tmp_path):
        from repro.observability.inspect import render_manifest

        cache = ProfileCache(tmp_path)
        cache.get_or_compute(SIMRESULT_KIND, ("key",), lambda: "value")
        cache.get_or_compute(SIMRESULT_KIND, ("key",), lambda: "unused")
        manifest = self._manifest(
            "run-render", hits=1, misses=1, cache_stats=cache.stats
        )
        rendered = render_manifest(manifest)
        assert f"{SIMRESULT_KIND}: 1 hits / 1 misses" in rendered
        assert "sim-result reuse: 1 of 2 region lookups (50.0%)" \
            in rendered
