"""Tests for repro.cmpsim.config, cache, and hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cmpsim.cache import SetAssociativeCache
from repro.cmpsim.config import (
    CacheLevelConfig,
    MemoryConfig,
    TABLE1_CONFIG,
)
from repro.cmpsim.hierarchy import AccessResult, MemoryHierarchy
from repro.errors import SimulationError


class TestConfig:
    def test_table1_matches_paper(self):
        l1, l2, l3 = TABLE1_CONFIG.levels
        assert (l1.capacity, l1.associativity, l1.hit_latency) == (
            32 * 1024, 2, 3)
        assert (l2.capacity, l2.associativity, l2.hit_latency) == (
            512 * 1024, 8, 14)
        assert (l3.capacity, l3.associativity, l3.hit_latency) == (
            1024 * 1024, 16, 35)
        assert TABLE1_CONFIG.dram_latency == 250
        assert all(level.line_size == 64 for level in TABLE1_CONFIG.levels)
        assert all(level.writeback for level in TABLE1_CONFIG.levels)

    def test_n_sets(self):
        l1 = TABLE1_CONFIG.levels[0]
        assert l1.n_sets == 32 * 1024 // (2 * 64)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(SimulationError):
            CacheLevelConfig("bad", capacity=1000, associativity=3,
                             line_size=64)

    def test_rejects_zero_capacity(self):
        with pytest.raises(SimulationError):
            CacheLevelConfig("bad", capacity=0, associativity=1)

    def test_rejects_empty_hierarchy(self):
        with pytest.raises(SimulationError):
            MemoryConfig(levels=())

    def test_rejects_mixed_line_sizes(self):
        with pytest.raises(SimulationError):
            MemoryConfig(levels=(
                CacheLevelConfig("a", 1024, 1, 32),
                CacheLevelConfig("b", 1024, 1, 64),
            ))


def _tiny_cache(sets=4, assoc=2):
    return SetAssociativeCache(
        CacheLevelConfig("tiny", sets * assoc * 64, assoc, 64)
    )


class TestSetAssociativeCache:
    def test_first_access_misses(self):
        cache = _tiny_cache()
        hit, victim = cache.access(0, write=False)
        assert not hit and victim is None

    def test_second_access_hits(self):
        cache = _tiny_cache()
        cache.access(0, write=False)
        hit, _ = cache.access(0, write=False)
        assert hit

    def test_lru_eviction_order(self):
        cache = _tiny_cache(sets=1, assoc=2)
        cache.access(0, write=False)
        cache.access(1, write=False)
        cache.access(0, write=False)  # 0 becomes MRU
        cache.access(2, write=False)  # evicts 1 (LRU)
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_clean_eviction_reports_no_writeback(self):
        cache = _tiny_cache(sets=1, assoc=1)
        cache.access(0, write=False)
        _, victim = cache.access(1, write=False)
        assert victim is None

    def test_dirty_eviction_reports_writeback(self):
        cache = _tiny_cache(sets=1, assoc=1)
        cache.access(0, write=True)
        _, victim = cache.access(1, write=False)
        assert victim == 0
        assert cache.stats.writebacks_out == 1

    def test_write_hit_marks_dirty(self):
        cache = _tiny_cache(sets=1, assoc=1)
        cache.access(0, write=False)
        cache.access(0, write=True)
        _, victim = cache.access(1, write=False)
        assert victim == 0

    def test_fill_does_not_count_demand_access(self):
        cache = _tiny_cache()
        cache.fill(0, dirty=True)
        assert cache.stats.accesses == 0
        assert cache.contains(0)

    def test_fill_existing_line_keeps_dirty(self):
        cache = _tiny_cache(sets=1, assoc=1)
        cache.access(0, write=True)
        cache.fill(0, dirty=False)
        _, victim = cache.access(1, write=False)
        assert victim == 0  # still dirty

    def test_stats_counters(self):
        cache = _tiny_cache()
        cache.access(0, write=False)
        cache.access(0, write=False)
        cache.access(64, write=True)
        stats = cache.stats
        assert stats.read_misses == 1
        assert stats.read_hits == 1
        assert stats.write_misses == 1
        assert stats.accesses == 3
        assert stats.miss_rate == pytest.approx(2 / 3)

    def test_reset(self):
        cache = _tiny_cache()
        cache.access(0, write=True)
        cache.reset()
        assert cache.resident_lines() == 0
        assert cache.stats.accesses == 0

    @settings(deadline=None, max_examples=40)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
        min_size=1, max_size=300,
    ))
    def test_capacity_never_exceeded(self, accesses):
        cache = _tiny_cache(sets=4, assoc=2)
        for line, write in accesses:
            cache.access(line, write)
        assert cache.resident_lines() <= 8
        for index in range(4):
            lines_in_set = cache.set_lines(index)
            assert len(lines_in_set) <= 2
            for line in lines_in_set:
                assert line % 4 == index  # line in its own set

    @settings(deadline=None, max_examples=40)
    @given(st.lists(
        st.integers(min_value=0, max_value=31),
        min_size=1, max_size=200,
    ))
    def test_rereference_within_assoc_window_always_hits(self, lines):
        """A line re-accessed immediately must hit (LRU correctness)."""
        cache = _tiny_cache(sets=8, assoc=4)
        for line in lines:
            cache.access(line, write=False)
            hit, _ = cache.access(line, write=False)
            assert hit

    @settings(deadline=None, max_examples=30)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=127), st.booleans()),
        min_size=1, max_size=300,
    ))
    def test_hits_plus_misses_equals_accesses(self, accesses):
        cache = _tiny_cache(sets=8, assoc=2)
        for line, write in accesses:
            cache.access(line, write)
        stats = cache.stats
        assert stats.hits + stats.misses == len(accesses)


class TestHierarchy:
    def test_cold_access_goes_to_dram(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.access(0, write=False) == AccessResult.DRAM
        assert hierarchy.dram_reads == 1

    def test_warm_access_hits_l1(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0, write=False)
        assert hierarchy.access(0, write=False) == AccessResult.L1

    def test_l1_victim_still_in_l2(self):
        hierarchy = MemoryHierarchy()
        l1 = hierarchy.caches[0]
        n_sets = l1.config.n_sets
        # Fill one L1 set beyond its associativity.
        for way in range(l1.config.associativity + 1):
            hierarchy.access(way * n_sets, write=False)
        # Line 0 fell out of L1 but remains in the larger L2.
        assert hierarchy.access(0, write=False) == AccessResult.L2

    def test_dirty_l1_victim_written_back_to_l2(self):
        hierarchy = MemoryHierarchy()
        l1 = hierarchy.caches[0]
        n_sets = l1.config.n_sets
        hierarchy.access(0, write=True)
        for way in range(1, l1.config.associativity + 1):
            hierarchy.access(way * n_sets, write=False)
        assert l1.stats.writebacks_out == 1

    def test_reset_clears_everything(self):
        hierarchy = MemoryHierarchy()
        hierarchy.access(0, write=True)
        hierarchy.reset()
        assert hierarchy.dram_reads == 0
        assert hierarchy.access(0, write=False) == AccessResult.DRAM

    def test_streaming_beyond_l3_always_misses(self):
        hierarchy = MemoryHierarchy()
        total_lines = 4 * 1024 * 1024 // 64  # 4MB footprint
        for line in range(0, total_lines, 1):
            hierarchy.access(line, write=False)
        # Second sweep still misses everywhere: footprint exceeds L3.
        level = hierarchy.access(0, write=False)
        assert level == AccessResult.DRAM

    def test_small_working_set_settles_into_l1(self):
        hierarchy = MemoryHierarchy()
        lines = range(64)  # 4KB working set
        for _ in range(3):
            for line in lines:
                hierarchy.access(line, write=False)
        # Final sweep: all L1 hits.
        results = {hierarchy.access(line, write=False) for line in lines}
        assert results == {AccessResult.L1}
