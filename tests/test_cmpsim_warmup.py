"""Functional-warmup correctness: state without statistics.

``MemoryHierarchy.warm_access`` must perform exactly the state
transitions of a demand access — probes, fills, writebacks, next-line
prefetches — while leaving every statistic untouched. The seed
implementation simply called ``access()``, so warm fast-forward
traffic polluted the demand-access counters; these tests pin the fix.
"""

import pytest

from repro.cmpsim.config import PREFETCH_CONFIG, TABLE1_CONFIG
from repro.cmpsim.hierarchy import MemoryHierarchy
from repro.cmpsim.simulator import CMPSim, RegionSpec, VLITracker
from repro.core.mapping import interval_boundaries
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile

from tests.conftest import MICRO_INTERVAL


def hierarchy_cache_state(hierarchy):
    return [
        [cache.set_state(i) for i in range(cache.config.n_sets)]
        for cache in hierarchy.caches
    ]


def zero_stats(hierarchy):
    snapshot = hierarchy.snapshot()
    return (
        all(value == 0 for value in snapshot.level_accesses)
        and all(value == 0 for value in snapshot.level_hits)
        and all(value == 0 for value in snapshot.level_misses)
        and all(value == 0 for value in snapshot.level_writebacks)
        and snapshot.dram_reads == 0
        and snapshot.dram_writebacks == 0
        and snapshot.prefetches == 0
    )


WORKLOAD = [((line * 131) % 9973, line % 3 == 0) for line in range(5000)]


class TestWarmAccess:
    @pytest.mark.parametrize(
        "config", [TABLE1_CONFIG, PREFETCH_CONFIG], ids=["table1", "prefetch"]
    )
    def test_updates_state_without_statistics(self, config):
        """Warm and demand twins end in identical cache state, but the
        warm hierarchy's statistics stay exactly zero."""
        warm = MemoryHierarchy(config)
        demand = MemoryHierarchy(config)
        for line, write in WORKLOAD:
            warm.warm_access(line, write)
            demand.access(line, write)
        assert hierarchy_cache_state(warm) == hierarchy_cache_state(demand)
        assert zero_stats(warm)
        assert not zero_stats(demand)

    @pytest.mark.parametrize(
        "config", [TABLE1_CONFIG, PREFETCH_CONFIG], ids=["table1", "prefetch"]
    )
    def test_warm_then_demand_behaves_like_all_demand(self, config):
        """After a warm prefix, demand accesses see the same hits and
        victims as they would after a demand prefix."""
        warm = MemoryHierarchy(config)
        demand = MemoryHierarchy(config)
        for line, write in WORKLOAD[:2500]:
            warm.warm_access(line, write)
            demand.access(line, write)
        tail = [demand.access(line, write) for line, write in WORKLOAD[2500:]]
        warm_tail = [warm.access(line, write) for line, write in WORKLOAD[2500:]]
        assert warm_tail == tail
        # Only the tail was counted on the warm hierarchy.
        assert warm.snapshot().level_accesses[0] == len(tail)


@pytest.fixture(scope="module")
def micro_marker_set(micro_binary_list):
    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in micro_binary_list
    ]
    marker_set, _ = find_mappable_points(profiles)
    return marker_set


@pytest.fixture(scope="module")
def micro_marker_table(micro_marker_set, micro_binary_32u):
    return micro_marker_set.table_for(micro_binary_32u.name)


class TestWarmFastForwardRegression:
    """Region stats with a warm fast-forward prefix, versus without.

    With the seed's polluting ``warm_access`` the fast-forwarded
    prefix counted as demand traffic, so a head region and a tail
    region could not partition a full run's access counts. This is
    the regression oracle for the fix.
    """

    @pytest.fixture(scope="class")
    def boundary(self, micro_binary_32u, micro_marker_set):
        vlis = collect_vli_bbvs(
            micro_binary_32u, micro_marker_set, MICRO_INTERVAL
        )
        return vlis, vlis[len(vlis) // 2].start_coord

    def test_complementary_regions_partition_accesses(
        self, micro_binary_32u, micro_marker_table, boundary
    ):
        _, cut = boundary
        sim = CMPSim(micro_binary_32u)
        full = sim.run_full()
        head = sim.run_regions(
            [RegionSpec(label=0, start=None, end=cut)],
            micro_marker_table,
            warm=True,
        )
        tail = sim.run_regions(
            [RegionSpec(label=1, start=cut, end=None)],
            micro_marker_table,
            warm=True,
        )
        # Every reference is one L1 demand access, so the two disjoint
        # windows must partition the full run's count exactly. Before
        # the fix, warm fast-forward traffic counted too and each side
        # reported the whole program.
        assert (
            head.hierarchy.level_accesses[0]
            + tail.hierarchy.level_accesses[0]
            == full.hierarchy.level_accesses[0]
        )
        assert (
            head.region(0).instructions + tail.region(1).instructions
            == full.stats.instructions
        )

    def test_warm_tail_region_matches_full_run_attribution(
        self, micro_binary_32u, micro_marker_table, boundary
    ):
        """With functional warming the tail region's cycles equal the
        full run's cycles attributed past the cut."""
        vlis, cut = boundary
        index = len(vlis) // 2
        vli = VLITracker(micro_marker_table, interval_boundaries(vlis))
        CMPSim(micro_binary_32u).run_full(trackers=(vli,))
        tail = CMPSim(micro_binary_32u).run_regions(
            [RegionSpec(label=1, start=cut, end=None)],
            micro_marker_table,
            warm=True,
        )
        expected_cycles = sum(
            interval.cycles for interval in vli.intervals[index:]
        )
        expected_instructions = sum(
            interval.instructions for interval in vli.intervals[index:]
        )
        assert tail.region(1).instructions == expected_instructions
        assert tail.region(1).cycles == pytest.approx(
            expected_cycles, rel=1e-12
        )
