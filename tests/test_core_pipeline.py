"""Tests for repro.core.pipeline (end-to-end cross-binary SimPoint)."""

import pytest

from repro.core.pipeline import (
    CrossBinaryConfig,
    run_cross_binary_simpoint,
    run_per_binary_simpoint,
)
from repro.errors import MatchingError
from repro.simpoint.simpoint import SimPointConfig

from tests.conftest import MICRO_INTERVAL


@pytest.fixture(scope="module")
def cross_result(micro_binary_list):
    return run_cross_binary_simpoint(
        micro_binary_list,
        CrossBinaryConfig(
            interval_size=MICRO_INTERVAL,
            simpoint=SimPointConfig(max_k=6),
        ),
    )


class TestCrossBinaryPipeline:
    def test_primary_is_first_binary(self, cross_result, micro_binary_list):
        assert cross_result.primary_name == micro_binary_list[0].name

    def test_weights_for_every_binary(self, cross_result, micro_binary_list):
        for binary in micro_binary_list:
            weights = cross_result.weights_for(binary.name)
            assert sum(weights.values()) == pytest.approx(1.0)

    def test_weights_unknown_binary(self, cross_result):
        with pytest.raises(MatchingError):
            cross_result.weights_for("nope/32u")

    def test_labels_cover_all_intervals(self, cross_result):
        assert len(cross_result.simpoint.labels) == len(
            cross_result.intervals
        )

    def test_mapped_points_match_simpoint(self, cross_result):
        assert len(cross_result.mapped_points) == (
            cross_result.simpoint.n_points
        )

    def test_interval_instructions_shapes(self, cross_result,
                                          micro_binary_list):
        for binary in micro_binary_list:
            counts = cross_result.interval_instructions[binary.name]
            assert len(counts) == len(cross_result.intervals)

    def test_weights_close_but_not_identical_across_binaries(
        self, cross_result, micro_binary_list
    ):
        """Re-measured weights shift slightly with compilation (the
        paper: 'The weights have slightly changed for VLI, but this is
        to be expected due to differences in compilation')."""
        names = [binary.name for binary in micro_binary_list]
        base = cross_result.weights_for(names[0])
        other = cross_result.weights_for(names[1])
        for cluster, weight in base.items():
            assert other[cluster] == pytest.approx(weight, abs=0.1)

    def test_primary_weights_match_simpoint_weights(self, cross_result):
        """On the primary binary, re-measured weights equal the
        clustering weights (same execution, same intervals)."""
        primary_weights = cross_result.weights_for(cross_result.primary_name)
        for point in cross_result.simpoint.points:
            assert primary_weights[point.cluster] == pytest.approx(
                point.weight
            )

    def test_custom_primary_index(self, micro_binary_list):
        result = run_cross_binary_simpoint(
            micro_binary_list,
            CrossBinaryConfig(
                interval_size=MICRO_INTERVAL,
                simpoint=SimPointConfig(max_k=4),
                primary_index=1,
            ),
        )
        assert result.primary_name == micro_binary_list[1].name

    def test_rejects_bad_primary_index(self, micro_binary_list):
        with pytest.raises(MatchingError, match="primary_index"):
            run_cross_binary_simpoint(
                micro_binary_list,
                CrossBinaryConfig(primary_index=99),
            )

    def test_rejects_single_binary(self, micro_binary_list):
        with pytest.raises(MatchingError, match="at least two"):
            run_cross_binary_simpoint(micro_binary_list[:1])

    def test_rejects_mixed_programs(self, micro_binary_list):
        from tests.conftest import build_micro_program
        from repro.compilation.compiler import compile_program
        from repro.compilation.targets import TARGET_32U

        other_program = build_micro_program(name="other")
        other_binary, _ = compile_program(other_program, TARGET_32U)
        with pytest.raises(MatchingError, match="different programs"):
            run_cross_binary_simpoint([micro_binary_list[0], other_binary])


class TestGracefulDegradation:
    """The pipeline accepts partial fuzzy mappings below threshold 1.0
    and surfaces the matcher summary through the run manifest."""

    @pytest.fixture(scope="class")
    def fuzzy_result(self, micro_binary_list):
        return run_cross_binary_simpoint(
            micro_binary_list,
            CrossBinaryConfig(
                interval_size=MICRO_INTERVAL,
                simpoint=SimPointConfig(max_k=6),
                match_confidence=0.6,
            ),
        )

    def test_fuzzy_markers_flow_through_the_pipeline(
        self, fuzzy_result, cross_result
    ):
        assert fuzzy_result.match_report.confidence_threshold == 0.6
        assert fuzzy_result.marker_set.fuzzy_points()
        assert (
            fuzzy_result.marker_set.n_points
            > cross_result.marker_set.n_points
        )
        assert fuzzy_result.match_report.min_confidence < 1.0

    def test_weights_still_cover_every_binary(
        self, fuzzy_result, micro_binary_list
    ):
        for binary in micro_binary_list:
            weights = fuzzy_result.weights_for(binary.name)
            assert abs(sum(weights.values()) - 1.0) < 1e-9

    def test_default_threshold_result_is_unchanged(
        self, cross_result, micro_binary_list
    ):
        explicit = run_cross_binary_simpoint(
            micro_binary_list,
            CrossBinaryConfig(
                interval_size=MICRO_INTERVAL,
                simpoint=SimPointConfig(max_k=6),
                match_confidence=1.0,
            ),
        )
        assert explicit.marker_set.points == cross_result.marker_set.points
        assert explicit.simpoint.labels == cross_result.simpoint.labels
        assert explicit.weights == cross_result.weights

    def test_manifest_carries_the_matching_summary(
        self, micro_binary_list, tmp_path
    ):
        from repro.observability import observe

        with observe(trace_out=tmp_path / "trace.json") as session:
            run_cross_binary_simpoint(
                micro_binary_list,
                CrossBinaryConfig(
                    interval_size=MICRO_INTERVAL,
                    simpoint=SimPointConfig(max_k=6),
                    match_confidence=0.6,
                ),
            )
        row = session.manifest["matching"]["micro"]
        assert row["threshold"] == 0.6
        assert row["fuzzy_loops"] >= 1
        assert 0.0 < row["min_pair_coverage"] <= 1.0
        assert row["pairs"], "per-pair coverage is recorded"


class TestPerBinaryPipeline:
    def test_runs_on_each_binary(self, micro_binary_list):
        for binary in micro_binary_list[:2]:
            intervals, result = run_per_binary_simpoint(
                binary, interval_size=MICRO_INTERVAL,
                config=SimPointConfig(max_k=6),
            )
            assert len(intervals) >= result.n_points >= 1
            assert sum(p.weight for p in result.points) == pytest.approx(1.0)

    def test_different_binaries_may_cluster_differently(
        self, micro_binary_list
    ):
        """Per-binary clusterings are independent; at minimum the
        interval counts differ between O0 and O2 binaries."""
        _, result_u = run_per_binary_simpoint(
            micro_binary_list[0], MICRO_INTERVAL, SimPointConfig(max_k=6)
        )
        _, result_o = run_per_binary_simpoint(
            micro_binary_list[1], MICRO_INTERVAL, SimPointConfig(max_k=6)
        )
        assert len(result_u.labels) != len(result_o.labels)
