"""Tests for repro.compilation.optimizer."""

import pytest

from repro.errors import CompilationError
from repro.programs.behaviors import streaming
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    finalize_program,
    iter_statements,
)
from repro.compilation.optimizer import (
    INLINE_SIZE_LIMIT,
    OptimizationReport,
    optimize_ir,
)


def _program(procs):
    return finalize_program(
        Program(
            name="opt_test",
            procedures={proc.name: proc for proc in procs},
            entry="main",
        )
    )


def _leaf(name="leaf", inlinable=True, trips=8):
    return Procedure(
        name=name,
        body=(
            Loop(
                f"{name}_loop",
                trips=trips,
                body=(Compute(f"{name}_c", instructions=10,
                              behavior=streaming(4096, 2)),),
                unrollable=False,
                splittable=False,
            ),
        ),
        inlinable=inlinable,
    )


class TestInlining:
    def test_inlines_small_leaf(self):
        main = Procedure(
            name="main", body=(Call("c0", callee="leaf"),)
        )
        program = _program([main, _leaf()])
        optimized, report = optimize_ir(program)
        assert "leaf" in report.inlined_procedures
        assert "leaf" not in optimized.procedures

    def test_inlined_statements_get_call_site_location(self):
        main = Procedure(name="main", body=(Call("c0", callee="leaf"),))
        program = _program([main, _leaf()])
        call_line = program.procedures["main"].body[0].location.line
        optimized, _ = optimize_ir(program)
        for stmt in iter_statements(optimized.procedures["main"].body):
            assert stmt.location.line == call_line

    def test_inlined_statements_marked_with_origin(self):
        main = Procedure(name="main", body=(Call("c0", callee="leaf"),))
        optimized, _ = optimize_ir(_program([main, _leaf()]))
        loop = optimized.procedures["main"].body[0]
        assert isinstance(loop, Loop)
        assert loop.origin_procedure == "leaf"

    def test_non_inlinable_survives(self):
        main = Procedure(name="main", body=(Call("c0", callee="leaf"),))
        program = _program([main, _leaf(inlinable=False)])
        optimized, report = optimize_ir(program)
        assert "leaf" in optimized.procedures
        assert report.inlined_procedures == ()

    def test_large_procedure_not_inlined(self):
        body = tuple(
            Compute(f"c{i}", instructions=5)
            for i in range(INLINE_SIZE_LIMIT + 1)
        )
        big = Procedure(name="leaf", body=body, inlinable=True)
        main = Procedure(name="main", body=(Call("c0", callee="leaf"),))
        optimized, _ = optimize_ir(_program([main, big]))
        assert "leaf" in optimized.procedures

    def test_non_leaf_not_inlined(self):
        inner = _leaf("inner")
        middle = Procedure(
            name="middle",
            body=(Call("cm", callee="inner"),),
            inlinable=True,
        )
        main = Procedure(name="main", body=(Call("c0", callee="middle"),))
        optimized, report = optimize_ir(_program([main, middle, inner]))
        assert "middle" in optimized.procedures
        # inner IS a leaf and inlinable, so it inlines into middle.
        assert "inner" in report.inlined_procedures

    def test_multi_site_inlining_duplicates_code(self):
        main = Procedure(
            name="main",
            body=(
                Call("c0", callee="leaf"),
                Call("c1", callee="leaf"),
            ),
        )
        optimized, _ = optimize_ir(_program([main, _leaf()]))
        loops = [
            stmt for stmt in optimized.procedures["main"].body
            if isinstance(stmt, Loop)
        ]
        assert len(loops) == 2
        assert loops[0].name != loops[1].name

    def test_inline_pass_can_be_disabled(self):
        main = Procedure(name="main", body=(Call("c0", callee="leaf"),))
        optimized, report = optimize_ir(
            _program([main, _leaf()]), inline=False
        )
        assert "leaf" in optimized.procedures
        assert report.inlined_procedures == ()


class TestSplitting:
    def _splittable_main(self):
        return Procedure(
            name="main",
            body=(
                Loop(
                    "split_me",
                    trips=10,
                    body=(
                        Compute("a", instructions=5),
                        Compute("b", instructions=5),
                    ),
                    unrollable=False,
                    splittable=True,
                ),
            ),
        )

    def test_splits_into_two_loops_same_line(self):
        program = _program([self._splittable_main()])
        original_line = program.procedures["main"].body[0].location.line
        optimized, report = optimize_ir(program)
        loops = [
            stmt for stmt in optimized.procedures["main"].body
            if isinstance(stmt, Loop)
        ]
        assert len(loops) == 2
        assert "split_me" in report.split_loops
        assert all(loop.location.line == original_line for loop in loops)
        assert {loop.split_index for loop in loops} == {1, 2}

    def test_split_preserves_trip_counts(self):
        optimized, _ = optimize_ir(_program([self._splittable_main()]))
        loops = [
            stmt for stmt in optimized.procedures["main"].body
            if isinstance(stmt, Loop)
        ]
        assert all(loop.trips == 10 for loop in loops)

    def test_split_preserves_total_work(self):
        optimized, _ = optimize_ir(_program([self._splittable_main()]))
        computes = [
            stmt
            for stmt in iter_statements(optimized.procedures["main"].body)
            if isinstance(stmt, Compute)
        ]
        assert sum(c.instructions for c in computes) == 10

    def test_single_kernel_loop_not_split(self):
        main = Procedure(
            name="main",
            body=(
                Loop(
                    "solo",
                    trips=10,
                    body=(Compute("a", instructions=5),),
                    splittable=True,
                    unrollable=False,
                ),
            ),
        )
        optimized, report = optimize_ir(_program([main]))
        assert report.split_loops == ()

    def test_unsplittable_loop_preserved(self):
        main = Procedure(
            name="main",
            body=(
                Loop(
                    "nosplit",
                    trips=10,
                    body=(
                        Compute("a", instructions=5),
                        Compute("b", instructions=5),
                    ),
                    splittable=False,
                    unrollable=False,
                ),
            ),
        )
        _, report = optimize_ir(_program([main]))
        assert report.split_loops == ()


class TestUnrolling:
    def _unrollable_main(self, trips=12, input_scaled=False):
        return Procedure(
            name="main",
            body=(
                Loop(
                    "unroll_me",
                    trips=trips,
                    input_scaled=input_scaled,
                    body=(Compute("a", instructions=5,
                                  behavior=streaming(4096, 2)),),
                    unrollable=True,
                    splittable=False,
                ),
            ),
        )

    def test_unrolls_divisible_loop_by_four(self):
        optimized, report = optimize_ir(_program([self._unrollable_main(12)]))
        loop = optimized.procedures["main"].body[0]
        assert ("unroll_me", 4) in report.unrolled_loops
        assert loop.trips == 3
        assert loop.unroll_factor == 4

    def test_unroll_preserves_total_instructions(self):
        optimized, _ = optimize_ir(_program([self._unrollable_main(12)]))
        loop = optimized.procedures["main"].body[0]
        total = loop.trips * sum(c.instructions for c in loop.body)
        assert total == 12 * 5

    def test_unroll_scales_memory_refs(self):
        optimized, _ = optimize_ir(_program([self._unrollable_main(12)]))
        loop = optimized.procedures["main"].body[0]
        assert loop.body[0].behavior.refs_per_exec == 2 * 4

    def test_falls_back_to_factor_two(self):
        optimized, report = optimize_ir(_program([self._unrollable_main(6)]))
        assert ("unroll_me", 2) in report.unrolled_loops

    def test_indivisible_trips_not_unrolled(self):
        optimized, report = optimize_ir(_program([self._unrollable_main(7)]))
        assert report.unrolled_loops == ()

    def test_input_scaled_loop_not_unrolled(self):
        optimized, report = optimize_ir(
            _program([self._unrollable_main(12, input_scaled=True)])
        )
        assert report.unrolled_loops == ()

    def test_tiny_loop_not_unrolled_to_nothing(self):
        # trips=4 with factor 4 would leave 1 iteration; we require >= 2.
        optimized, report = optimize_ir(_program([self._unrollable_main(4)]))
        assert ("unroll_me", 2) in report.unrolled_loops


class TestCodeMotion:
    def test_reverses_adjacent_kernels(self):
        main = Procedure(
            name="main",
            body=(
                Compute("a", instructions=1),
                Compute("b", instructions=2),
                Compute("c", instructions=3),
            ),
        )
        optimized, report = optimize_ir(_program([main]))
        names = [stmt.name for stmt in optimized.procedures["main"].body]
        assert names == ["c", "b", "a"]
        assert report.moved_kernels == 3

    def test_single_kernel_not_moved(self):
        main = Procedure(name="main", body=(Compute("a", instructions=1),))
        _, report = optimize_ir(_program([main]))
        assert report.moved_kernels == 0


class TestGating:
    def test_requires_finalized_program(self):
        main = Procedure(name="main", body=(Compute("a", instructions=1),))
        raw = Program(name="p", procedures={"main": main}, entry="main")
        with pytest.raises(CompilationError, match="finalized"):
            optimize_ir(raw)

    def test_report_is_immutable(self):
        report = OptimizationReport()
        with pytest.raises(AttributeError):
            report.moved_kernels = 5
