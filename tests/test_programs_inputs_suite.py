"""Tests for repro.programs.inputs and repro.programs.suite."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProgramError
from repro.programs.inputs import ProgramInput, REF_INPUT, TEST_INPUT
from repro.programs.ir import (
    Compute,
    Loop,
    iter_program_statements,
    static_statistics,
)
from repro.programs.suite import (
    BENCHMARK_SPECS,
    benchmark_names,
    build_benchmark,
    build_suite,
    estimate_source_instructions,
)

#: The 21 benchmarks the paper's figures show, in figure order.
PAPER_BENCHMARKS = (
    "ammp", "applu", "apsi", "art", "bzip2", "crafty", "eon", "equake",
    "fma3d", "gcc", "gzip", "lucas", "mcf", "mesa", "perlbmk",
    "sixtrack", "swim", "twolf", "vortex", "vpr", "wupwise",
)


class TestProgramInput:
    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ProgramError):
            ProgramInput("bad", scale=0)

    def test_unscaled_trips_pass_through(self):
        assert REF_INPUT.resolve_trips(7, input_scaled=False) == 7

    def test_scaled_trips_multiply(self):
        half = ProgramInput("half", scale=0.5)
        assert half.resolve_trips(10, input_scaled=True) == 5

    def test_scaled_trips_never_below_one(self):
        tiny = ProgramInput("tiny", scale=0.01)
        assert tiny.resolve_trips(10, input_scaled=True) == 1

    def test_rejects_zero_base_trips(self):
        with pytest.raises(ProgramError):
            REF_INPUT.resolve_trips(0, input_scaled=False)

    def test_test_input_is_smaller_than_ref(self):
        assert TEST_INPUT.scale < REF_INPUT.scale

    @given(
        base=st.integers(min_value=1, max_value=10**6),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_resolution_is_positive(self, base, scale):
        result = ProgramInput("x", scale=scale).resolve_trips(base, True)
        assert result >= 1


class TestSuiteRoster:
    def test_all_paper_benchmarks_present(self):
        assert benchmark_names() == PAPER_BENCHMARKS

    def test_twenty_one_benchmarks(self):
        assert len(benchmark_names()) == 21

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ProgramError, match="unknown benchmark"):
            build_benchmark("nosuchthing")

    def test_build_suite_subset(self):
        suite = build_suite(("art", "mcf"))
        assert set(suite) == {"art", "mcf"}

    def test_applu_has_hazard_flag(self):
        assert BENCHMARK_SPECS["applu"].applu_hazard
        assert not BENCHMARK_SPECS["gcc"].applu_hazard


class TestBenchmarkStructure:
    @pytest.fixture(scope="class")
    def art(self):
        return build_benchmark("art")

    def test_deterministic_construction(self):
        a = build_benchmark("art")
        b = build_benchmark("art")
        assert a == b

    def test_programs_are_finalized(self, art):
        assert art.finalized
        for _, stmt in iter_program_statements(art):
            assert stmt.location is not None

    def test_entry_is_main(self, art):
        assert art.entry == "main"

    def test_has_stages_and_kernels(self, art):
        names = set(art.procedures)
        assert any(name.startswith("stage_") for name in names)
        assert any(name.startswith("kern_") for name in names)

    def test_size_near_target(self):
        for name in ("art", "gcc", "swim"):
            program = build_benchmark(name)
            target = BENCHMARK_SPECS[name].target_minstr * 1e6
            estimate = estimate_source_instructions(program)
            assert 0.5 * target <= estimate <= 1.6 * target, (
                f"{name}: {estimate} vs target {target}"
            )

    def test_smaller_input_shrinks_execution(self, art):
        ref = estimate_source_instructions(art, REF_INPUT)
        test = estimate_source_instructions(art, TEST_INPUT)
        assert test < ref

    def test_applu_pde_procedures(self):
        applu = build_benchmark("applu")
        pde = [name for name in applu.procedures if name.startswith("pde_")]
        assert len(pde) == 5
        for name in pde:
            assert applu.procedures[name].inlinable

    def test_applu_pde_loops_have_identical_trips(self):
        applu = build_benchmark("applu")
        trips = set()
        for name in (f"pde_{i}" for i in range(5)):
            loop = applu.procedures[name].body[0]
            assert isinstance(loop, Loop)
            trips.add(loop.trips)
        assert len(trips) == 1  # identical => ambiguous after inlining

    def test_gcc_has_more_stages_than_cluster_budget(self):
        # The paper limits SimPoint to 10 clusters; gcc's 14 stages force
        # multiple behaviours into shared phases.
        assert BENCHMARK_SPECS["gcc"].n_stages > 10

    def test_every_benchmark_builds_and_validates(self):
        for name in benchmark_names():
            program = build_benchmark(name)
            stats = static_statistics(program)
            assert stats.loops >= 3, name
            assert stats.procedures >= 5, name

    def test_some_benchmarks_have_inlinable_helpers(self):
        found = False
        for name in benchmark_names():
            program = build_benchmark(name)
            for proc in program.procedures.values():
                if proc.name.endswith("_helper") and proc.inlinable:
                    found = True
        assert found

    def test_computes_all_have_behaviors_with_positive_footprints(self):
        program = build_benchmark("vpr")
        for _, stmt in iter_program_statements(program):
            if isinstance(stmt, Compute) and stmt.behavior is not None:
                assert stmt.behavior.footprint > 0
