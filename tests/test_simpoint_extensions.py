"""Tests for SimPoint extensions: early points and binary-search k."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.profiling.intervals import Interval
from repro.simpoint.early import (
    pick_early_simulation_points,
    run_early_simpoint,
)
from repro.simpoint.kmeans import weighted_kmeans
from repro.simpoint.select import (
    choose_clustering,
    choose_clustering_binary_search,
)
from repro.simpoint.simpoint import SimPointConfig, run_simpoint


def _phase_intervals(n_per_phase=10, phases=3, drift=0.02, seed=9):
    """Phases whose members drift slightly, so distances are not tied:
    the centroid-nearest member sits mid-phase, the earliest does not.
    """
    rng = np.random.default_rng(seed)
    intervals = []
    index = 0
    for phase in range(phases):
        for position in range(n_per_phase):
            bbv = {}
            for block in range(4):
                key = phase * 10 + block
                # Linear drift across the phase's occurrences.
                bbv[key] = 1000.0 * (1 + block) * (
                    1 + drift * (position - n_per_phase / 2)
                    + rng.uniform(-0.001, 0.001)
                )
            intervals.append(
                Interval(index=index, instructions=10_000, bbv=bbv)
            )
            index += 1
    return intervals


class TestEarlySimulationPoints:
    def test_rejects_negative_tolerance(self):
        points = np.zeros((4, 2))
        result = weighted_kmeans(points, 1)
        with pytest.raises(ClusteringError):
            pick_early_simulation_points(
                points, np.ones(4), result, tolerance=-0.1
            )

    def test_earliness_never_worse_than_classic(self):
        early = run_early_simpoint(
            _phase_intervals(), SimPointConfig(max_k=6), tolerance=0.5
        )
        assert early.last_point_index <= early.classic_last_point_index
        assert early.earliness_gain >= 0

    def test_large_tolerance_picks_earliest_member(self):
        intervals = _phase_intervals()
        early = run_early_simpoint(
            intervals, SimPointConfig(max_k=6), tolerance=1e9
        )
        labels = early.result.labels
        for point in early.result.points:
            first_member = labels.index(point.cluster)
            assert point.interval_index == first_member

    def test_clustering_identical_to_classic(self):
        intervals = _phase_intervals()
        classic = run_simpoint(intervals, SimPointConfig(max_k=6))
        early = run_early_simpoint(
            intervals, SimPointConfig(max_k=6), tolerance=0.5
        )
        assert early.result.labels == classic.labels
        assert early.result.k == classic.k
        # Weights are a property of the clustering, not the choice.
        classic_weights = {p.cluster: p.weight for p in classic.points}
        early_weights = {p.cluster: p.weight
                         for p in early.result.points}
        assert early_weights == pytest.approx(classic_weights)

    def test_representative_is_member(self):
        intervals = _phase_intervals()
        early = run_early_simpoint(
            intervals, SimPointConfig(max_k=6), tolerance=0.3
        )
        for point in early.result.points:
            assert early.result.labels[point.interval_index] == point.cluster

    def test_tolerance_monotone_in_earliness(self):
        intervals = _phase_intervals()
        last = None
        for tolerance in (0.0, 0.5, 2.0, 1e6):
            early = run_early_simpoint(
                intervals, SimPointConfig(max_k=6), tolerance=tolerance
            )
            if last is not None:
                assert early.last_point_index <= last
            last = early.last_point_index


class TestBinarySearchK:
    def _data(self, phases=4, seed=3):
        rng = np.random.default_rng(seed)
        centers = rng.uniform(-10, 10, size=(phases, 6))
        points = np.vstack([
            center + rng.normal(scale=0.05, size=(15, 6))
            for center in centers
        ])
        weights = np.ones(points.shape[0])
        return points, weights

    def test_result_satisfies_threshold(self):
        points, weights = self._data()
        choice = choose_clustering_binary_search(
            points, weights, max_k=10, seed=0
        )
        assert 1 <= choice.k <= 10

    def test_matches_exhaustive_on_clean_phases(self):
        points, weights = self._data(phases=4)
        exhaustive = choose_clustering(points, weights, max_k=10, seed=0)
        binary = choose_clustering_binary_search(
            points, weights, max_k=10, seed=0
        )
        assert binary.k == exhaustive.k == 4

    def test_evaluates_fewer_clusterings(self):
        points, weights = self._data(phases=4)
        binary = choose_clustering_binary_search(
            points, weights, max_k=10, seed=0
        )
        exhaustive = choose_clustering(points, weights, max_k=10, seed=0)
        assert len(binary.bic_scores) < len(exhaustive.bic_scores)

    def test_facade_routes_k_search(self):
        intervals = _phase_intervals(phases=3)
        exhaustive = run_simpoint(
            intervals, SimPointConfig(max_k=8, k_search="exhaustive")
        )
        binary = run_simpoint(
            intervals, SimPointConfig(max_k=8, k_search="binary")
        )
        assert binary.k == exhaustive.k

    def test_config_rejects_unknown_search(self):
        with pytest.raises(ClusteringError):
            SimPointConfig(k_search="magic")

    def test_single_point_degenerate(self):
        points = np.zeros((1, 3))
        choice = choose_clustering_binary_search(
            points, np.ones(1), max_k=10
        )
        assert choice.k == 1

    def test_rejects_bad_threshold(self):
        points, weights = self._data()
        with pytest.raises(ClusteringError):
            choose_clustering_binary_search(
                points, weights, max_k=5, bic_threshold=1.5
            )
