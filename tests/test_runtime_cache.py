"""Tests for the runtime profile cache and content fingerprints."""

import dataclasses
import pickle
import time

import pytest

from repro.core.pipeline import (
    CrossBinaryConfig,
    run_cross_binary_simpoint,
)
from repro.core.weights import phase_weights
from repro.errors import ReproError
from repro.observability import metrics
from repro.profiling.bbv import collect_fli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile
from repro.programs.inputs import ProgramInput, REF_INPUT, TEST_INPUT
from repro.runtime import ProfileCache, fingerprint, runtime_session
from repro.runtime.cache import cache_from_root, merge_stats
from repro.runtime.config import active_cache, resolve_jobs
from repro.runtime.fingerprint import FingerprintError
from repro.simpoint.simpoint import SimPointConfig

from tests.conftest import MICRO_INTERVAL


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint(REF_INPUT) == fingerprint(REF_INPUT)
        assert fingerprint({"a": 1, "b": 2}) == fingerprint(
            {"b": 2, "a": 1}
        )

    def test_sensitive_to_values(self):
        assert fingerprint(REF_INPUT) != fingerprint(TEST_INPUT)
        assert fingerprint(1) != fingerprint(2)
        assert fingerprint(1.0) != fingerprint(1)
        assert fingerprint((1, 2)) != fingerprint((2, 1))

    def test_distinguishes_float_precision(self):
        assert fingerprint(0.1) != fingerprint(
            0.1 + 1e-17
        ) or 0.1 == 0.1 + 1e-17
        assert fingerprint(0.5) != fingerprint(0.25)

    def test_binary_fingerprint_tracks_content(self, micro_binary_32u,
                                               micro_binary_32o):
        assert fingerprint(micro_binary_32u) == fingerprint(
            micro_binary_32u
        )
        assert fingerprint(micro_binary_32u) != fingerprint(
            micro_binary_32o
        )

    def test_sets_are_order_independent(self):
        assert fingerprint(frozenset({"x", "y"})) == fingerprint(
            frozenset({"y", "x"})
        )

    def test_rejects_unknown_types(self):
        with pytest.raises(FingerprintError):
            fingerprint(object())
        assert isinstance(FingerprintError("x"), ReproError)


class TestProfileCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ProfileCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        first = cache.get_or_compute("kind", ("key",), compute)
        second = cache.get_or_compute("kind", ("key",), compute)
        assert first == second == {"value": 42}
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.bytes_written > 0
        assert cache.stats.bytes_read > 0
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_distinct_keys_distinct_entries(self, tmp_path):
        cache = ProfileCache(tmp_path)
        a = cache.get_or_compute("kind", (1,), lambda: "a")
        b = cache.get_or_compute("kind", (2,), lambda: "b")
        assert (a, b) == ("a", "b")
        assert cache.stats.misses == 2

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cache.get_or_compute("kind", ("key",), lambda: "good")
        entries = list(tmp_path.rglob("*.pkl"))
        assert len(entries) == 1
        entries[0].write_bytes(b"not a pickle")
        value = cache.get_or_compute("kind", ("key",), lambda: "recomputed")
        assert value == "recomputed"
        # And the rewritten entry is usable again.
        fresh = cache_from_root(tmp_path)
        assert fresh.get_or_compute(
            "kind", ("key",), lambda: "unused"
        ) == "recomputed"

    def test_stale_entry_naming_missing_module_is_evicted(self, tmp_path):
        """Regression: an entry pickled before a refactor can reference
        a module that no longer exists; loading it raises
        ModuleNotFoundError, not a pickle error, and used to crash
        every future lookup of that key."""
        cache = ProfileCache(tmp_path)
        cache.get_or_compute("kind", ("key",), lambda: "good")
        entry = next(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"cgone_module_xyz\nKlass\n.")
        with pytest.raises(ModuleNotFoundError):
            pickle.loads(entry.read_bytes())  # the crash shape
        with metrics.scoped_registry() as local:
            value = cache.get_or_compute(
                "kind", ("key",), lambda: "recomputed"
            )
        assert value == "recomputed"
        assert local.snapshot()["counters"]["cache.stale_evictions"] == 1
        # The stale bytes are gone; a fresh handle hits the rewrite.
        fresh = cache_from_root(tmp_path)
        assert fresh.get_or_compute(
            "kind", ("key",), lambda: "unused"
        ) == "recomputed"
        assert fresh.stats.hits == 1

    def test_stale_entry_naming_missing_attribute_is_evicted(
        self, tmp_path
    ):
        """Same refactor scenario when the module survives but the
        class moved out of it: unpickling raises AttributeError."""
        cache = ProfileCache(tmp_path)
        cache.get_or_compute("kind", ("key",), lambda: "good")
        entry = next(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"crepro.errors\nNoSuchClass12345\n.")
        with pytest.raises(AttributeError):
            pickle.loads(entry.read_bytes())
        with metrics.scoped_registry() as local:
            value = cache.get_or_compute(
                "kind", ("key",), lambda: "recomputed"
            )
        assert value == "recomputed"
        assert local.snapshot()["counters"]["cache.stale_evictions"] == 1

    def test_eviction_race_with_another_handle_is_benign(self, tmp_path):
        """Two handles can race to evict the same stale entry; the
        loser's unlink hits a missing file and must not raise."""
        cache = ProfileCache(tmp_path)
        cache.get_or_compute("kind", ("key",), lambda: "good")
        entry = next(tmp_path.rglob("*.pkl"))
        entry.unlink()  # the other handle got there first
        cache._evict_stale("kind", entry)  # must not raise

    def test_shared_root_across_handles(self, tmp_path):
        writer = ProfileCache(tmp_path)
        writer.get_or_compute("kind", ("key",), lambda: [1, 2, 3])
        reader = cache_from_root(tmp_path)
        assert reader.get_or_compute(
            "kind", ("key",), lambda: "unused"
        ) == [1, 2, 3]
        assert reader.stats.hits == 1

    def test_merge_stats(self, tmp_path):
        parent = ProfileCache(tmp_path)
        worker = ProfileCache(tmp_path)
        worker.get_or_compute("kind", ("key",), lambda: "x")
        merge_stats(parent, [worker.stats, None])
        assert parent.stats.misses == 1
        merge_stats(None, [worker.stats])  # no-op without a cache

    def test_cache_from_root_none(self):
        assert cache_from_root(None) is None

    def test_per_kind_counters(self, tmp_path):
        cache = ProfileCache(tmp_path)
        with metrics.scoped_registry() as local:
            cache.get_or_compute("alpha", ("a",), lambda: "a")
            cache.get_or_compute("alpha", ("a",), lambda: "a")
            cache.get_or_compute("beta", ("b",), lambda: "b")
        alpha = cache.stats.by_kind["alpha"]
        beta = cache.stats.by_kind["beta"]
        assert (alpha.hits, alpha.misses) == (1, 1)
        assert (beta.hits, beta.misses) == (0, 1)
        assert alpha.bytes_written > 0 and alpha.bytes_read > 0
        assert beta.bytes_read == 0
        # Kinds sum to the aggregate.
        assert alpha.hits + beta.hits == cache.stats.hits
        assert alpha.misses + beta.misses == cache.stats.misses
        counters = local.snapshot()["counters"]
        assert counters["cache.alpha.hits"] == 1
        assert counters["cache.alpha.misses"] == 1
        assert counters["cache.beta.misses"] == 1
        assert "cache.beta.hits" not in counters

    def test_merge_folds_per_kind_rows(self, tmp_path):
        parent = ProfileCache(tmp_path)
        parent.get_or_compute("alpha", ("a",), lambda: "a")
        worker = ProfileCache(tmp_path)
        worker.get_or_compute("alpha", ("a",), lambda: "unused")  # hit
        worker.get_or_compute("beta", ("b",), lambda: "b")
        merge_stats(parent, [worker.stats])
        alpha = parent.stats.by_kind["alpha"]
        assert (alpha.hits, alpha.misses) == (1, 1)
        assert parent.stats.by_kind["beta"].misses == 1

    def test_format_version_salts_every_key(self, tmp_path, monkeypatch):
        from repro.runtime import cache as cache_module

        cache = ProfileCache(tmp_path)
        cache.get_or_compute("kind", ("key",), lambda: "v-current")
        monkeypatch.setattr(
            cache_module,
            "CACHE_FORMAT_VERSION",
            cache_module.CACHE_FORMAT_VERSION + 1,
        )
        # Same key under a bumped format version: the old entry is
        # simply never addressed — a clean miss, no eviction.
        value = cache.get_or_compute("kind", ("key",), lambda: "v-next")
        assert value == "v-next"
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert cache.stats.stale_evictions == 0


class TestRuntimeConfig:
    def test_session_installs_and_restores(self, tmp_path, monkeypatch):
        for var in ("REPRO_JOBS", "REPRO_CACHE_DIR", "REPRO_NO_CACHE"):
            monkeypatch.delenv(var, raising=False)
        assert active_cache() is None
        cache = ProfileCache(tmp_path)
        with runtime_session(jobs=3, cache=cache):
            assert active_cache() is cache
            assert resolve_jobs() == 3
            assert resolve_jobs(1) == 1
        assert active_cache() is None
        assert resolve_jobs() == 1

    def test_env_variables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert resolve_jobs() == 2
        monkeypatch.setenv("REPRO_JOBS", "junk")
        with pytest.raises(ReproError):
            resolve_jobs()


class TestCachedProfiles:
    def test_callbranch_profile_roundtrip(self, micro_binary_32u,
                                          tmp_path):
        cache = ProfileCache(tmp_path)
        direct = collect_call_branch_profile(micro_binary_32u)
        cold = collect_call_branch_profile(
            micro_binary_32u, cache=cache
        )
        warm = collect_call_branch_profile(
            micro_binary_32u, cache=cache
        )
        assert direct == cold == warm
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_fli_profile_roundtrip(self, micro_binary_32u, tmp_path):
        cache = ProfileCache(tmp_path)
        direct = collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL)
        cold = collect_fli_bbvs(
            micro_binary_32u, MICRO_INTERVAL, cache=cache
        )
        warm = collect_fli_bbvs(
            micro_binary_32u, MICRO_INTERVAL, cache=cache
        )
        assert direct == cold == warm

    def test_global_cache_used_when_installed(self, micro_binary_32u,
                                              tmp_path):
        cache = ProfileCache(tmp_path)
        with runtime_session(cache=cache):
            collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL)
            collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_interval_size_changes_key(self, micro_binary_32u, tmp_path):
        cache = ProfileCache(tmp_path)
        collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL, cache=cache)
        collect_fli_bbvs(
            micro_binary_32u, MICRO_INTERVAL * 2, cache=cache
        )
        assert cache.stats.misses == 2 and cache.stats.hits == 0


class TestCrossPipelineCaching:
    def test_cached_run_bit_identical_and_faster(self, micro_binary_list,
                                                 tmp_path, monkeypatch):
        # Scale the input (and the interval size with it, so the
        # interval count stays put) until execution-engine work
        # dominates, and shrink the k sweep — clustering is never
        # cached, so it sets the warm-run floor. Pin the scalar
        # profiling path: trace replay makes cold runs nearly as fast
        # as warm ones, which is exactly what this timing contract is
        # *not* about (trace-path caching has its own tests in
        # tests/test_trace_replay_equivalence.py).
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        config = CrossBinaryConfig(
            interval_size=MICRO_INTERVAL * 40,
            program_input=ProgramInput(name="speedup", scale=40.0),
            simpoint=SimPointConfig(max_k=3, n_init=2),
        )
        baseline = run_cross_binary_simpoint(micro_binary_list, config)

        cache = ProfileCache(tmp_path)
        start = time.perf_counter()
        cold = run_cross_binary_simpoint(
            micro_binary_list, config, cache=cache
        )
        cold_elapsed = time.perf_counter() - start
        assert cache.stats.misses > 0 and cache.stats.hits == 0

        start = time.perf_counter()
        warm = run_cross_binary_simpoint(
            micro_binary_list, config, cache=cache
        )
        warm_elapsed = time.perf_counter() - start
        assert cache.stats.hits == cache.stats.misses

        assert baseline == cold == warm
        # Warm runs skip every execution-engine pass; only clustering
        # and unpickling remain (acceptance: >= 2x; typically far more).
        assert cold_elapsed > 2 * warm_elapsed, (
            f"warm cache run not faster: cold {cold_elapsed:.3f}s vs "
            f"warm {warm_elapsed:.3f}s"
        )

    def test_phase_weights_roundtrip_through_cache(self, tmp_path):
        cache = ProfileCache(tmp_path)
        counts = [1000, 2500, 1500, 5000]
        labels = [0, 1, 0, 2]
        weights = phase_weights(counts, labels)
        cached = cache.get_or_compute(
            "weights", (counts, labels), lambda: weights
        )
        reloaded = cache.get_or_compute(
            "weights", (counts, labels), lambda: None
        )
        assert cached == weights
        assert reloaded == weights
        # Bit-exact floats, not approximately equal.
        assert pickle.dumps(reloaded) == pickle.dumps(weights)
        assert sum(reloaded.values()) == pytest.approx(1.0)

    def test_input_scale_invalidates(self, micro_binary_list, tmp_path):
        cache = ProfileCache(tmp_path)
        config = CrossBinaryConfig(interval_size=MICRO_INTERVAL)
        run_cross_binary_simpoint(micro_binary_list, config, cache=cache)
        scaled = dataclasses.replace(
            config, program_input=ProgramInput(name="half", scale=0.5)
        )
        before = cache.stats.misses
        run_cross_binary_simpoint(micro_binary_list, scaled, cache=cache)
        assert cache.stats.misses > before
