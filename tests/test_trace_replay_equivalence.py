"""Bit-identity of compiled-trace replay against the scalar oracles.

The compiled execution trace (:mod:`repro.execution.trace`) replaces
one scalar engine walk per profiling consumer with a single recorded
walk replayed in bulk. These tests pin the contract that makes the
substitution safe: for every consumer — fixed-length BBVs, VLI
construction, interval instruction counts, and the call-and-branch
profile — the replay result equals the scalar result *exactly* (same
dicts, same key order, same float values), across the whole benchmark
suite, every standard target, and both study inputs, plus randomly
generated IR programs.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.compilation.compiler import compile_program, compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS, TARGET_32O, TARGET_32U
from repro.core.mapping import interval_boundaries
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.core.weights import measure_interval_instructions
from repro.errors import MappingError
from repro.execution.engine import run_binary
from repro.execution.trace import (
    EVENT_BLOCK,
    EVENT_PROC,
    EVENT_SPAN,
    clear_trace_memo,
    compile_trace,
    compiled_trace,
)
from repro.profiling.bbv import collect_fli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile
from repro.programs.inputs import REF_INPUT, TEST_INPUT
from repro.programs.suite import benchmark_names, build_benchmark
from repro.runtime.cache import ProfileCache
from repro.runtime.config import trace_replay_enabled

from tests.strategies import programs

INTERVAL = 50_000

_SETTINGS = settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_all_consumers_equal(ordered, program_input):
    """Scalar vs replay for all four consumers over one binary set."""
    profiles = []
    for binary in ordered:
        scalar = collect_call_branch_profile(
            binary, program_input, use_trace=False
        )
        replay = collect_call_branch_profile(
            binary, program_input, use_trace=True
        )
        assert scalar == replay
        # Dict iteration order is part of bit-identity.
        assert list(scalar.procedure_entries) == list(
            replay.procedure_entries
        )
        profiles.append((binary, scalar))

    for binary in ordered:
        scalar = collect_fli_bbvs(
            binary, INTERVAL, program_input, use_trace=False
        )
        replay = collect_fli_bbvs(
            binary, INTERVAL, program_input, use_trace=True
        )
        assert scalar == replay
        for s, r in zip(scalar, replay):
            assert list(s.bbv) == list(r.bbv)

    marker_set, _ = find_mappable_points(profiles)
    primary = ordered[0]
    scalar_vlis = collect_vli_bbvs(
        primary, marker_set, INTERVAL, program_input, use_trace=False
    )
    replay_vlis = collect_vli_bbvs(
        primary, marker_set, INTERVAL, program_input, use_trace=True
    )
    assert scalar_vlis == replay_vlis
    for s, r in zip(scalar_vlis, replay_vlis):
        assert list(s.bbv) == list(r.bbv)

    boundaries = interval_boundaries(scalar_vlis)
    for binary in ordered:
        scalar = measure_interval_instructions(
            binary, marker_set, boundaries, program_input, use_trace=False
        )
        replay = measure_interval_instructions(
            binary, marker_set, boundaries, program_input, use_trace=True
        )
        assert scalar == replay


class TestSuiteEquivalence:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_bit_identical_test_input(self, name):
        binaries = compile_standard_binaries(build_benchmark(name))
        ordered = [binaries[t] for t in STANDARD_TARGETS]
        _assert_all_consumers_equal(ordered, TEST_INPUT)

    @pytest.mark.parametrize("name", ("art", "gcc", "applu"))
    def test_bit_identical_ref_input(self, name):
        binaries = compile_standard_binaries(build_benchmark(name))
        ordered = [binaries[t] for t in STANDARD_TARGETS]
        _assert_all_consumers_equal(ordered, REF_INPUT)


class TestTraceStructure:
    def test_trace_totals_match_engine(self, micro_binary_32u):
        trace = compile_trace(micro_binary_32u, REF_INPUT)
        totals = run_binary(micro_binary_32u, REF_INPUT)
        assert trace.total_instructions == totals.instructions
        assert trace.event_end[-1] == totals.instructions
        assert trace.binary_name == micro_binary_32u.name
        assert trace.input_name == REF_INPUT.name
        assert set(trace.kinds) <= {EVENT_BLOCK, EVENT_SPAN, EVENT_PROC}

    def test_attribution_covers_every_instruction(self, micro_binary_32o):
        trace = compile_trace(micro_binary_32o, TEST_INPUT)
        assert int(trace.attr_instr.sum()) == trace.total_instructions
        assert trace.attr_end[-1] == trace.total_instructions
        # Runs are contiguous: each run ends where the next begins.
        starts = trace.attr_end - trace.attr_instr
        assert (starts[1:] == trace.attr_end[:-1]).all()

    def test_mid_block_interval_split(self, micro_binary_32u):
        # An interval size that cannot align with block boundaries
        # forces mid-block splits; totals must still be exact.
        scalar = collect_fli_bbvs(micro_binary_32u, 997, use_trace=False)
        replay = collect_fli_bbvs(micro_binary_32u, 997, use_trace=True)
        assert scalar == replay
        assert all(i.instructions == 997 for i in replay[:-1])

    def test_unreachable_boundary_raises_identically(
        self, micro_binary_list
    ):
        profiles = [
            (b, collect_call_branch_profile(b)) for b in micro_binary_list
        ]
        marker_set, _ = find_mappable_points(profiles)
        binary = micro_binary_list[0]
        bogus = [(next(iter(
            marker_set.table_for(binary.name).block_to_marker().values()
        )), 10**9)]
        errors = []
        for use_trace in (False, True):
            with pytest.raises(MappingError) as excinfo:
                measure_interval_instructions(
                    binary, marker_set, bogus, use_trace=use_trace
                )
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]


class TestTraceCaching:
    def test_memo_returns_same_object(self, micro_binary_32u):
        clear_trace_memo()
        first = compiled_trace(micro_binary_32u, REF_INPUT)
        second = compiled_trace(micro_binary_32u, REF_INPUT)
        assert second is first
        clear_trace_memo()
        third = compiled_trace(micro_binary_32u, REF_INPUT)
        assert third is not first
        assert third.total_instructions == first.total_instructions

    def test_disk_cache_roundtrip(self, micro_binary_32u, tmp_path):
        cache = ProfileCache(tmp_path)
        clear_trace_memo()
        cold = compiled_trace(micro_binary_32u, REF_INPUT, cache=cache)
        assert cache.stats.misses == 1
        clear_trace_memo()
        warm = compiled_trace(micro_binary_32u, REF_INPUT, cache=cache)
        assert cache.stats.hits == 1
        assert warm is not cold
        assert (warm.kinds == cold.kinds).all()
        assert (warm.attr_end == cold.attr_end).all()
        assert warm.proc_names == cold.proc_names

    def test_profile_cache_key_is_path_independent(
        self, micro_binary_32u, tmp_path
    ):
        # A profile cached by the scalar path must be served to the
        # replay path (and vice versa): both produce identical values,
        # so the key deliberately excludes the computation path.
        cache = ProfileCache(tmp_path)
        scalar = collect_fli_bbvs(
            micro_binary_32u, INTERVAL, cache=cache, use_trace=False
        )
        replay = collect_fli_bbvs(
            micro_binary_32u, INTERVAL, cache=cache, use_trace=True
        )
        assert scalar == replay
        assert cache.stats.hits == 1

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_TRACE", raising=False)
        assert trace_replay_enabled(None) is True
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        assert trace_replay_enabled(None) is False
        # An explicit argument always wins over the environment.
        assert trace_replay_enabled(True) is True
        monkeypatch.delenv("REPRO_NO_TRACE")
        assert trace_replay_enabled(False) is False


class TestRandomPrograms:
    @_SETTINGS
    @given(program=programs())
    def test_replay_matches_scalar_on_random_programs(self, program):
        binaries = [
            compile_program(program, target)[0]
            for target in (TARGET_32U, TARGET_32O)
        ]
        profiles = []
        for binary in binaries:
            scalar = collect_call_branch_profile(binary, use_trace=False)
            replay = collect_call_branch_profile(binary, use_trace=True)
            assert scalar == replay
            profiles.append((binary, scalar))
        for binary in binaries:
            for size in (777, 25_000):
                assert collect_fli_bbvs(
                    binary, size, use_trace=False
                ) == collect_fli_bbvs(binary, size, use_trace=True)
        marker_set, _ = find_mappable_points(profiles)
        primary = binaries[0]
        scalar_vlis = collect_vli_bbvs(
            primary, marker_set, 25_000, use_trace=False
        )
        replay_vlis = collect_vli_bbvs(
            primary, marker_set, 25_000, use_trace=True
        )
        assert scalar_vlis == replay_vlis
        boundaries = interval_boundaries(scalar_vlis)
        for binary in binaries:
            assert measure_interval_instructions(
                binary, marker_set, boundaries, use_trace=False
            ) == measure_interval_instructions(
                binary, marker_set, boundaries, use_trace=True
            )
