"""Tests for repro.profiling: intervals, FLI BBVs, call/branch profile."""

import pytest

from repro.compilation.binary import BlockKind
from repro.errors import ProfilingError
from repro.execution.engine import run_binary
from repro.profiling.bbv import FixedLengthBBVCollector, collect_fli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile
from repro.profiling.intervals import Interval

from tests.conftest import MICRO_INTERVAL


class TestInterval:
    def test_rejects_nonpositive_instructions(self):
        with pytest.raises(ProfilingError):
            Interval(index=0, instructions=0)

    def test_bbv_total(self):
        interval = Interval(index=0, instructions=10,
                            bbv={1: 6.0, 2: 4.0})
        assert interval.bbv_total() == 10.0


class TestFLICollection:
    @pytest.fixture(scope="class")
    def intervals(self, micro_binary_32u):
        return collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL)

    def test_rejects_bad_interval_size(self, micro_binary_32u):
        with pytest.raises(ProfilingError):
            FixedLengthBBVCollector(micro_binary_32u, 0)

    def test_all_but_last_exactly_sized(self, intervals):
        for interval in intervals[:-1]:
            assert interval.instructions == MICRO_INTERVAL
        assert 0 < intervals[-1].instructions <= MICRO_INTERVAL

    def test_total_matches_run(self, micro_binary_32u, intervals):
        totals = run_binary(micro_binary_32u)
        assert sum(i.instructions for i in intervals) == totals.instructions

    def test_bbv_mass_matches_instructions(self, intervals):
        for interval in intervals:
            assert interval.bbv_total() == pytest.approx(
                interval.instructions
            )

    def test_indices_sequential(self, intervals):
        assert [i.index for i in intervals] == list(range(len(intervals)))

    def test_fli_intervals_have_no_coords(self, intervals):
        for interval in intervals:
            assert interval.start_coord is None
            assert interval.end_coord is None

    def test_bbv_keys_are_real_blocks(self, micro_binary_32u, intervals):
        for interval in intervals:
            for block_id in interval.bbv:
                assert block_id in micro_binary_32u.blocks

    def test_deterministic(self, micro_binary_32u):
        a = collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL)
        b = collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL)
        assert [i.bbv for i in a] == [i.bbv for i in b]

    def test_interval_count_scales_with_size(self, micro_binary_32u):
        small = collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL)
        big = collect_fli_bbvs(micro_binary_32u, MICRO_INTERVAL * 4)
        assert len(big) < len(small)
        assert len(big) >= len(small) // 5


class TestCallBranchProfile:
    @pytest.fixture(scope="class")
    def profile(self, micro_binary_32u):
        return collect_call_branch_profile(micro_binary_32u)

    def test_main_entered_once(self, profile):
        assert profile.procedure_entries["main"] == 1

    def test_expected_procedure_counts(self, profile):
        # main_loop trips 3: stage_0 calls kern_a twice + kern_b once
        # per outer trip (8), stage_1 calls kern_b + helper per trip (6),
        # stage_2 calls kern_a per trip (7).
        assert profile.procedure_entries["stage_0"] == 3
        assert profile.procedure_entries["kern_a"] == 3 * (8 * 2 + 7)
        assert profile.procedure_entries["kern_b"] == 3 * (8 + 6)
        assert profile.procedure_entries["helper"] == 3 * 6

    def test_loop_entries_vs_iterations(self, profile):
        loops = {p.source_name: p for p in profile.executed_loops()}
        main_loop = loops["main_loop"]
        assert main_loop.entries == 1
        assert main_loop.iterations == 3
        helper_loop = loops["helper_loop"]
        assert helper_loop.entries == 18
        assert helper_loop.iterations == 18 * 37

    def test_total_instructions_matches_run(self, micro_binary_32u, profile):
        totals = run_binary(micro_binary_32u)
        assert profile.total_instructions == totals.instructions

    def test_loop_locations_present(self, profile):
        for loop in profile.executed_loops():
            assert loop.location is not None

    def test_executed_procedures_sorted(self, profile):
        names = profile.executed_procedures()
        assert list(names) == sorted(names)

    def test_counts_equal_across_isas(self, micro_binary_32u,
                                      micro_binary_64u):
        p32 = collect_call_branch_profile(micro_binary_32u)
        p64 = collect_call_branch_profile(micro_binary_64u)
        assert dict(p32.procedure_entries) == dict(p64.procedure_entries)

    def test_inlined_helper_absent_from_o2_symbols(self, micro_binary_32o):
        profile = collect_call_branch_profile(micro_binary_32o)
        assert "helper" not in profile.procedure_entries

    def test_unrolled_loop_iterations_differ_across_opt(
        self, micro_binary_32u, micro_binary_32o
    ):
        # kern_a_loop is unrollable with 12 trips: the optimizer unrolls
        # by 4, so the branch executes 12/4 times per entry at O2.
        p_u = collect_call_branch_profile(micro_binary_32u)
        p_o = collect_call_branch_profile(micro_binary_32o)

        def iters(profile, name):
            for loop in profile.executed_loops():
                if loop.source_name.endswith(name):
                    return loop.iterations
            raise AssertionError(f"loop {name} not found")

        assert iters(p_u, "kern_a_loop") == 4 * iters(p_o, "kern_a_loop")

    def test_split_loop_entries_preserved(self, micro_binary_32o):
        # kern_b_loop splits into __a/__b halves; each keeps the entries.
        profile = collect_call_branch_profile(micro_binary_32o)
        halves = [
            loop for loop in profile.executed_loops()
            if "kern_b_loop_" in loop.source_name
        ]
        assert len(halves) == 2
        assert halves[0].entries == halves[1].entries > 0
