"""Tests for repro.programs.behaviors."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProgramError
from repro.programs.behaviors import (
    AccessKind,
    MemoryBehavior,
    blocked,
    pointer_chasing,
    random_access,
    stack_local,
    streaming,
)


class TestMemoryBehaviorValidation:
    def test_rejects_zero_footprint(self):
        with pytest.raises(ProgramError):
            MemoryBehavior(AccessKind.STREAM, footprint=0, refs_per_exec=1)

    def test_rejects_negative_footprint(self):
        with pytest.raises(ProgramError):
            MemoryBehavior(AccessKind.STREAM, footprint=-4, refs_per_exec=1)

    def test_rejects_negative_refs(self):
        with pytest.raises(ProgramError):
            MemoryBehavior(AccessKind.STREAM, footprint=64, refs_per_exec=-1)

    def test_zero_refs_allowed(self):
        behavior = MemoryBehavior(AccessKind.STREAM, 64, refs_per_exec=0)
        assert behavior.refs_per_exec == 0

    def test_rejects_zero_stride(self):
        with pytest.raises(ProgramError):
            MemoryBehavior(AccessKind.STREAM, 64, 1, stride=0)

    def test_rejects_pointer_fraction_above_one(self):
        with pytest.raises(ProgramError):
            MemoryBehavior(AccessKind.STREAM, 64, 1, pointer_fraction=1.5)

    def test_rejects_negative_pointer_fraction(self):
        with pytest.raises(ProgramError):
            MemoryBehavior(AccessKind.STREAM, 64, 1, pointer_fraction=-0.1)

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ProgramError):
            MemoryBehavior(AccessKind.STREAM, 64, 1, read_fraction=2.0)


class TestScaledFootprint:
    def test_32bit_is_baseline(self):
        behavior = MemoryBehavior(AccessKind.RANDOM, 1000, 1,
                                  pointer_fraction=0.5)
        assert behavior.scaled_footprint(4) == 1000

    def test_64bit_scales_pointer_fraction(self):
        behavior = MemoryBehavior(AccessKind.RANDOM, 1000, 1,
                                  pointer_fraction=0.5)
        # Half the footprint is pointers; pointers double: 1000 * 1.5.
        assert behavior.scaled_footprint(8) == 1500

    def test_no_pointers_means_no_scaling(self):
        behavior = MemoryBehavior(AccessKind.STREAM, 1000, 1,
                                  pointer_fraction=0.0)
        assert behavior.scaled_footprint(8) == 1000

    def test_full_pointer_footprint_doubles(self):
        behavior = MemoryBehavior(AccessKind.POINTER_CHASE, 1000, 1,
                                  pointer_fraction=1.0)
        assert behavior.scaled_footprint(8) == 2000

    def test_rejects_nonpositive_pointer_bytes(self):
        behavior = streaming(1024)
        with pytest.raises(ProgramError):
            behavior.scaled_footprint(0)

    @given(
        footprint=st.integers(min_value=1, max_value=1 << 26),
        pointer_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_scaled_footprint_monotone_in_pointer_width(
        self, footprint, pointer_fraction
    ):
        behavior = MemoryBehavior(
            AccessKind.RANDOM, footprint, 1,
            pointer_fraction=pointer_fraction,
        )
        assert (
            behavior.scaled_footprint(8) >= behavior.scaled_footprint(4) >= 1
        )


class TestFactories:
    def test_streaming_kind(self):
        assert streaming(4096).kind is AccessKind.STREAM

    def test_blocked_kind(self):
        assert blocked(4096).kind is AccessKind.BLOCKED

    def test_random_kind_and_pointers(self):
        behavior = random_access(4096, pointer_fraction=0.3)
        assert behavior.kind is AccessKind.RANDOM
        assert behavior.pointer_fraction == 0.3

    def test_pointer_chasing_is_pointer_heavy(self):
        assert pointer_chasing(4096).pointer_fraction > 0.5

    def test_stack_local_is_small(self):
        behavior = stack_local()
        assert behavior.kind is AccessKind.STACK
        assert behavior.footprint <= 8192

    def test_factories_are_frozen(self):
        behavior = streaming(4096)
        with pytest.raises(AttributeError):
            behavior.footprint = 1
