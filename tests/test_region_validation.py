"""Validation tests for region-simulation inputs and helpers."""

import pytest

from repro.cmpsim.simulator import (
    CMPSim,
    RegionSpec,
    regions_from_mapped_points,
)
from repro.core.mapping import MappedSimulationPoint
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.errors import SimulationError
from repro.profiling.callbranch import collect_call_branch_profile

from tests.conftest import MICRO_INTERVAL


@pytest.fixture(scope="module")
def setup(micro_binary_list):
    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in micro_binary_list
    ]
    marker_set, _ = find_mappable_points(profiles)
    intervals = collect_vli_bbvs(
        micro_binary_list[0], marker_set, MICRO_INTERVAL
    )
    return micro_binary_list[0], marker_set, intervals


class TestRegionSpecValidation:
    def test_non_first_region_cannot_start_at_program_start(self, setup):
        binary, marker_set, intervals = setup
        table = marker_set.table_for(binary.name)
        regions = [
            RegionSpec(label=0, start=intervals[1].start_coord,
                       end=intervals[1].end_coord),
            RegionSpec(label=1, start=None,
                       end=intervals[3].end_coord),
        ]
        with pytest.raises(SimulationError, match="first region"):
            CMPSim(binary).run_regions(regions, table)

    def test_non_last_region_cannot_run_to_exit(self, setup):
        binary, marker_set, intervals = setup
        table = marker_set.table_for(binary.name)
        regions = [
            RegionSpec(label=0, start=intervals[1].start_coord,
                       end=None),
            RegionSpec(label=1, start=intervals[3].start_coord,
                       end=intervals[3].end_coord),
        ]
        with pytest.raises(SimulationError, match="last region"):
            CMPSim(binary).run_regions(regions, table)

    def test_whole_program_as_one_region_matches_full_run(self, setup):
        binary, marker_set, _ = setup
        table = marker_set.table_for(binary.name)
        region = RegionSpec(label=7, start=None, end=None)
        result = CMPSim(binary).run_regions([region], table)
        full = CMPSim(binary).run_full().stats
        stats = result.region(7)
        assert stats.instructions == full.instructions
        assert stats.cycles == pytest.approx(full.cycles)
        assert result.fast_forward_instructions == 0


class TestRegionsFromMappedPoints:
    def test_orders_by_interval_index(self):
        points = [
            MappedSimulationPoint(cluster=0, interval_index=9,
                                  start=(1, 5), end=(1, 9),
                                  primary_weight=0.5),
            MappedSimulationPoint(cluster=1, interval_index=2,
                                  start=(1, 1), end=(1, 2),
                                  primary_weight=0.5),
        ]
        regions = regions_from_mapped_points(points)
        assert [region.label for region in regions] == [1, 0]
        assert regions[0].start == (1, 1)

    def test_labels_are_cluster_ids(self):
        points = [
            MappedSimulationPoint(cluster=4, interval_index=0,
                                  start=None, end=(1, 1),
                                  primary_weight=1.0),
        ]
        regions = regions_from_mapped_points(points)
        assert regions[0].label == 4
