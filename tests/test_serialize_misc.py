"""Remaining serialization and suite-estimator tests."""

import pytest

from repro.experiments.serialize import load_json, save_json
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.programs.suite import (
    build_benchmark,
    estimate_source_instructions,
)


class TestSaveJson:
    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "nested" / "deeper" / "out.json"
        path = save_json({"a": 1}, target)
        assert path.exists()
        assert load_json(path) == {"a": 1}

    def test_output_is_stable(self, tmp_path):
        """sort_keys makes byte-identical output for equal data."""
        a = save_json({"b": 2, "a": 1}, tmp_path / "a.json")
        b = save_json({"a": 1, "b": 2}, tmp_path / "b.json")
        assert a.read_text() == b.read_text()


class TestSourceEstimator:
    def test_estimator_scales_with_input(self):
        program = build_benchmark("art")
        full = estimate_source_instructions(program, REF_INPUT)
        half = estimate_source_instructions(
            program, ProgramInput("half", 0.5)
        )
        assert half < full
        # main_loop dominates, so halving its trips roughly halves work.
        assert half >= 0.3 * full

    def test_estimator_close_to_executed_source_work(self):
        """The static estimator approximates the dynamic 32o run within
        the compiler's O2 shrink factor band."""
        from repro.compilation.compiler import compile_standard_binaries
        from repro.compilation.targets import TARGET_32O
        from repro.execution.engine import run_binary

        program = build_benchmark("art")
        estimate = estimate_source_instructions(program)
        binary = compile_standard_binaries(program, (TARGET_32O,))[
            TARGET_32O
        ]
        executed = run_binary(binary).instructions
        # O2 multiplies source work by ~0.75-1.0 (kernel o2_mult) plus
        # overhead blocks; the estimate must land in that band.
        assert 0.6 * estimate <= executed <= 1.3 * estimate
