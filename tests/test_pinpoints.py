"""Tests for repro.pinpoints: file formats and the tool chain."""

import pytest

from repro.core.mapping import MappedSimulationPoint
from repro.core.pipeline import CrossBinaryConfig
from repro.errors import FileFormatError
from repro.pinpoints.files import (
    read_regions,
    read_simpoints,
    read_weights,
    write_regions,
    write_simpoints,
    write_weights,
)
from repro.pinpoints.toolchain import (
    generate_cross_binary_pinpoints,
    generate_pinpoints,
)
from repro.simpoint.simpoint import SimPointConfig

from tests.conftest import MICRO_INTERVAL


@pytest.fixture(scope="module")
def package(micro_binary_32u, tmp_path_factory):
    out = tmp_path_factory.mktemp("pinpoints")
    return generate_pinpoints(
        micro_binary_32u,
        interval_size=MICRO_INTERVAL,
        config=SimPointConfig(max_k=6),
        output_dir=out,
    )


class TestSimpointsFiles:
    def test_files_written(self, package):
        assert package.simpoints_path.exists()
        assert package.weights_path.exists()

    def test_simpoints_roundtrip(self, package):
        pairs = read_simpoints(package.simpoints_path)
        expected = [
            (p.interval_index, p.cluster) for p in package.simpoint.points
        ]
        assert pairs == expected

    def test_weights_roundtrip(self, package):
        pairs = read_weights(package.weights_path)
        for (weight, cluster), point in zip(pairs, package.simpoint.points):
            assert cluster == point.cluster
            assert weight == pytest.approx(point.weight, abs=1e-9)

    def test_weights_sum_to_one(self, package):
        pairs = read_weights(package.weights_path)
        assert sum(w for w, _ in pairs) == pytest.approx(1.0)

    def test_malformed_simpoints_rejected(self, tmp_path):
        path = tmp_path / "bad.simpoints"
        path.write_text("1 2 3\n")
        with pytest.raises(FileFormatError):
            read_simpoints(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.simpoints"
        path.write_text("one 2\n")
        with pytest.raises(FileFormatError):
            read_simpoints(path)

    def test_weight_range_enforced(self, tmp_path):
        path = tmp_path / "bad.weights"
        path.write_text("1.5 0\n")
        with pytest.raises(FileFormatError):
            read_weights(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "ok.simpoints"
        path.write_text("# comment\n\n3 1\n")
        assert read_simpoints(path) == [(3, 1)]


class TestRegionsFile:
    def _points(self):
        return [
            MappedSimulationPoint(cluster=0, interval_index=0,
                                  start=None, end=(5, 17),
                                  primary_weight=0.25),
            MappedSimulationPoint(cluster=1, interval_index=7,
                                  start=(5, 17), end=(2, 90),
                                  primary_weight=0.5),
            MappedSimulationPoint(cluster=2, interval_index=12,
                                  start=(2, 90), end=None,
                                  primary_weight=0.25),
        ]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "prog.regions"
        points = self._points()
        write_regions(path, points)
        assert read_regions(path) == points

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.regions"
        path.write_text("region 0 0 - - 1 2 0.5\n")
        with pytest.raises(FileFormatError, match="header"):
            read_regions(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.regions"
        path.write_text(
            "# repro cross-binary regions v1\nregion 0 0 - -\n"
        )
        with pytest.raises(FileFormatError):
            read_regions(path)

    def test_bad_coordinate_rejected(self, tmp_path):
        path = tmp_path / "bad.regions"
        path.write_text(
            "# repro cross-binary regions v1\n"
            "region 0 0 x y 1 2 0.5\n"
        )
        with pytest.raises(FileFormatError, match="coordinate"):
            read_regions(path)


class TestCrossBinaryToolchain:
    def test_generates_regions_file(self, micro_binary_list, tmp_path):
        result, regions_path = generate_cross_binary_pinpoints(
            micro_binary_list,
            CrossBinaryConfig(
                interval_size=MICRO_INTERVAL,
                simpoint=SimPointConfig(max_k=6),
            ),
            output_dir=tmp_path,
        )
        assert regions_path is not None and regions_path.exists()
        loaded = read_regions(regions_path)
        assert loaded == list(result.mapped_points)

    def test_no_output_dir_means_no_files(self, micro_binary_list):
        result, regions_path = generate_cross_binary_pinpoints(
            micro_binary_list,
            CrossBinaryConfig(
                interval_size=MICRO_INTERVAL,
                simpoint=SimPointConfig(max_k=6),
            ),
        )
        assert regions_path is None
        assert result.mapped_points
