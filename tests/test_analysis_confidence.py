"""Tests for repro.analysis.confidence and experiments.serialize."""

import math

import pytest

from repro.analysis.confidence import (
    ConfidenceReport,
    estimate_confidence,
    phase_statistics,
)
from repro.cmpsim.simulator import IntervalStats
from repro.errors import SimulationError


def _stats(instructions, cpi):
    return IntervalStats(instructions=instructions,
                         cycles=instructions * cpi)


class TestPhaseStatistics:
    def test_single_homogeneous_phase(self):
        stats = phase_statistics(
            [0, 0, 0], [_stats(100, 2.0)] * 3
        )
        assert len(stats) == 1
        assert stats[0].mean_cpi == pytest.approx(2.0)
        assert stats[0].std_cpi == pytest.approx(0.0)
        assert stats[0].weight == pytest.approx(1.0)
        assert stats[0].n_intervals == 3

    def test_heterogeneous_phase_has_variance(self):
        stats = phase_statistics(
            [0, 0], [_stats(100, 1.0), _stats(100, 3.0)]
        )
        assert stats[0].mean_cpi == pytest.approx(2.0)
        assert stats[0].std_cpi == pytest.approx(1.0)
        assert stats[0].cov == pytest.approx(0.5)

    def test_weighting_by_instructions(self):
        stats = phase_statistics(
            [0, 0], [_stats(300, 1.0), _stats(100, 3.0)]
        )
        # Weighted mean: (300*1 + 100*3) / 400 = 1.5.
        assert stats[0].mean_cpi == pytest.approx(1.5)

    def test_multiple_phases_sorted(self):
        stats = phase_statistics(
            [1, 0, 1],
            [_stats(100, 2.0), _stats(100, 4.0), _stats(100, 2.0)],
        )
        assert [phase.cluster for phase in stats] == [0, 1]
        assert stats[0].weight == pytest.approx(1 / 3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SimulationError):
            phase_statistics([0], [])

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            phase_statistics([], [])


class TestEstimateConfidence:
    def test_tight_phases_give_tight_estimate(self):
        report = estimate_confidence(
            [0, 0, 1, 1],
            [_stats(100, 2.0)] * 2 + [_stats(100, 4.0)] * 2,
        )
        assert report.estimate_std == pytest.approx(0.0)
        assert report.relative_half_width_95 == pytest.approx(0.0)
        assert report.mean_cpi == pytest.approx(3.0)

    def test_variance_combines_across_phases(self):
        report = estimate_confidence(
            [0, 0, 1, 1],
            [
                _stats(100, 1.0), _stats(100, 3.0),  # phase 0: std 1
                _stats(100, 4.0), _stats(100, 4.0),  # phase 1: std 0
            ],
        )
        # Var = (0.5 * 1)^2 + (0.5 * 0)^2 = 0.25.
        assert report.estimate_std == pytest.approx(0.5)

    def test_external_weights_override(self):
        report = estimate_confidence(
            [0, 0, 1, 1],
            [
                _stats(100, 1.0), _stats(100, 3.0),
                _stats(100, 4.0), _stats(100, 4.0),
            ],
            weights={0: 1.0, 1: 0.0},
        )
        assert report.estimate_std == pytest.approx(1.0)
        assert report.mean_cpi == pytest.approx(2.0)

    def test_loosest_phase(self):
        report = estimate_confidence(
            [0, 0, 1, 1],
            [
                _stats(100, 1.0), _stats(100, 3.0),
                _stats(100, 4.0), _stats(100, 4.0),
            ],
        )
        assert report.loosest_phase().cluster == 0

    def test_on_real_run(self):
        """Measured Figure 3 errors sit inside the reported band on a
        real benchmark (the band is conservative by construction)."""
        from repro.experiments.runner import run_benchmark

        run = run_benchmark("art")
        outcome = run.outcome("32u")
        report = estimate_confidence(
            run.cross.simpoint.labels,
            outcome.vli_intervals,
            weights=outcome.vli_weights,
        )
        assert report.mean_cpi == pytest.approx(
            outcome.true_cpi, rel=0.01
        )
        assert (
            outcome.vli_estimate.cpi_error
            <= report.relative_half_width_95 + 0.05
        )


class TestSerialization:
    def test_figure_roundtrip(self, tmp_path):
        from repro.experiments.figures import FigureData
        from repro.experiments.serialize import (
            figure_to_dict,
            load_json,
            save_json,
        )

        figure = FigureData(
            figure="figureX",
            title="test",
            unit="units",
            benchmarks=("a", "b"),
            series={"S": (1.0, 3.0)},
        )
        data = figure_to_dict(figure)
        assert data["averages"]["S"] == pytest.approx(2.0)
        path = save_json(data, tmp_path / "fig.json")
        assert load_json(path) == data

    def test_benchmark_run_summary(self):
        from repro.experiments.runner import run_benchmark
        from repro.experiments.serialize import benchmark_run_to_dict

        run = run_benchmark("art")
        data = benchmark_run_to_dict(run)
        assert data["benchmark"] == "art"
        assert set(data["outcomes"]) == {"32u", "32o", "64u", "64o"}
        assert data["k"] == run.cross.simpoint.k
        weights = data["outcomes"]["32u"]["vli"]["weights"]
        assert sum(weights.values()) == pytest.approx(1.0)
        import json

        json.dumps(data)  # must be JSON-serializable

    def test_design_space_dict(self):
        from repro.experiments.design_space import (
            DesignPoint,
            DesignSpaceResult,
        )
        from repro.experiments.serialize import design_space_to_dict

        result = DesignSpaceResult(
            program="p",
            points=(
                DesignPoint("32u", "a", 10.0, 11.0, 10.5),
                DesignPoint("32o", "a", 5.0, 5.5, 5.2),
            ),
        )
        data = design_space_to_dict(result)
        assert data["true_best"] == ["32o", "a"]
        assert len(data["points"]) == 2
