"""Cross-module integration invariants on the micro program.

These tests tie every layer together: compilation -> execution ->
profiling -> matching -> VLIs -> SimPoint -> detailed simulation ->
estimation, asserting the global invariants the paper's method rests
on.
"""

import pytest

from repro.analysis.estimate import estimate_from_points
from repro.cmpsim.simulator import CMPSim, IntervalStats, VLITracker
from repro.core.mapping import interval_boundaries, map_simulation_points
from repro.core.pipeline import CrossBinaryConfig, run_cross_binary_simpoint
from repro.errors import ReproError
from repro.execution.engine import run_binary
from repro.simpoint.simpoint import SimPointConfig

from tests.conftest import MICRO_INTERVAL


@pytest.fixture(scope="module")
def cross(micro_binary_list):
    return run_cross_binary_simpoint(
        micro_binary_list,
        CrossBinaryConfig(
            interval_size=MICRO_INTERVAL,
            simpoint=SimPointConfig(max_k=6),
        ),
    )


@pytest.fixture(scope="module")
def per_binary_vli_stats(micro_binary_list, cross):
    stats = {}
    for binary in micro_binary_list:
        tracker = VLITracker(
            cross.marker_set.table_for(binary.name), cross.boundaries
        )
        full = CMPSim(binary).run_full(trackers=(tracker,))
        stats[binary.name] = (full.stats, tracker.intervals)
    return stats


class TestSemanticRegionInvariants:
    def test_mapped_intervals_cover_each_binary_exactly(
        self, micro_binary_list, cross, per_binary_vli_stats
    ):
        for binary in micro_binary_list:
            full_stats, intervals = per_binary_vli_stats[binary.name]
            assert sum(i.instructions for i in intervals) == (
                full_stats.instructions
            )
            assert len(intervals) == len(cross.intervals)

    def test_weights_derivable_from_tracked_intervals(
        self, micro_binary_list, cross, per_binary_vli_stats
    ):
        """Weights measured by the functional run must agree with the
        detailed run's per-interval instruction counts."""
        labels = cross.simpoint.labels
        for binary in micro_binary_list:
            _, intervals = per_binary_vli_stats[binary.name]
            total = sum(i.instructions for i in intervals)
            recomputed = {}
            for label, interval in zip(labels, intervals):
                recomputed[label] = (
                    recomputed.get(label, 0) + interval.instructions
                )
            expected = cross.weights_for(binary.name)
            for cluster, instructions in recomputed.items():
                assert instructions / total == pytest.approx(
                    expected[cluster]
                )

    def test_vli_estimate_is_weighted_point_cpi(
        self, micro_binary_list, cross, per_binary_vli_stats
    ):
        binary = micro_binary_list[2]  # 64u
        full_stats, intervals = per_binary_vli_stats[binary.name]
        weights = cross.weights_for(binary.name)
        manual = sum(
            weights[point.cluster] * intervals[point.interval_index].cpi
            for point in cross.mapped_points
        )
        estimate = estimate_from_points(
            binary.name,
            "vli",
            [(p.interval_index, weights[p.cluster])
             for p in cross.mapped_points],
            intervals,
            IntervalStats(instructions=full_stats.instructions,
                          cycles=full_stats.cycles),
        )
        assert estimate.estimated_cpi == pytest.approx(manual)

    def test_estimates_are_reasonably_accurate(
        self, micro_binary_list, cross, per_binary_vli_stats
    ):
        for binary in micro_binary_list:
            full_stats, intervals = per_binary_vli_stats[binary.name]
            weights = cross.weights_for(binary.name)
            estimate = estimate_from_points(
                binary.name,
                "vli",
                [(p.interval_index, weights[p.cluster])
                 for p in cross.mapped_points],
                intervals,
                IntervalStats(instructions=full_stats.instructions,
                              cycles=full_stats.cycles),
            )
            assert estimate.cpi_error < 0.35

    def test_region_simulation_agrees_with_tracker(
        self, micro_binary_list, cross, per_binary_vli_stats
    ):
        """Simulating only the mapped simulation points (warm
        fast-forward) reproduces the tracker's per-interval stats, in a
        *different* binary than the primary."""
        from repro.cmpsim.simulator import regions_from_mapped_points

        binary = micro_binary_list[1]  # 32o
        _, intervals = per_binary_vli_stats[binary.name]
        regions = regions_from_mapped_points(cross.mapped_points)
        result = CMPSim(binary).run_regions(
            regions, cross.marker_set.table_for(binary.name), warm=True
        )
        for point in cross.mapped_points:
            region = result.region(point.cluster)
            tracked = intervals[point.interval_index]
            assert region.instructions == tracked.instructions
            assert region.cycles == pytest.approx(tracked.cycles)


class TestDeterminismEndToEnd:
    def test_full_pipeline_is_reproducible(self, micro_binary_list):
        config = CrossBinaryConfig(
            interval_size=MICRO_INTERVAL,
            simpoint=SimPointConfig(max_k=6),
        )
        a = run_cross_binary_simpoint(micro_binary_list, config)
        b = run_cross_binary_simpoint(micro_binary_list, config)
        assert a.boundaries == b.boundaries
        assert a.simpoint == b.simpoint
        assert a.weights == b.weights


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        subclasses = [
            errors.ProgramError, errors.CompilationError,
            errors.ExecutionError, errors.ProfilingError,
            errors.ClusteringError, errors.MatchingError,
            errors.MappingError, errors.SimulationError,
            errors.FileFormatError,
        ]
        for subclass in subclasses:
            assert issubclass(subclass, ReproError)


class TestPublicAPI:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_readme_example_runs(self, micro_binary_list):
        """The snippet advertised in the package docstring works."""
        from repro import CrossBinaryConfig, run_cross_binary_simpoint

        result = run_cross_binary_simpoint(
            micro_binary_list,
            CrossBinaryConfig(interval_size=MICRO_INTERVAL),
        )
        assert result.mapped_points
        assert set(result.weights) == {
            binary.name for binary in micro_binary_list
        }
