"""Smoke tests: every example script runs and prints its conclusions.

Examples are part of the public deliverable; these tests execute each
one in-process (monkeypatching nothing, asserting on stdout) so a
regression in any public API they use fails the suite. The two
heaviest examples (full gcc/twolf experiment runs) are exercised via
the shared in-process cache where possible.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_reports_estimate(self, capsys):
        module = _load_example("quickstart")
        module.main([])  # quickstart parses sys.argv when run as a script
        out = capsys.readouterr().out
        assert "SimPoint chose k=" in out
        assert "sampled estimate" in out
        assert "error" in out


class TestCustomProgram:
    def test_runs_end_to_end(self, capsys):
        module = _load_example("custom_program")
        module.main()
        out = capsys.readouterr().out
        assert "mappable points" in out
        assert "mywork/64o" in out
        assert "mywork: mappable phases" in out

    def test_builder_is_reusable(self):
        module = _load_example("custom_program")
        program = module.build_my_program()
        assert program.finalized
        assert set(program.procedures) == {
            "main", "stream_pass", "chase_pass"
        }


@pytest.mark.slow
class TestHeavyExamples:
    """The experiment-backed examples (one full benchmark run each).

    They share the runner's in-process cache, so the marginal cost
    after the first is small.
    """

    def test_isa_extension_study(self, capsys):
        module = _load_example("isa_extension_study")
        module.main()
        out = capsys.readouterr().out
        assert "true speedup" in out
        assert "Cross Binary SimPoint" in out

    def test_phase_bias_anatomy(self, capsys):
        module = _load_example("phase_bias_anatomy")
        module.main()
        out = capsys.readouterr().out
        assert "max bias swing" in out
        assert "region simulation of gcc/64u" in out
