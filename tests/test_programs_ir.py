"""Tests for repro.programs.ir."""

import pytest

from repro.errors import ProgramError
from repro.programs.behaviors import streaming
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    call_graph,
    finalize_program,
    iter_program_statements,
    iter_statements,
    reachable_procedures,
    static_statistics,
)


def _simple_program(**kwargs):
    leaf = Procedure(
        name="leaf",
        body=(Compute("leaf_c", instructions=10),),
    )
    main = Procedure(
        name="main",
        body=(
            Compute("init", instructions=5),
            Loop(
                "loop",
                trips=4,
                body=(
                    Call("call_leaf", callee="leaf"),
                    Compute("work", instructions=20,
                            behavior=streaming(4096)),
                ),
            ),
        ),
    )
    return Program(
        name="simple",
        procedures={"main": main, "leaf": leaf},
        entry="main",
        **kwargs,
    )


class TestConstruction:
    def test_compute_rejects_zero_instructions(self):
        with pytest.raises(ProgramError):
            Compute("c", instructions=0)

    def test_loop_rejects_zero_trips(self):
        with pytest.raises(ProgramError):
            Loop("l", trips=0, body=(Compute("c", instructions=1),))

    def test_loop_rejects_empty_body(self):
        with pytest.raises(ProgramError):
            Loop("l", trips=1, body=())

    def test_call_rejects_unnamed_callee(self):
        with pytest.raises(ProgramError):
            Call("c", callee="")

    def test_procedure_rejects_empty_body(self):
        with pytest.raises(ProgramError):
            Procedure(name="p", body=())

    def test_program_rejects_missing_entry(self):
        leaf = Procedure(name="leaf", body=(Compute("c", instructions=1),))
        with pytest.raises(ProgramError):
            Program(name="p", procedures={"leaf": leaf}, entry="main")

    def test_program_rejects_mismatched_keys(self):
        leaf = Procedure(name="leaf", body=(Compute("c", instructions=1),))
        with pytest.raises(ProgramError):
            Program(name="p", procedures={"other": leaf}, entry="other")


class TestWalks:
    def test_iter_statements_is_preorder(self):
        program = _simple_program()
        names = [s.name for s in iter_statements(
            program.procedures["main"].body)]
        assert names == ["init", "loop", "call_leaf", "work"]

    def test_iter_program_statements_covers_all_procedures(self):
        program = _simple_program()
        pairs = list(iter_program_statements(program))
        procs = {proc for proc, _ in pairs}
        assert procs == {"main", "leaf"}

    def test_call_graph(self):
        program = _simple_program()
        graph = call_graph(program)
        assert graph["main"] == ("leaf",)
        assert graph["leaf"] == ()

    def test_reachable_from_entry(self):
        program = _simple_program()
        assert reachable_procedures(program) == ("main", "leaf")

    def test_unreachable_procedures_excluded(self):
        extra = Procedure(name="orphan", body=(Compute("c", instructions=1),))
        program = _simple_program()
        procedures = dict(program.procedures)
        procedures["orphan"] = extra
        program = Program(name="p", procedures=procedures, entry="main")
        assert "orphan" not in reachable_procedures(program)


class TestFinalize:
    def test_assigns_unique_lines(self):
        program = finalize_program(_simple_program())
        lines = [
            stmt.location.line
            for _, stmt in iter_program_statements(program)
        ]
        assert len(lines) == len(set(lines))
        assert all(line > 0 for line in lines)

    def test_assigns_stream_ids_to_computes(self):
        program = finalize_program(_simple_program())
        for _, stmt in iter_program_statements(program):
            if isinstance(stmt, Compute):
                assert stmt.stream_id is not None

    def test_named_streams_share_ids(self):
        main = Procedure(
            name="main",
            body=(
                Compute("a", instructions=1, stream="shared"),
                Compute("b", instructions=1, stream="shared"),
                Compute("c", instructions=1),
            ),
        )
        program = finalize_program(
            Program(name="p", procedures={"main": main}, entry="main")
        )
        a, b, c = program.procedures["main"].body
        assert a.stream_id == b.stream_id
        assert c.stream_id != a.stream_id

    def test_unnamed_streams_are_unique(self):
        program = finalize_program(_simple_program())
        ids = [
            stmt.stream_id
            for _, stmt in iter_program_statements(program)
            if isinstance(stmt, Compute)
        ]
        assert len(ids) == len(set(ids))

    def test_idempotent(self):
        once = finalize_program(_simple_program())
        twice = finalize_program(once)
        assert once is twice

    def test_source_file_defaults_to_program_name(self):
        program = finalize_program(_simple_program())
        assert program.source_file == "simple.c"

    def test_rejects_undefined_callee(self):
        main = Procedure(
            name="main", body=(Call("c", callee="missing"),)
        )
        program = Program(name="p", procedures={"main": main}, entry="main")
        with pytest.raises(ProgramError, match="undefined procedure"):
            finalize_program(program)

    def test_rejects_recursion(self):
        a = Procedure(name="a", body=(Call("ca", callee="b"),))
        b = Procedure(name="b", body=(Call("cb", callee="a"),))
        main = Procedure(name="main", body=(Call("cm", callee="a"),))
        program = Program(
            name="p", procedures={"main": main, "a": a, "b": b},
            entry="main",
        )
        with pytest.raises(ProgramError, match="recursive"):
            finalize_program(program)

    def test_rejects_self_recursion(self):
        main = Procedure(name="main", body=(Call("cm", callee="main"),))
        program = Program(name="p", procedures={"main": main}, entry="main")
        with pytest.raises(ProgramError, match="recursive"):
            finalize_program(program)

    def test_loop_headers_get_distinct_lines_from_bodies(self):
        program = finalize_program(_simple_program())
        main = program.procedures["main"]
        loop = main.body[1]
        body_lines = {stmt.location.line for stmt in loop.body}
        assert loop.location.line not in body_lines


class TestStatistics:
    def test_static_statistics(self):
        stats = static_statistics(_simple_program())
        assert stats.procedures == 2
        assert stats.loops == 1
        assert stats.computes == 3
        assert stats.calls == 1
        assert stats.max_loop_depth == 1

    def test_nested_loop_depth(self):
        inner = Loop("inner", trips=2, body=(Compute("c", instructions=1),))
        outer = Loop("outer", trips=2, body=(inner,))
        main = Procedure(name="main", body=(outer,))
        program = Program(name="p", procedures={"main": main}, entry="main")
        assert static_statistics(program).max_loop_depth == 2
