"""Tests for marker-set serialization and input-mismatch detection."""

import pytest

from repro.core.mapping import interval_boundaries
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.core.weights import measure_interval_instructions
from repro.errors import FileFormatError, MappingError
from repro.pinpoints.markers_io import read_marker_set, write_marker_set
from repro.profiling.callbranch import collect_call_branch_profile
from repro.programs.inputs import ProgramInput

from tests.conftest import MICRO_INTERVAL


@pytest.fixture(scope="module")
def marker_set(micro_binary_list):
    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in micro_binary_list
    ]
    marker_set, _ = find_mappable_points(profiles)
    return marker_set


class TestMarkerSetRoundtrip:
    def test_roundtrip_preserves_everything(self, marker_set, tmp_path):
        path = tmp_path / "micro.markers"
        write_marker_set(path, marker_set)
        loaded = read_marker_set(path)
        assert loaded.points == marker_set.points
        assert set(loaded.tables) == set(marker_set.tables)
        for name in marker_set.tables:
            assert (
                dict(loaded.tables[name].anchor_blocks)
                == dict(marker_set.tables[name].anchor_blocks)
            )

    def test_loaded_set_drives_vli_construction(
        self, marker_set, micro_binary_32u, tmp_path
    ):
        """The archived marker set is functionally equivalent."""
        path = tmp_path / "micro.markers"
        write_marker_set(path, marker_set)
        loaded = read_marker_set(path)
        original = collect_vli_bbvs(
            micro_binary_32u, marker_set, MICRO_INTERVAL
        )
        reloaded = collect_vli_bbvs(
            micro_binary_32u, loaded, MICRO_INTERVAL
        )
        assert [i.end_coord for i in original] == [
            i.end_coord for i in reloaded
        ]

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text("binaries a b\n")
        with pytest.raises(FileFormatError, match="header"):
            read_marker_set(path)

    def test_missing_binaries_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text("# repro marker set v1\n")
        with pytest.raises(FileFormatError, match="binaries"):
            read_marker_set(path)

    def test_malformed_point_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text(
            "# repro marker set v1\nbinaries a\npoint 0 procedure\n"
        )
        with pytest.raises(FileFormatError, match="point"):
            read_marker_set(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text("# repro marker set v1\nbinaries a\nwat 1 2\n")
        with pytest.raises(FileFormatError, match="unknown record"):
            read_marker_set(path)

    def test_out_of_range_binary_index_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text(
            "# repro marker set v1\nbinaries a\nanchor 3 0 0\n"
        )
        with pytest.raises(FileFormatError, match="out of range"):
            read_marker_set(path)


class TestInputMismatch:
    def test_coordinates_from_one_input_fail_on_another(
        self, micro_binary_list, marker_set, micro_binary_32u
    ):
        """The paper's protocol requires the SAME input everywhere:
        coordinates built under one input do not exist under another,
        and the library reports that instead of silently mis-mapping.
        """
        intervals = collect_vli_bbvs(
            micro_binary_32u, marker_set, MICRO_INTERVAL
        )
        boundaries = interval_boundaries(intervals)
        smaller = ProgramInput("smaller", scale=0.4)
        with pytest.raises(MappingError, match="never reached"):
            measure_interval_instructions(
                micro_binary_32u, marker_set, boundaries,
                program_input=smaller,
            )
