"""Tests for marker-set serialization and input-mismatch detection."""

import pytest

from repro.core.mapping import interval_boundaries
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.core.weights import measure_interval_instructions
from repro.errors import FileFormatError, MappingError
from repro.pinpoints.markers_io import read_marker_set, write_marker_set
from repro.profiling.callbranch import collect_call_branch_profile
from repro.programs.inputs import ProgramInput

from tests.conftest import MICRO_INTERVAL


@pytest.fixture(scope="module")
def marker_set(micro_binary_list):
    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in micro_binary_list
    ]
    marker_set, _ = find_mappable_points(profiles)
    return marker_set


class TestMarkerSetRoundtrip:
    def test_roundtrip_preserves_everything(self, marker_set, tmp_path):
        path = tmp_path / "micro.markers"
        write_marker_set(path, marker_set)
        loaded = read_marker_set(path)
        assert loaded.points == marker_set.points
        assert set(loaded.tables) == set(marker_set.tables)
        for name in marker_set.tables:
            assert (
                dict(loaded.tables[name].anchor_blocks)
                == dict(marker_set.tables[name].anchor_blocks)
            )

    def test_loaded_set_drives_vli_construction(
        self, marker_set, micro_binary_32u, tmp_path
    ):
        """The archived marker set is functionally equivalent."""
        path = tmp_path / "micro.markers"
        write_marker_set(path, marker_set)
        loaded = read_marker_set(path)
        original = collect_vli_bbvs(
            micro_binary_32u, marker_set, MICRO_INTERVAL
        )
        reloaded = collect_vli_bbvs(
            micro_binary_32u, loaded, MICRO_INTERVAL
        )
        assert [i.end_coord for i in original] == [
            i.end_coord for i in reloaded
        ]

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text("binaries a b\n")
        with pytest.raises(FileFormatError, match="header"):
            read_marker_set(path)

    def test_missing_binaries_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text("# repro marker set v1\n")
        with pytest.raises(FileFormatError, match="binaries"):
            read_marker_set(path)

    def test_malformed_point_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text(
            "# repro marker set v1\nbinaries a\npoint 0 procedure\n"
        )
        with pytest.raises(FileFormatError, match="point"):
            read_marker_set(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text("# repro marker set v1\nbinaries a\nwat 1 2\n")
        with pytest.raises(FileFormatError, match="unknown record"):
            read_marker_set(path)

    def test_out_of_range_binary_index_rejected(self, tmp_path):
        path = tmp_path / "bad.markers"
        path.write_text(
            "# repro marker set v1\nbinaries a\nanchor 3 0 0\n"
        )
        with pytest.raises(FileFormatError, match="out of range"):
            read_marker_set(path)


class TestInputMismatch:
    def test_coordinates_from_one_input_fail_on_another(
        self, micro_binary_list, marker_set, micro_binary_32u
    ):
        """The paper's protocol requires the SAME input everywhere:
        coordinates built under one input do not exist under another,
        and the library reports that instead of silently mis-mapping.
        """
        intervals = collect_vli_bbvs(
            micro_binary_32u, marker_set, MICRO_INTERVAL
        )
        boundaries = interval_boundaries(intervals)
        smaller = ProgramInput("smaller", scale=0.4)
        with pytest.raises(MappingError, match="never reached"):
            measure_interval_instructions(
                micro_binary_32u, marker_set, boundaries,
                program_input=smaller,
            )


def _tiny_marker_set(names):
    """A one-point marker set over the given binary names."""
    from repro.core.markers import (
        MappablePoint,
        MarkerKind,
        MarkerSet,
        MarkerTable,
    )

    point = MappablePoint(
        marker_id=0, kind=MarkerKind.PROCEDURE, key=("proc", "main"),
        total_count=4,
    )
    tables = {
        name: MarkerTable(binary_name=name, anchor_blocks={0: 7})
        for name in names
    }
    return MarkerSet(points=(point,), tables=tables)


class TestMarkerSetNameValidation:
    """Names are space-separated on the ``binaries`` line, so names
    containing whitespace used to write archives that silently
    mis-parsed on read (one binary became two)."""

    @pytest.mark.parametrize(
        "bad_name", ["has space/32u", "tab\there", "new\nline", ""]
    )
    def test_unarchivable_names_rejected_on_write(self, bad_name, tmp_path):
        path = tmp_path / "bad.markers"
        with pytest.raises(FileFormatError, match="name"):
            write_marker_set(path, _tiny_marker_set([bad_name]))
        assert not path.exists(), "rejected archive must not be written"

    def test_clean_names_still_roundtrip(self, tmp_path):
        path = tmp_path / "ok.markers"
        original = _tiny_marker_set(["app/32u", "app/64o"])
        write_marker_set(path, original)
        loaded = read_marker_set(path)
        assert loaded.points == original.points
        assert set(loaded.tables) == {"app/32u", "app/64o"}
        assert dict(loaded.tables["app/32u"].anchor_blocks) == {0: 7}


class TestArchiveCorrectness:
    """Duplicate and dangling records used to be silently accepted:
    a duplicate anchor overwrote the earlier block, a duplicate point
    produced two markers with one id, and a point with no anchor in
    some binary survived until it broke mapping much later."""

    _PREAMBLE = (
        "# repro marker set v1\n"
        "binaries app/32u app/64o\n"
        'point 0 procedure 4 ["proc","main"]\n'
    )

    def test_duplicate_point_id_rejected(self, tmp_path):
        path = tmp_path / "dup-point.markers"
        path.write_text(
            self._PREAMBLE
            + 'point 0 procedure 9 ["proc","other"]\n'
            + "anchor 0 0 7\nanchor 1 0 7\n"
        )
        with pytest.raises(FileFormatError, match=r":4: duplicate point"):
            read_marker_set(path)

    def test_duplicate_anchor_rejected(self, tmp_path):
        path = tmp_path / "dup-anchor.markers"
        path.write_text(
            self._PREAMBLE
            + "anchor 0 0 7\nanchor 0 0 9\nanchor 1 0 7\n"
        )
        with pytest.raises(
            FileFormatError, match=r":5: duplicate anchor"
        ):
            read_marker_set(path)

    def test_anchor_for_unknown_marker_rejected(self, tmp_path):
        path = tmp_path / "unknown.markers"
        path.write_text(
            self._PREAMBLE
            + "anchor 0 0 7\nanchor 1 0 7\nanchor 0 5 11\n"
        )
        with pytest.raises(
            FileFormatError, match=r":6: anchor references unknown"
        ):
            read_marker_set(path)

    def test_dangling_point_rejected(self, tmp_path):
        """A point with no anchor in one binary cannot be mapped there;
        the archive names the point and the missing binary."""
        path = tmp_path / "dangling.markers"
        path.write_text(self._PREAMBLE + "anchor 0 0 7\n")
        with pytest.raises(
            FileFormatError, match=r":3: point 0 is dangling.*app/64o"
        ):
            read_marker_set(path)


class TestArchiveVersions:
    """v1 archives (no confidence column) stay loadable, and archives
    of exact-only marker sets stay byte-compatible with v1 writers."""

    def test_v1_points_load_with_full_confidence(self, tmp_path):
        path = tmp_path / "v1.markers"
        path.write_text(
            "# repro marker set v1\n"
            "binaries app/32u\n"
            'point 0 procedure 4 ["proc","main"]\n'
            "anchor 0 0 7\n"
        )
        loaded = read_marker_set(path)
        assert loaded.points[0].confidence == 1.0

    def test_exact_only_set_written_as_v1(self, marker_set, tmp_path):
        assert all(p.confidence == 1.0 for p in marker_set.points)
        path = tmp_path / "exact.markers"
        write_marker_set(path, marker_set)
        assert path.read_text().splitlines()[0] == "# repro marker set v1"

    def test_fuzzy_set_roundtrips_through_v2(
        self, micro_binary_list, tmp_path
    ):
        profiles = [
            (binary, collect_call_branch_profile(binary))
            for binary in micro_binary_list
        ]
        fuzzy_set, _ = find_mappable_points(
            profiles, match_confidence=0.6
        )
        assert fuzzy_set.fuzzy_points(), "fixture must have a fuzzy point"
        path = tmp_path / "fuzzy.markers"
        write_marker_set(path, fuzzy_set)
        assert path.read_text().splitlines()[0] == "# repro marker set v2"
        loaded = read_marker_set(path)
        assert loaded.points == fuzzy_set.points
        assert loaded.min_confidence() == fuzzy_set.min_confidence()

    def test_malformed_confidence_rejected(self, tmp_path):
        path = tmp_path / "bad-conf.markers"
        path.write_text(
            "# repro marker set v2\n"
            "binaries app/32u\n"
            'point 0 procedure 4 high ["proc","main"]\n'
            "anchor 0 0 7\n"
        )
        with pytest.raises(FileFormatError, match=":3"):
            read_marker_set(path)


class TestMarkerSetRecordOrdering:
    """An anchor record before the binaries line used to surface as an
    unrelated 'binary index out of range' complaint instead of naming
    the actual problem."""

    def test_anchor_before_binaries_is_diagnosed(self, tmp_path):
        path = tmp_path / "ooo.markers"
        path.write_text(
            "# repro marker set v1\n"
            "anchor 0 0 7\n"
            "binaries app/32u\n"
        )
        with pytest.raises(
            FileFormatError, match="before the binaries line"
        ):
            read_marker_set(path)

    def test_points_before_binaries_still_parse(self, tmp_path):
        path = tmp_path / "points-first.markers"
        original = _tiny_marker_set(["app/32u"])
        write_marker_set(path, original)
        lines = path.read_text().splitlines()
        # header, binaries, point, anchor -> header, point, binaries, anchor
        reordered = [lines[0], lines[2], lines[1], lines[3]]
        path.write_text("\n".join(reordered) + "\n")
        loaded = read_marker_set(path)
        assert loaded.points == original.points
        assert dict(loaded.tables["app/32u"].anchor_blocks) == {0: 7}
