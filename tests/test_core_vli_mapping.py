"""Tests for repro.core.vli, repro.core.mapping, repro.core.weights."""

import pytest

from repro.core.mapping import interval_boundaries, map_simulation_points
from repro.core.matching import find_mappable_points
from repro.core.vli import VLIBuilder, collect_vli_bbvs
from repro.core.weights import (
    IntervalInstructionCounter,
    measure_interval_instructions,
    phase_weights,
)
from repro.errors import MappingError, ProfilingError
from repro.execution.engine import run_binary
from repro.profiling.callbranch import collect_call_branch_profile
from repro.profiling.intervals import Interval
from repro.simpoint.simpoint import SimPointConfig, run_simpoint

from tests.conftest import MICRO_INTERVAL


@pytest.fixture(scope="module")
def marker_set(micro_binary_list):
    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in micro_binary_list
    ]
    marker_set, _ = find_mappable_points(profiles)
    return marker_set


@pytest.fixture(scope="module")
def primary_vlis(micro_binary_32u, marker_set):
    return collect_vli_bbvs(micro_binary_32u, marker_set, MICRO_INTERVAL)


class TestVLIConstruction:
    def test_rejects_bad_target_size(self, micro_binary_32u, marker_set):
        with pytest.raises(ProfilingError):
            VLIBuilder(
                micro_binary_32u,
                marker_set.table_for(micro_binary_32u.name),
                0,
            )

    def test_rejects_wrong_table(self, micro_binary_32u, micro_binary_32o,
                                 marker_set):
        with pytest.raises(ProfilingError, match="marker table is for"):
            VLIBuilder(
                micro_binary_32u,
                marker_set.table_for(micro_binary_32o.name),
                MICRO_INTERVAL,
            )

    def test_intervals_meet_target_size(self, primary_vlis):
        for interval in primary_vlis[:-1]:
            assert interval.instructions >= MICRO_INTERVAL

    def test_total_instructions_preserved(self, micro_binary_32u,
                                          primary_vlis):
        totals = run_binary(micro_binary_32u)
        assert (
            sum(i.instructions for i in primary_vlis) == totals.instructions
        )

    def test_bbv_mass_matches(self, primary_vlis):
        for interval in primary_vlis:
            assert interval.bbv_total() == pytest.approx(
                interval.instructions
            )

    def test_coords_chain(self, primary_vlis):
        assert primary_vlis[0].start_coord is None
        assert primary_vlis[-1].end_coord is None
        for prev, cur in zip(primary_vlis, primary_vlis[1:]):
            assert prev.end_coord == cur.start_coord
            assert prev.end_coord is not None

    def test_boundary_coords_are_known_markers(self, primary_vlis,
                                               marker_set):
        marker_ids = {point.marker_id for point in marker_set.points}
        for interval in primary_vlis[:-1]:
            marker_id, count = interval.end_coord
            assert marker_id in marker_ids
            assert count >= 1

    def test_deterministic(self, micro_binary_32u, marker_set):
        a = collect_vli_bbvs(micro_binary_32u, marker_set, MICRO_INTERVAL)
        b = collect_vli_bbvs(micro_binary_32u, marker_set, MICRO_INTERVAL)
        assert [i.end_coord for i in a] == [i.end_coord for i in b]

    def test_larger_target_fewer_intervals(self, micro_binary_32u,
                                           marker_set):
        small = collect_vli_bbvs(micro_binary_32u, marker_set,
                                 MICRO_INTERVAL)
        large = collect_vli_bbvs(micro_binary_32u, marker_set,
                                 MICRO_INTERVAL * 4)
        assert len(large) < len(small)


class TestMapping:
    def test_interval_boundaries(self, primary_vlis):
        boundaries = interval_boundaries(primary_vlis)
        assert len(boundaries) == len(primary_vlis) - 1

    def test_boundaries_reject_unbounded_interior(self):
        intervals = [
            Interval(index=0, instructions=10, bbv={1: 10.0}),
            Interval(index=1, instructions=10, bbv={1: 10.0}),
        ]
        with pytest.raises(MappingError, match="no end coordinate"):
            interval_boundaries(intervals)

    def test_boundaries_reject_bounded_final(self):
        intervals = [
            Interval(index=0, instructions=10, bbv={1: 10.0},
                     end_coord=(0, 1)),
        ]
        with pytest.raises(MappingError, match="program exit"):
            interval_boundaries(intervals)

    def test_mapped_points_carry_interval_coords(self, primary_vlis):
        simpoint = run_simpoint(primary_vlis, SimPointConfig(max_k=5))
        mapped = map_simulation_points(primary_vlis, simpoint)
        assert len(mapped) == simpoint.n_points
        for point in mapped:
            interval = primary_vlis[point.interval_index]
            assert point.start == interval.start_coord
            assert point.end == interval.end_coord
            assert point.primary_weight > 0

    def test_mapping_rejects_out_of_range(self, primary_vlis):
        simpoint = run_simpoint(primary_vlis, SimPointConfig(max_k=5))
        with pytest.raises(MappingError):
            map_simulation_points(primary_vlis[:2], simpoint)


class TestWeightMeasurement:
    def test_interval_counts_in_every_binary(
        self, micro_binary_list, marker_set, primary_vlis
    ):
        boundaries = interval_boundaries(primary_vlis)
        for binary in micro_binary_list:
            counts = measure_interval_instructions(
                binary, marker_set, boundaries
            )
            assert len(counts) == len(primary_vlis)
            assert all(count > 0 for count in counts)
            totals = run_binary(binary)
            assert sum(counts) == totals.instructions

    def test_primary_measurement_matches_builder(
        self, micro_binary_32u, marker_set, primary_vlis
    ):
        boundaries = interval_boundaries(primary_vlis)
        counts = measure_interval_instructions(
            micro_binary_32u, marker_set, boundaries
        )
        assert counts == [i.instructions for i in primary_vlis]

    def test_optimized_intervals_shrink(
        self, micro_binary_32u, micro_binary_32o, marker_set, primary_vlis
    ):
        """Mapped intervals cover the same semantic region, which takes
        fewer instructions in the optimized binary (paper Section 4)."""
        boundaries = interval_boundaries(primary_vlis)
        counts_u = measure_interval_instructions(
            micro_binary_32u, marker_set, boundaries
        )
        counts_o = measure_interval_instructions(
            micro_binary_32o, marker_set, boundaries
        )
        assert sum(counts_o) < sum(counts_u)
        shrunk = sum(
            1 for u, o in zip(counts_u, counts_o) if o < u
        )
        assert shrunk > len(counts_u) * 0.8

    def test_unreachable_boundary_raises(self, micro_binary_32u,
                                         marker_set):
        bogus = [(marker_set.points[0].marker_id, 10**9)]
        with pytest.raises(MappingError, match="never reached"):
            measure_interval_instructions(
                micro_binary_32u, marker_set, bogus
            )

    def test_phase_weights_sum_to_one(self):
        weights = phase_weights([10, 30, 60], [0, 1, 1])
        assert weights == {0: 0.1, 1: 0.9}

    def test_phase_weights_length_mismatch(self):
        with pytest.raises(MappingError):
            phase_weights([10, 20], [0])

    def test_phase_weights_rejects_empty(self):
        with pytest.raises(MappingError):
            phase_weights([], [])
