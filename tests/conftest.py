"""Shared fixtures: small deterministic programs and compiled binaries.

Unit tests run against a hand-built *micro* program (hundreds of
thousands of instructions, milliseconds to execute) rather than the
full synthetic suite, so the whole test suite stays fast. A handful of
integration tests use real suite benchmarks.
"""

from __future__ import annotations

import pytest

from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import (
    STANDARD_TARGETS,
    TARGET_32O,
    TARGET_32U,
    TARGET_64O,
    TARGET_64U,
)
from repro.programs.behaviors import (
    pointer_chasing,
    random_access,
    stack_local,
    streaming,
)
from repro.programs.inputs import ProgramInput
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    finalize_program,
)

#: Interval size used by micro-program tests (the runs are ~300K-1.5M
#: instructions, so this yields a few dozen intervals).
MICRO_INTERVAL = 20_000


def build_micro_program(name: str = "micro") -> Program:
    """A small three-phase program exercising every IR construct.

    * ``kern_a`` — streaming kernel, shared by two stages;
    * ``kern_b`` — random-access kernel;
    * ``helper`` — single-call-site inlinable procedure (recoverable by
      the count-signature heuristic after inlining);
    * three stages with different kernel mixtures, repeated three times
      by ``main``.
    """
    kern_a = Procedure(
        name="kern_a",
        body=(
            Loop(
                "kern_a_loop",
                trips=12,
                body=(
                    Compute("kern_a_c0", instructions=80,
                            behavior=streaming(64 * 1024, 4, stride=16)),
                ),
                unrollable=True,
                splittable=False,
            ),
        ),
        inlinable=False,
    )
    kern_b = Procedure(
        name="kern_b",
        body=(
            Loop(
                "kern_b_loop",
                trips=10,
                body=(
                    Compute("kern_b_c0", instructions=60,
                            behavior=random_access(256 * 1024, 3)),
                    Compute("kern_b_c1", instructions=50,
                            behavior=pointer_chasing(128 * 1024, 2)),
                ),
                unrollable=False,
                splittable=True,
            ),
        ),
        inlinable=False,
    )
    helper = Procedure(
        name="helper",
        body=(
            Loop(
                "helper_loop",
                trips=37,
                body=(
                    Compute("helper_c0", instructions=40,
                            behavior=stack_local(2)),
                ),
                unrollable=False,
                splittable=False,
            ),
        ),
        inlinable=True,
    )
    stage_0 = Procedure(
        name="stage_0",
        body=(
            Loop(
                "stage0_outer",
                trips=8,
                body=(
                    Call("s0_call_a", callee="kern_a"),
                    Call("s0_call_a2", callee="kern_a"),
                    Call("s0_call_b", callee="kern_b"),
                ),
                unrollable=False,
                splittable=False,
            ),
        ),
        inlinable=False,
    )
    stage_1 = Procedure(
        name="stage_1",
        body=(
            Loop(
                "stage1_outer",
                trips=6,
                body=(
                    Call("s1_call_b", callee="kern_b"),
                    Call("s1_call_helper", callee="helper"),
                    Compute("stage1_local", instructions=90,
                            behavior=streaming(32 * 1024, 3, stride=16)),
                ),
                unrollable=False,
                splittable=False,
            ),
        ),
        inlinable=False,
    )
    stage_2 = Procedure(
        name="stage_2",
        body=(
            Loop(
                "stage2_outer",
                trips=7,
                body=(
                    Call("s2_call_a", callee="kern_a"),
                    Compute("stage2_local", instructions=120,
                            behavior=random_access(512 * 1024, 4)),
                ),
                unrollable=False,
                splittable=False,
            ),
        ),
        inlinable=False,
    )
    main = Procedure(
        name="main",
        body=(
            Compute("init", instructions=150, behavior=stack_local(1)),
            Loop(
                "main_loop",
                trips=3,
                input_scaled=True,
                body=(
                    Call("m_call_s0", callee="stage_0"),
                    Call("m_call_s1", callee="stage_1"),
                    Call("m_call_s2", callee="stage_2"),
                ),
                unrollable=False,
                splittable=False,
            ),
            Compute("final", instructions=150, behavior=stack_local(1)),
        ),
        inlinable=False,
    )
    program = Program(
        name=name,
        procedures={
            proc.name: proc
            for proc in (main, stage_0, stage_1, stage_2,
                         kern_a, kern_b, helper)
        },
        entry="main",
    )
    return finalize_program(program)


@pytest.fixture(scope="session")
def micro_program() -> Program:
    return build_micro_program()


@pytest.fixture(scope="session")
def micro_binaries(micro_program):
    """The four standard binaries of the micro program."""
    return compile_standard_binaries(micro_program)


@pytest.fixture(scope="session")
def micro_binary_32u(micro_binaries):
    return micro_binaries[TARGET_32U]


@pytest.fixture(scope="session")
def micro_binary_32o(micro_binaries):
    return micro_binaries[TARGET_32O]


@pytest.fixture(scope="session")
def micro_binary_64u(micro_binaries):
    return micro_binaries[TARGET_64U]


@pytest.fixture(scope="session")
def micro_binary_64o(micro_binaries):
    return micro_binaries[TARGET_64O]


@pytest.fixture(scope="session")
def micro_binary_list(micro_binaries):
    return [micro_binaries[target] for target in STANDARD_TARGETS]
