"""Small-surface tests rounding out coverage: stats rendering,
simulator result types, marker-set accessors, CLI markers flag."""

import pytest

from repro.cmpsim.simulator import CMPSim, SimulationStats
from repro.core.markers import MarkerKind
from repro.errors import SimulationError
from repro.experiments.reporting import render_simulation_stats


class TestSimulationStats:
    def _stats(self):
        return SimulationStats(
            instructions=1_000,
            cycles=2_500.0,
            memory_refs=50,
            level_accesses=(50, 20, 10),
            level_misses=(20, 10, 8),
            dram_reads=8,
            dram_writebacks=2,
        )

    def test_cpi(self):
        assert self._stats().cpi == pytest.approx(2.5)

    def test_empty_run_has_no_cpi(self):
        stats = SimulationStats(
            instructions=0, cycles=0.0, memory_refs=0,
            level_accesses=(0, 0, 0), level_misses=(0, 0, 0),
            dram_reads=0, dram_writebacks=0,
        )
        with pytest.raises(SimulationError):
            stats.cpi

    def test_render_simulation_stats(self):
        text = render_simulation_stats(self._stats())
        assert "L1D" in text and "DRAM" in text
        assert "40.0%" in text  # L1 miss rate 20/50
        assert "DRAM MPKI 8.00" in text
        assert "refs/instr 0.050" in text


class TestFullRunResult:
    def test_run_full_returns_stats(self, micro_binary_32o):
        result = CMPSim(micro_binary_32o).run_full()
        assert result.stats.instructions > 0
        assert result.stats.level_accesses[0] == result.stats.memory_refs


class TestMarkerSetAccessors:
    def test_points_of_kind(self, micro_binary_list):
        from repro.core.matching import find_mappable_points
        from repro.profiling.callbranch import collect_call_branch_profile

        profiles = [
            (binary, collect_call_branch_profile(binary))
            for binary in micro_binary_list
        ]
        marker_set, _ = find_mappable_points(profiles)
        procs = marker_set.points_of_kind(MarkerKind.PROCEDURE)
        entries = marker_set.points_of_kind(MarkerKind.LOOP_ENTRY)
        branches = marker_set.points_of_kind(MarkerKind.LOOP_BRANCH)
        assert len(procs) + len(entries) + len(branches) == (
            marker_set.n_points
        )
        for point in procs:
            assert point.kind is MarkerKind.PROCEDURE


class TestCLIMarkersFlag:
    def test_regions_with_markers_archive(self, tmp_path, capsys):
        from repro.cli import main
        from repro.pinpoints.markers_io import read_marker_set

        assert main([
            "regions", "art", "--output", str(tmp_path), "--markers",
        ]) == 0
        out = capsys.readouterr().out
        assert "art.markers" in out
        marker_set = read_marker_set(tmp_path / "art.markers")
        assert marker_set.n_points >= 8
        assert len(marker_set.tables) == 4


class TestClusteringChoiceTrace:
    def test_bic_trace_length(self):
        import numpy as np

        from repro.simpoint.select import choose_clustering

        rng = np.random.default_rng(0)
        points = rng.uniform(size=(30, 5))
        choice = choose_clustering(
            points, np.ones(30), max_k=6, seed=0
        )
        assert len(choice.bic_scores) == 6
        assert choice.bic_scores[choice.chosen_index] == (
            choice.bic_scores[choice.k - 1]
        )
