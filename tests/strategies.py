"""Hypothesis strategies generating random (small) IR programs.

The generated programs are structurally arbitrary within bounds —
random procedures, nested loops, calls, kernels with random behaviours
and optimizer eligibility — but always valid (acyclic calls, non-empty
bodies) and small enough that a full execution stays under ~300K
instructions. Property tests run them through the entire pipeline.
"""

from __future__ import annotations

from typing import List

from hypothesis import strategies as st

from repro.programs.behaviors import (
    blocked,
    pointer_chasing,
    random_access,
    stack_local,
    streaming,
)
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    finalize_program,
)

_behaviors = st.one_of(
    st.builds(
        streaming,
        footprint=st.sampled_from((4096, 65536, 1 << 20)),
        refs_per_exec=st.integers(1, 4),
        stride=st.sampled_from((8, 16, 64)),
    ),
    st.builds(
        random_access,
        footprint=st.sampled_from((16384, 262144)),
        refs_per_exec=st.integers(1, 3),
        pointer_fraction=st.sampled_from((0.0, 0.5)),
    ),
    st.builds(
        pointer_chasing,
        footprint=st.sampled_from((32768, 524288)),
        refs_per_exec=st.integers(1, 3),
    ),
    st.builds(
        blocked,
        footprint=st.sampled_from((8192, 131072)),
        refs_per_exec=st.integers(1, 4),
    ),
    st.builds(stack_local, refs_per_exec=st.integers(1, 2)),
)


def _compute(name: str):
    return st.builds(
        lambda instructions, behavior: Compute(
            name, instructions=instructions, behavior=behavior
        ),
        instructions=st.integers(10, 120),
        behavior=_behaviors,
    )


@st.composite
def _leaf_procedure(draw, index: int) -> Procedure:
    """A callable leaf: optionally a loop around 1-2 kernels."""
    name = f"leaf_{index}"
    kernels = draw(
        st.lists(
            st.integers(0, 3), min_size=1, max_size=2
        )
    )
    computes = tuple(
        draw(_compute(f"{name}_c{i}")) for i in range(len(kernels))
    )
    if draw(st.booleans()):
        body = (
            Loop(
                f"{name}_loop",
                trips=draw(st.integers(2, 20)),
                body=computes,
                unrollable=draw(st.booleans()),
                splittable=draw(st.booleans()),
            ),
        )
    else:
        body = computes
    return Procedure(
        name=name, body=body, inlinable=draw(st.booleans())
    )


@st.composite
def programs(draw) -> Program:
    """A random valid program with 1-4 leaves and a structured main."""
    n_leaves = draw(st.integers(1, 4))
    leaves: List[Procedure] = [
        draw(_leaf_procedure(i)) for i in range(n_leaves)
    ]

    main_statements = []
    n_statements = draw(st.integers(1, 4))
    for index in range(n_statements):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            main_statements.append(draw(_compute(f"main_c{index}")))
        elif kind == 1:
            callee = draw(st.integers(0, n_leaves - 1))
            main_statements.append(
                Call(f"main_call{index}", callee=f"leaf_{callee}")
            )
        else:
            inner = []
            for j in range(draw(st.integers(1, 2))):
                if draw(st.booleans()):
                    inner.append(draw(_compute(f"main_l{index}_c{j}")))
                else:
                    callee = draw(st.integers(0, n_leaves - 1))
                    inner.append(
                        Call(f"main_l{index}_call{j}",
                             callee=f"leaf_{callee}")
                    )
            main_statements.append(
                Loop(
                    f"main_loop{index}",
                    trips=draw(st.integers(2, 12)),
                    input_scaled=draw(st.booleans()),
                    body=tuple(inner),
                    unrollable=draw(st.booleans()),
                    splittable=draw(st.booleans()),
                )
            )
    main = Procedure(name="main", body=tuple(main_statements))
    program = Program(
        name="randprog",
        procedures={proc.name: proc for proc in [main] + leaves},
        entry="main",
    )
    return finalize_program(program)
