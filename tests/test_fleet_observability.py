"""Fleet observability: event journal, status folder, sweep reports.

Covers the ``repro.events/v1`` journal (emission, validation, crash
tolerance, the disabled-is-free contract), the event-pairing helpers
that derive queue waits and lease ages, the :mod:`~repro.observability.
status` snapshot behind ``repro top``, the receipt-driven sweep report
behind ``repro report sweep``, the queue-wait quantile drift gate, and
the new CLI surfaces (``top``, ``report sweep``, ``inspect --json``).
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.errors import FileFormatError
from repro.jobs import (
    JobQueue,
    JobReceipt,
    JobResult,
    record_job_metrics,
    register_executor,
    render_sweep_report,
    run_worker,
    sweep_report,
)
from repro.jobs.service import BENCHMARK_JOB_KIND
from repro.observability import metrics
from repro.observability.diff import (
    DriftThresholds,
    check_drift,
    diff_manifests,
    thresholds_from_options,
)
from repro.observability.events import (
    EVENT_SCHEMA,
    EVENTS_ENV,
    EventJournal,
    events_enabled,
    lease_age_samples,
    queue_wait_samples,
    read_events,
    validate_event,
)
from repro.observability.manifest import build_manifest, write_manifest
from repro.observability.status import queue_status, render_status


def _double(payload):
    return JobResult(value=payload["x"] * 2)


def _fail(payload):
    raise ValueError(f"cannot process {payload['x']}")


@dataclasses.dataclass
class _FakeSimpoint:
    k: int = 4


@dataclasses.dataclass
class _FakeCross:
    simpoint: _FakeSimpoint = dataclasses.field(
        default_factory=_FakeSimpoint
    )


class _FakeRun:
    """Just enough of a BenchmarkRun for the report's error columns."""

    def __init__(self):
        self.cross = _FakeCross()

    def average_cpi_error(self, table):
        return {"fli": 0.021, "vli": 0.034}[table]


def _event(name, ts, **fields):
    """A synthetic, schema-valid journal record at a chosen instant."""
    record = {
        "schema": EVENT_SCHEMA,
        "event": name,
        "ts": ts,
        "mono": ts,
        "pid": 1,
    }
    record.update(fields)
    return validate_event(record)


class TestEventJournal:
    def test_emit_roundtrips_and_drops_none_fields(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl")
        written = journal.emit(
            "job.submitted", job_id="j1", kind="double",
            attempt=0, worker=None,
        )
        assert "worker" not in written
        events = read_events(journal.path)
        assert events == [written]
        assert events[0]["schema"] == EVENT_SCHEMA
        assert isinstance(events[0]["ts"], float)
        assert isinstance(events[0]["pid"], int)

    def test_emit_rejects_unknown_event(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl")
        with pytest.raises(FileFormatError, match="unknown event"):
            journal.emit("job.teleported", job_id="j1")
        assert not journal.path.exists()

    @pytest.mark.parametrize(
        "record, match",
        [
            ({"schema": "other/v9"}, "schema"),
            ({"event": "job.vanished"}, "unknown event"),
            ({"ts": "late"}, "ts must be a number"),
            ({"ts": True}, "ts must be a number"),
            ({"pid": -4}, "pid must be a non-negative int"),
            ({"job_id": ""}, "without a job_id"),
            ({"attempt": 1.5}, "attempt must be an int"),
        ],
    )
    def test_validate_rejections(self, record, match):
        base = {
            "schema": EVENT_SCHEMA, "event": "job.submitted",
            "ts": 1.0, "mono": 1.0, "pid": 1, "job_id": "j1",
        }
        base.update(record)
        with pytest.raises(FileFormatError, match=match):
            validate_event(base)

    def test_worker_events_require_a_worker_id(self):
        base = {
            "schema": EVENT_SCHEMA, "event": "worker.started",
            "ts": 1.0, "mono": 1.0, "pid": 1,
        }
        with pytest.raises(FileFormatError, match="without a worker"):
            validate_event(base)

    def test_read_events_missing_file_is_empty(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []

    def test_read_events_skips_blank_and_foreign_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ours = _event("worker.started", 1.0, worker="w0")
        path.write_text(
            "\n".join([
                json.dumps({"schema": "someone-else/v1", "x": 1}),
                "",
                json.dumps(ours),
            ]) + "\n"
        )
        assert read_events(path) == [ours]

    def test_read_events_raises_with_line_number(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps(_event("worker.started", 1.0, worker="w0"))
            + "\n{not json\n"
        )
        with pytest.raises(FileFormatError, match=r":2"):
            read_events(path)

    def test_events_enabled_resolution(self, monkeypatch):
        monkeypatch.delenv(EVENTS_ENV, raising=False)
        assert events_enabled() is False
        assert events_enabled(True) is True
        monkeypatch.setenv(EVENTS_ENV, "1")
        assert events_enabled() is True
        # An explicit decision always beats the environment.
        assert events_enabled(False) is False


class TestEventPairing:
    def test_queue_wait_pairs_claim_with_latest_queueing(self):
        events = [
            _event("job.submitted", 10.0, job_id="a"),
            _event("job.claimed", 12.5, job_id="a"),
            _event("job.reclaimed", 20.0, job_id="a", attempt=1),
            _event("job.claimed", 21.0, job_id="a"),
        ]
        assert queue_wait_samples(events) == [2.5, 1.0]

    def test_queue_wait_ignores_claims_without_queueing(self):
        events = [_event("job.claimed", 5.0, job_id="ghost")]
        assert queue_wait_samples(events) == []

    def test_lease_age_ends_at_receipt_reclaim_or_exhaustion(self):
        events = [
            _event("job.claimed", 10.0, job_id="a"),
            _event("job.reclaimed", 14.0, job_id="a", attempt=1),
            _event("job.claimed", 15.0, job_id="a"),
            _event("job.receipt", 18.5, job_id="a", status="ok"),
            _event("job.receipt", 99.0, job_id="unclaimed", status="ok"),
        ]
        assert lease_age_samples(events) == [4.0, 3.5]


class TestQueueEvents:
    def test_disabled_queue_never_creates_a_journal(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(EVENTS_ENV, raising=False)
        register_executor("double", _double, replace=True)
        queue = JobQueue(tmp_path / "q")
        assert queue.journal is None
        queue.submit("double", {"x": 1})
        run_worker(queue, "w0")
        assert queue.receipts()[0].ok
        assert not queue.events_path.exists()

    def test_lifecycle_events_reconcile_with_receipts(self, tmp_path):
        register_executor("double", _double, replace=True)
        register_executor("fail", _fail, replace=True)
        queue = JobQueue(tmp_path / "q", events=True)
        ids = [
            queue.submit("double", {"x": 1}),
            queue.submit("double", {"x": 2}),
            queue.submit("fail", {"x": 3}),
        ]
        run_worker(queue, "w0", heartbeat_seconds=0.0)

        events = read_events(queue.events_path)
        for event in events:
            validate_event(event)
        names = [event["event"] for event in events]
        assert names.count("job.submitted") == 3
        assert names.count("job.claimed") == 3
        assert names.count("job.started") == 3
        assert names.count("worker.started") == 1
        assert names.count("worker.exited") == 1
        assert "worker.heartbeat" in names

        # Receipt events reconcile exactly with receipts on disk: no
        # missing and no duplicate job ids, matching statuses.
        receipt_events = sorted(
            (e["job_id"], e["status"])
            for e in events
            if e["event"] == "job.receipt"
        )
        on_disk = sorted(
            (r.job_id, r.status) for r in queue.receipts()
        )
        assert receipt_events == on_disk
        claimed = {
            e["job_id"] for e in events if e["event"] == "job.claimed"
        }
        assert claimed == set(ids)

    def test_reclaim_and_exhaustion_events(self, tmp_path):
        queue = JobQueue(
            tmp_path / "q", lease_seconds=60.0, max_attempts=2,
            events=True,
        )
        job_id = queue.submit("double", {"x": 1})
        for _ in range(2):
            if queue.pending_ids():
                queue.claim("w")
            lease = queue.active_dir / f"{job_id}.json"
            record = json.loads(lease.read_text())
            record["lease_expires_at"] = 0.0
            lease.write_text(json.dumps(record))
            queue.reclaim_expired()
        names = [e["event"] for e in read_events(queue.events_path)]
        assert names.count("job.reclaimed") == 1
        assert names.count("job.exhausted") == 1
        # The exhausted receipt is journaled like any other receipt.
        assert names.count("job.receipt") == 1
        assert queue.receipt(job_id).status == "exhausted"


class TestQueueStatus:
    def test_folds_queue_receipts_and_journal(self, tmp_path):
        register_executor("double", _double, replace=True)
        queue = JobQueue(tmp_path / "q", events=True)
        queue.submit("double", {"x": 1})
        queue.submit("double", {"x": 2})
        run_worker(queue, "w0")
        queue.submit("double", {"x": 3})  # left pending
        status = queue_status(queue)
        assert status.pending == 1
        assert not status.drained
        assert status.receipts == {"ok": 2, "failed": 0, "exhausted": 0}
        assert status.failure_rate == 0.0
        assert status.execution.count == 2
        assert status.queue_wait.count == 2
        assert status.lease_age.count == 2
        assert status.eta_seconds is not None and status.eta_seconds > 0
        [worker] = status.workers
        assert worker.worker == "w0" and worker.state == "exited"
        assert worker.executed == 2
        payload = status.to_payload()
        assert payload == json.loads(json.dumps(payload))
        assert payload["drained"] is False
        assert payload["histograms"]["execution_seconds"]["count"] == 2

    def test_active_lease_and_worker_liveness(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_seconds=300.0, events=True)
        queue.submit("double", {"x": 1})
        record = queue.claim("w0")
        queue.emit("worker.started", worker="w0")
        status = queue_status(queue, stale_after=1e6)
        [lease] = status.active
        assert lease.job_id == record["id"]
        assert lease.worker == "w0"
        assert lease.age_seconds is not None and lease.age_seconds >= 0
        assert lease.expires_in_seconds is not None
        assert lease.expires_in_seconds == pytest.approx(300.0, abs=30)
        [worker] = status.workers
        assert worker.state == "live"
        # Long after its last sign of life, a non-exited worker reads
        # as stale — the SIGKILL signature.
        later = queue_status(queue, now=record["leased_at"] + 1e4)
        assert later.workers[0].state == "stale"

    def test_empty_queue_renders_drained(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        status = queue_status(queue)
        assert status.drained and status.eta_seconds == 0.0
        frame = render_status(status)
        assert "DRAINED" in frame and "(no samples)" in frame


class TestSweepReport:
    def _cell(self, queue, size, benchmark="art"):
        return queue.submit(
            BENCHMARK_JOB_KIND,
            {"benchmark": benchmark, "config": {"interval_size": size}},
        )

    def test_joins_spool_receipts_and_artifacts(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        done = self._cell(queue, 10_000)
        failed = self._cell(queue, 20_000)
        active = self._cell(queue, 30_000)
        pending = self._cell(queue, 40_000)

        queue.store_artifact(done, _FakeRun())
        queue.write_receipt(JobReceipt(
            job_id=done, kind=BENCHMARK_JOB_KIND, status="ok",
            attempt=1, worker="w0", seconds=2.0,
        ))
        queue.write_receipt(JobReceipt(
            job_id=failed, kind=BENCHMARK_JOB_KIND, status="failed",
            attempt=1, worker="w1", seconds=0.5,
            error="ValueError: boom",
        ))
        # Claim until the 30k cell holds the lease; requeue the rest.
        while True:
            record = queue.claim("w2")
            if record["id"] == active:
                break
            queue.release(record["id"])
            queue._write_pending(record)

        report = sweep_report(queue)
        assert [row.interval_size for row in report.rows] == [
            10_000, 20_000, 30_000, 40_000,
        ]
        by_size = {row.interval_size: row for row in report.rows}
        assert by_size[10_000].status == "ok"
        assert by_size[10_000].k == 4
        assert by_size[10_000].fli_cpi_error == pytest.approx(0.021)
        assert by_size[10_000].vli_cpi_error == pytest.approx(0.034)
        assert by_size[20_000].status == "failed"
        assert by_size[20_000].error == "ValueError: boom"
        assert by_size[30_000].status == "active"
        assert by_size[40_000].status == "pending"
        assert report.total == 4 and report.completed == 1
        assert report.mean_seconds == pytest.approx(2.0)
        # 2 unfinished cells (active + pending) x 2.0s mean.
        assert report.remaining_seconds == pytest.approx(4.0)
        assert report.to_payload() == json.loads(
            json.dumps(report.to_payload())
        )
        del pending

    def test_no_errors_skips_artifact_loads(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        done = self._cell(queue, 10_000)
        queue.write_receipt(JobReceipt(
            job_id=done, kind=BENCHMARK_JOB_KIND, status="ok",
            attempt=1, seconds=1.0,
        ))
        [row] = sweep_report(queue, load_errors=False).rows
        assert row.status == "ok" and row.k is None

    def test_benchmark_filter_and_render(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        self._cell(queue, 10_000, benchmark="art")
        self._cell(queue, 10_000, benchmark="gcc")
        report = sweep_report(queue, "gcc", load_errors=False)
        assert [row.benchmark for row in report.rows] == ["gcc"]
        text = render_sweep_report(report)
        assert "0/1 cells ok" in text and "gcc" in text


class TestQueueWaitDriftGate:
    def _manifest(self, p95):
        with metrics.scoped_registry() as local:
            histogram = metrics.histogram("jobs.queue_wait_seconds")
            histogram.observe(p95)
            snapshot = local.snapshot()
        return build_manifest(
            total_seconds=1.0,
            stages={"sweep": 1.0},
            metrics_snapshot=snapshot,
            clusterings={},
            errors={},
            config_fingerprint="abc123",
            command=["summary", "art"],
        )

    def test_ceiling_trips_and_passes(self):
        diff = diff_manifests(self._manifest(0.01), self._manifest(5.0))
        violations = check_drift(
            diff, DriftThresholds(max_queue_wait_p95=1.0)
        )
        assert [v.kind for v in violations] == ["reliability"]
        assert "p95 queue wait" in violations[0].message
        assert not check_drift(
            diff, DriftThresholds(max_queue_wait_p95=60.0)
        )
        # Off by default: the same diff is clean without the ceiling.
        assert not check_drift(diff)

    def test_absent_histogram_is_not_a_violation(self):
        manifest = build_manifest(
            total_seconds=1.0, stages={}, metrics_snapshot={},
            clusterings={}, errors={}, config_fingerprint="abc123",
            command=[],
        )
        diff = diff_manifests(manifest, manifest)
        assert not check_drift(
            diff, DriftThresholds(max_queue_wait_p95=0.001)
        )

    def test_threshold_flag_maps_from_options(self):
        limits = thresholds_from_options(
            {"max_queue_wait_p95": 0.5, "unrelated": 9}
        )
        assert limits.max_queue_wait_p95 == 0.5
        assert thresholds_from_options({}).max_queue_wait_p95 is None


class TestJobMetricsHistograms:
    def test_record_job_metrics_folds_fleet_histograms(self, tmp_path):
        register_executor("double", _double, replace=True)
        queue = JobQueue(tmp_path / "q", events=True)
        ids = [queue.submit("double", {"x": n}) for n in (1, 2)]
        run_worker(queue, "w0")
        with metrics.scoped_registry() as local:
            record_job_metrics(queue, ids)
            snapshot = local.snapshot()
        histograms = snapshot["histograms"]
        assert histograms["jobs.execution_seconds"]["count"] == 2
        assert histograms["jobs.queue_wait_seconds"]["count"] == 2
        assert histograms["jobs.lease_age_seconds"]["count"] == 2

    def test_without_journal_only_execution_seconds(self, tmp_path):
        register_executor("double", _double, replace=True)
        queue = JobQueue(tmp_path / "q", events=False)
        ids = [queue.submit("double", {"x": 9})]
        run_worker(queue, "w0")
        with metrics.scoped_registry() as local:
            record_job_metrics(queue, ids)
            snapshot = local.snapshot()
        histograms = snapshot["histograms"]
        assert histograms["jobs.execution_seconds"]["count"] == 1
        assert "jobs.queue_wait_seconds" not in histograms


class TestCliSurfaces:
    def test_top_once_json(self, tmp_path, capsys):
        register_executor("double", _double, replace=True)
        queue = JobQueue(tmp_path / "q", events=True)
        queue.submit("double", {"x": 1})
        run_worker(queue, "w0")
        assert main([
            "top", "--queue", str(tmp_path / "q"), "--once", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["drained"] is True
        assert payload["receipts"]["ok"] == 1
        assert payload["events"] > 0

    def test_top_once_frame(self, tmp_path, capsys):
        assert main([
            "top", "--queue", str(tmp_path / "q"), "--once",
        ]) == 0
        assert "DRAINED" in capsys.readouterr().out

    def test_report_sweep_json_and_table(self, tmp_path, capsys):
        queue = JobQueue(tmp_path / "q")
        queue.submit(
            BENCHMARK_JOB_KIND,
            {"benchmark": "art", "config": {"interval_size": 10_000}},
        )
        assert main([
            "report", "sweep", "--queue", str(tmp_path / "q"), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 1 and payload["completed"] == 0
        assert main([
            "report", "sweep", "--queue", str(tmp_path / "q"),
        ]) == 0
        assert "0/1 cells ok" in capsys.readouterr().out

    def test_inspect_json_roundtrips_manifest(self, tmp_path, capsys):
        manifest = build_manifest(
            total_seconds=1.0, stages={"profile": 1.0},
            metrics_snapshot={}, clusterings={}, errors={},
            config_fingerprint="abc123", command=["summary"],
        )
        path = write_manifest(tmp_path / "manifest.json", manifest)
        assert main(["inspect", str(path), "--json"]) == 0
        emitted = json.loads(capsys.readouterr().out)
        assert emitted == json.loads(json.dumps(manifest))

    def test_events_flag_enables_the_journal(self, tmp_path, capsys):
        register_executor("double", _double, replace=True)
        queue = JobQueue(tmp_path / "q", events=True)
        queue.submit("double", {"x": 1})
        run_worker(queue, "w0")
        # A later CLI call against the same queue reads the journal
        # even without --events (reading never requires emission).
        assert main([
            "top", "--queue", str(tmp_path / "q"), "--once", "--json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["events"] > 0
