"""Property tests for the metric-merge algebra and manifest upgrade.

The cross-process aggregation in ``parallel_map`` relies on
``Registry.merge`` being a proper monoid fold for counters and
bucketed histograms: merging worker snapshots must give the same
totals regardless of grouping (associativity) and task partitioning
(order-insensitivity). Gauges are deliberately excluded — they are
last-write-wins by design, which is why ``parallel_map`` pins their
merge order to task-index order instead.

Floating-point histogram sums are only approximately associative, so
sums compare with ``math.isclose`` while counts, buckets, and extremes
compare exactly.
"""

import json
import math

from hypothesis import given, settings, strategies as st

from repro.observability.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    build_manifest,
    upgrade_manifest,
    validate_manifest,
)
from repro.observability.metrics import Histogram, Registry

_values = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

_snapshots = st.builds(
    lambda counters, observations: _snapshot(counters, observations),
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=0, max_value=1000),
        max_size=3,
    ),
    st.dictionaries(
        st.sampled_from(["h1", "h2"]),
        st.lists(_values, max_size=8),
        max_size=2,
    ),
)


def _snapshot(counters, observations):
    registry = Registry()
    for name, value in counters.items():
        registry.counter(name).inc(value)
    for name, values in observations.items():
        for value in values:
            registry.histogram(name).observe(value)
    return registry.snapshot()


def _merged(snapshots):
    registry = Registry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry


def _assert_equivalent(left: Registry, right: Registry):
    left_snap, right_snap = left.snapshot(), right.snapshot()
    assert left_snap["counters"] == right_snap["counters"]
    assert set(left_snap["histograms"]) == set(right_snap["histograms"])
    for name, summary in left_snap["histograms"].items():
        other = right_snap["histograms"][name]
        assert summary["count"] == other["count"]
        assert summary["buckets"] == other["buckets"]
        assert summary["min"] == other["min"]
        assert summary["max"] == other["max"]
        assert math.isclose(
            summary["sum"], other["sum"], rel_tol=1e-9, abs_tol=1e-6
        )


class TestMergeAlgebra:
    @given(_snapshots, _snapshots, _snapshots)
    @settings(deadline=None, max_examples=60)
    def test_merge_is_associative(self, a, b, c):
        left_first = _merged([a, b])
        left = _merged([left_first.snapshot(), c])
        right_rest = _merged([b, c])
        right = _merged([a, right_rest.snapshot()])
        _assert_equivalent(left, right)

    @given(
        st.lists(_snapshots, min_size=2, max_size=5),
        st.randoms(use_true_random=False),
    )
    @settings(deadline=None, max_examples=60)
    def test_merge_is_order_insensitive(self, snapshots, rng):
        shuffled = list(snapshots)
        rng.shuffle(shuffled)
        _assert_equivalent(_merged(snapshots), _merged(shuffled))

    @given(st.lists(_values, min_size=1, max_size=30))
    @settings(deadline=None, max_examples=60)
    def test_split_merge_matches_direct_observation(self, values):
        direct = Histogram()
        for value in values:
            direct.observe(value)
        half = len(values) // 2
        registry = Registry()
        registry.merge(_snapshot({}, {"h": values[:half]}))
        registry.merge(_snapshot({}, {"h": values[half:]}))
        merged = registry.histogram("h")
        assert merged.count == direct.count
        assert merged.buckets == direct.buckets
        assert merged.min == direct.min
        assert merged.max == direct.max
        assert math.isclose(
            merged.total, direct.total, rel_tol=1e-9, abs_tol=1e-6
        )
        # Quantiles are a pure function of the merged state.
        assert merged.quantile(0.5) == direct.quantile(0.5)

    @given(st.lists(_values, min_size=1, max_size=50))
    @settings(deadline=None, max_examples=60)
    def test_quantiles_bounded_by_observations(self, values):
        instrument = Histogram()
        for value in values:
            instrument.observe(value)
        for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
            estimate = instrument.quantile(q)
            assert min(values) <= estimate <= max(values)


def _v1_manifest():
    manifest = build_manifest(
        total_seconds=1.5,
        stages={"profile": 0.4, "cluster": 1.0},
        metrics_snapshot=_snapshot(
            {"simpoint.kmeans_runs": 10}, {"h": [0.5, 2.0]}
        ),
        clusterings={"art/32u": {"k": 3, "bic_scores": [1.0, 2.0, 3.0]}},
        errors={"art/32u": {"fli_cpi_error": 0.02}},
        config_fingerprint="fp",
        command=["summary", "art"],
    )
    # Strip the v2 additions to produce a faithful v1 document.
    manifest["schema"] = MANIFEST_SCHEMA_V1
    del manifest["run_id"]
    del manifest["bias"]
    for summary in manifest["metrics"]["histograms"].values():
        del summary["buckets"]
    return manifest


class TestManifestUpgrade:
    def test_v1_round_trips_to_valid_v2(self):
        v1 = _v1_manifest()
        upgraded = upgrade_manifest(json.loads(json.dumps(v1)))
        validate_manifest(upgraded)
        assert upgraded["schema"] == MANIFEST_SCHEMA
        assert upgraded["run_id"].startswith("v1-")
        assert upgraded["bias"] == {}
        # Histograms gain (empty) bucket tables.
        for summary in upgraded["metrics"]["histograms"].values():
            assert summary["buckets"] == {}
        # Everything the v1 document said is preserved verbatim.
        for key, value in v1.items():
            if key in ("schema", "metrics"):
                continue
            assert upgraded[key] == value
        assert (
            upgraded["metrics"]["counters"] == v1["metrics"]["counters"]
        )

    def test_upgrade_is_deterministic_and_idempotent(self):
        v1 = _v1_manifest()
        first = upgrade_manifest(json.loads(json.dumps(v1)))
        second = upgrade_manifest(json.loads(json.dumps(v1)))
        assert first["run_id"] == second["run_id"]
        assert upgrade_manifest(first) is first  # v2 passes through

    def test_v2_document_unchanged_by_upgrader(self):
        manifest = build_manifest(
            total_seconds=1.0,
            stages={"a": 1.0},
            metrics_snapshot=Registry().snapshot(),
        )
        assert upgrade_manifest(manifest) is manifest
