"""Edge-case tests for experiments: figures validation, runner guards,
reporting grids."""

import pytest

from repro.errors import SimulationError
from repro.experiments.figures import FigureData
from repro.experiments.reporting import _render_grid, render_figure
from repro.experiments.runner import run_benchmark


class TestFigureDataValidation:
    def test_mismatched_series_rejected(self):
        with pytest.raises(SimulationError, match="values for"):
            FigureData(
                figure="f",
                title="t",
                unit="u",
                benchmarks=("a", "b"),
                series={"S": (1.0,)},
            )

    def test_value_lookup(self):
        data = FigureData(
            figure="f", title="t", unit="u",
            benchmarks=("a", "b"), series={"S": (1.0, 2.0)},
        )
        assert data.value("S", "b") == 2.0
        with pytest.raises(ValueError):
            data.value("S", "missing")

    def test_average(self):
        data = FigureData(
            figure="f", title="t", unit="u",
            benchmarks=("a", "b"), series={"S": (1.0, 3.0)},
        )
        assert data.average("S") == 2.0

    def test_unknown_series(self):
        data = FigureData(
            figure="f", title="t", unit="u",
            benchmarks=("a",), series={"S": (1.0,)},
        )
        with pytest.raises(KeyError):
            data.average("missing")


class TestRunnerGuards:
    def test_average_cpi_error_unknown_method(self):
        run = run_benchmark("art")
        with pytest.raises(SimulationError, match="unknown method"):
            run.average_cpi_error("magic")

    def test_unknown_benchmark_propagates(self):
        from repro.errors import ProgramError

        with pytest.raises(ProgramError):
            run_benchmark("not-a-benchmark")

    def test_cache_key_stability(self):
        from repro.experiments.runner import ExperimentConfig

        assert (
            ExperimentConfig().cache_key() == ExperimentConfig().cache_key()
        )
        small = ExperimentConfig(interval_size=50_000)
        assert small.cache_key() != ExperimentConfig().cache_key()


class TestReportingGrid:
    def test_alignment(self):
        grid = _render_grid(
            ["name", "value"],
            [["x", "1"], ["longer", "22"]],
        )
        lines = grid.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_render_figure_precision(self):
        data = FigureData(
            figure="f", title="Title", unit="u",
            benchmarks=("a",), series={"S": (1.23456,)},
        )
        assert "1.2" in render_figure(data, precision=1)
        assert "1.235" in render_figure(data, precision=3)
