"""Tests for repro.experiments.validation."""

import pytest

from repro.experiments.runner import run_suite
from repro.experiments.validation import (
    ClaimResult,
    Verdict,
    render_validation,
    validate_reproduction,
)


@pytest.fixture(scope="module")
def art_only_runs():
    return run_suite(["art"])


class TestValidation:
    def test_all_claims_evaluated(self, art_only_runs):
        results = validate_reproduction(art_only_runs)
        claims = [result.claim for result in results]
        assert claims == [
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "table2", "table3",
        ]

    def test_benchmark_specific_claims_skip(self, art_only_runs):
        """Without applu/gcc/apsi, their claims skip rather than fail."""
        results = {
            result.claim: result
            for result in validate_reproduction(art_only_runs)
        }
        assert results["figure2"].verdict is Verdict.SKIP
        assert results["table2"].verdict is Verdict.SKIP
        assert results["table3"].verdict is Verdict.SKIP

    def test_generic_claims_evaluated_on_subset(self, art_only_runs):
        results = {
            result.claim: result
            for result in validate_reproduction(art_only_runs)
        }
        assert results["figure1"].verdict in (Verdict.PASS, Verdict.FAIL)
        assert results["figure3"].verdict in (Verdict.PASS, Verdict.FAIL)

    def test_render_contains_verdicts_and_counts(self, art_only_runs):
        results = validate_reproduction(art_only_runs)
        text = render_validation(results)
        assert "reproduction validation" in text
        assert "skipped" in text
        for result in results:
            assert result.claim in text
            assert result.verdict.value in text

    def test_cli_validate_subset(self, capsys):
        from repro.cli import main

        code = main(["validate", "--benchmarks", "art"])
        out = capsys.readouterr().out
        assert "reproduction validation" in out
        # A subset run must never FAIL benchmark-specific claims.
        assert "[FAIL] figure2" not in out
        assert code in (0, 1)

    def test_claim_result_immutable(self):
        result = ClaimResult("c", "d", Verdict.PASS, "x")
        with pytest.raises(AttributeError):
            result.verdict = Verdict.FAIL
