"""Tests for process-pool fan-out: determinism, fallback, propagation."""

import concurrent.futures
import os
import signal

import pytest

from repro.core.pipeline import (
    CrossBinaryConfig,
    run_cross_binary_simpoint,
    run_per_binary_simpoints,
)
from repro.errors import ReproError, SimulationError
from repro.observability import metrics
from repro.runtime import parallel_map, runtime_session
from repro.runtime import parallel
from repro.simpoint.simpoint import SimPointConfig

from tests.conftest import MICRO_INTERVAL

#: Fast clustering settings for the pipeline-equivalence tests.
_FAST_SIMPOINT = SimPointConfig(max_k=4, n_init=2)


def _square(value):
    return value * value


def _worker_pid(_value):
    return os.getpid()


def _raise_repro_error(value):
    raise SimulationError(f"worker failed on {value}")


def _raise_value_error(value):
    raise ValueError(f"worker failed on {value}")


def _die_on_two(value):
    # Task 2 only runs after a worker finished task 0 or 1, so the
    # pool always breaks with at least one success in hand.
    if value == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 10


def _die_in_worker(value):
    # Kills every pool worker but is harmless in the main process, so
    # the serial fallback after a zero-success pool run can finish.
    if parallel._in_worker:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 10


def _nested_fanout(value):
    # A worker fanning out again must degrade to a serial loop rather
    # than spawning a pool inside the pool.
    return parallel_map(_square, [value, value + 1], jobs=4)


def _square_with_metrics(value):
    # Custom metrics recorded inside the task, so pooled and
    # serial-fallback runs can be compared snapshot-for-snapshot.
    metrics.counter("task.calls").inc()
    metrics.gauge("task.last_value").set(float(value))
    metrics.histogram("task.value").observe(float(value))
    return value * value


class TestParallelMap:
    def test_results_in_input_order(self):
        items = list(range(32))
        assert parallel_map(_square, items, jobs=4) == [
            i * i for i in items
        ]

    def test_serial_when_jobs_is_one(self):
        pids = parallel_map(_worker_pid, range(4), jobs=1)
        assert set(pids) == {os.getpid()}

    def test_parallel_uses_worker_processes(self):
        pids = parallel_map(_worker_pid, range(16), jobs=4)
        assert os.getpid() not in pids

    def test_repro_jobs_env_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        pids = parallel_map(_worker_pid, range(4))
        assert set(pids) == {os.getpid()}

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        pids = parallel_map(_worker_pid, range(4))
        assert set(pids) == {os.getpid()}

    def test_session_default_jobs_used(self):
        with runtime_session(jobs=2):
            pids = parallel_map(_worker_pid, range(8))
        assert os.getpid() not in pids

    def test_single_item_runs_in_process(self):
        assert parallel_map(_worker_pid, [0], jobs=8) == [os.getpid()]

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_repro_error_propagates_from_worker(self):
        with pytest.raises(SimulationError, match="worker failed on"):
            parallel_map(_raise_repro_error, range(4), jobs=2)
        assert issubclass(SimulationError, ReproError)

    def test_other_exceptions_propagate_from_worker(self):
        with pytest.raises(ValueError, match="worker failed on"):
            parallel_map(_raise_value_error, range(4), jobs=2)

    def test_exceptions_propagate_serially(self):
        with pytest.raises(SimulationError):
            parallel_map(_raise_repro_error, range(4), jobs=1)

    def test_nested_fanout_degrades_to_serial(self):
        results = parallel_map(_nested_fanout, [1, 10], jobs=2)
        assert results == [[1, 4], [100, 121]]


class TestBrokenPoolHandling:
    """Regression: a worker dying mid-run used to be silently retried
    serially — including its side effects — masquerading as the
    startup-failure fallback. Now only genuine startup failures fall
    back; a mid-run death with work already done is an error naming
    the task that killed the pool."""

    def test_midrun_worker_death_raises_and_names_the_task(self):
        # Which task number gets blamed depends on pool scheduling
        # (the doomed task can be claimed before or after its
        # neighbors complete); the invariant is that a mid-run death
        # raises and names *a* task instead of falling back silently.
        with pytest.raises(
            ReproError,
            match=r"worker process died while running task \d+/6",
        ):
            parallel_map(_die_on_two, range(6), jobs=2)

    def test_pool_startup_failure_falls_back_to_serial(self, monkeypatch):
        def _no_pool(*args, **kwargs):
            raise OSError("process spawn forbidden")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _no_pool
        )
        with metrics.scoped_registry() as local:
            results = parallel_map(_square, range(6), jobs=2)
        assert results == [i * i for i in range(6)]
        assert local.snapshot()["counters"]["parallel.pool_fallback"] == 1

    def test_zero_successes_still_falls_back_to_serial(self):
        """All workers dying before any task completes is
        indistinguishable from a pool that never started — fall back
        serially (in the main process, where the fn is harmless)."""
        with metrics.scoped_registry() as local:
            results = parallel_map(_die_in_worker, range(4), jobs=2)
        assert results == [i * 10 for i in range(4)]
        assert local.snapshot()["counters"]["parallel.pool_fallback"] == 1


class TestFallbackMetricsParity:
    """The serial fallback must merge task metrics exactly like the
    pooled path: counters and histogram buckets are additive (so
    totals match regardless of which worker — or no worker — ran each
    task), and gauges resolve to the last *snapshot-order* write, which
    for ``parallel_map`` is input order on both paths."""

    def _run(self, broken, monkeypatch):
        if broken:
            def _no_pool(*args, **kwargs):
                raise OSError("process spawn forbidden")

            monkeypatch.setattr(
                concurrent.futures, "ProcessPoolExecutor", _no_pool
            )
        with metrics.scoped_registry() as local:
            results = parallel_map(_square_with_metrics, range(8), jobs=2)
        assert results == [i * i for i in range(8)]
        return local.snapshot()

    def test_custom_metrics_identical_to_pooled_path(self, monkeypatch):
        pooled = self._run(False, monkeypatch)
        fallback = self._run(True, monkeypatch)
        assert fallback["counters"]["parallel.pool_fallback"] == 1
        assert "parallel.pool_fallback" not in pooled["counters"]
        assert (
            pooled["counters"]["task.calls"]
            == fallback["counters"]["task.calls"]
            == 8
        )
        # Gauge merge order follows task order, not completion order:
        # the last task's write wins on both paths.
        assert (
            pooled["gauges"]["task.last_value"]
            == fallback["gauges"]["task.last_value"]
            == 7.0
        )
        # Bucket counts are exact and order-insensitive, so the whole
        # distribution — not just the moments — must line up.
        assert (
            pooled["histograms"]["task.value"]["buckets"]
            == fallback["histograms"]["task.value"]["buckets"]
        )
        assert (
            pooled["histograms"]["task.value"]["count"]
            == fallback["histograms"]["task.value"]["count"]
            == 8
        )


class TestPipelineParallelEquivalence:
    def test_cross_pipeline_bit_identical(self, micro_binary_list):
        config = CrossBinaryConfig(
            interval_size=MICRO_INTERVAL, simpoint=_FAST_SIMPOINT
        )
        serial = run_cross_binary_simpoint(micro_binary_list, config)
        fanned = run_cross_binary_simpoint(
            micro_binary_list, config, jobs=2
        )
        assert serial == fanned

    def test_cross_pipeline_env_jobs(self, micro_binary_list,
                                     monkeypatch):
        config = CrossBinaryConfig(
            interval_size=MICRO_INTERVAL, simpoint=_FAST_SIMPOINT
        )
        serial = run_cross_binary_simpoint(micro_binary_list, config)
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert run_cross_binary_simpoint(micro_binary_list, config) == serial

    def test_per_binary_simpoints_bit_identical(self, micro_binary_list):
        serial = run_per_binary_simpoints(
            micro_binary_list, MICRO_INTERVAL, _FAST_SIMPOINT
        )
        fanned = run_per_binary_simpoints(
            micro_binary_list, MICRO_INTERVAL, _FAST_SIMPOINT, jobs=2
        )
        assert list(serial) == [b.name for b in micro_binary_list]
        assert list(fanned) == list(serial)
        assert fanned == serial


class TestExperimentRunnerParallel:
    def test_run_benchmark_bit_identical(self):
        from repro.experiments import runner

        saved = dict(runner._CACHE)
        try:
            runner.clear_cache()
            serial = runner.run_benchmark("art")
            runner.clear_cache()
            fanned = runner.run_benchmark("art", jobs=2)
            assert serial == fanned
        finally:
            runner._CACHE.clear()
            runner._CACHE.update(saved)

    def test_run_suite_parallel_matches_serial(self):
        from repro.experiments import runner

        saved = dict(runner._CACHE)
        try:
            runner.clear_cache()
            serial = runner.run_suite(["art"])
            runner.clear_cache()
            fanned = runner.run_suite(["art"], jobs=2)
            assert list(fanned) == ["art"]
            assert fanned == serial
        finally:
            runner._CACHE.clear()
            runner._CACHE.update(saved)
