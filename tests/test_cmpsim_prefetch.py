"""Tests for the next-line prefetcher and the design-space configs."""

import pytest

from repro.cmpsim.config import (
    BIG_LLC_CONFIG,
    PREFETCH_CONFIG,
    TABLE1_CONFIG,
)
from repro.cmpsim.hierarchy import AccessResult, MemoryHierarchy
from repro.cmpsim.simulator import CMPSim


class TestDesignSpaceConfigs:
    def test_table1_has_no_prefetch(self):
        assert not TABLE1_CONFIG.next_line_prefetch

    def test_prefetch_config_shares_geometry_with_table1(self):
        assert PREFETCH_CONFIG.levels == TABLE1_CONFIG.levels
        assert PREFETCH_CONFIG.next_line_prefetch

    def test_big_llc_is_bigger(self):
        assert (
            BIG_LLC_CONFIG.levels[2].capacity
            > TABLE1_CONFIG.levels[2].capacity
        )


class TestNextLinePrefetch:
    def test_miss_triggers_prefetch(self):
        hierarchy = MemoryHierarchy(PREFETCH_CONFIG)
        hierarchy.access(100, write=False)  # miss everywhere
        assert hierarchy.prefetches == 1
        # line 101 was pulled into L2/L3 but not L1.
        assert not hierarchy.caches[0].contains(101)
        assert hierarchy.caches[1].contains(101)
        assert hierarchy.caches[2].contains(101)

    def test_prefetched_line_hits_l2(self):
        hierarchy = MemoryHierarchy(PREFETCH_CONFIG)
        hierarchy.access(100, write=False)
        assert hierarchy.access(101, write=False) == AccessResult.L2

    def test_l1_hit_does_not_prefetch(self):
        hierarchy = MemoryHierarchy(PREFETCH_CONFIG)
        hierarchy.access(100, write=False)
        before = hierarchy.prefetches
        hierarchy.access(100, write=False)  # L1 hit
        assert hierarchy.prefetches == before

    def test_disabled_by_default(self):
        hierarchy = MemoryHierarchy(TABLE1_CONFIG)
        hierarchy.access(100, write=False)
        assert hierarchy.prefetches == 0
        assert not hierarchy.caches[1].contains(101)

    def test_prefetch_counts_no_demand_accesses(self):
        hierarchy = MemoryHierarchy(PREFETCH_CONFIG)
        hierarchy.access(100, write=False)
        # L2 saw one demand access (the miss path), not two.
        assert hierarchy.caches[1].stats.accesses == 1

    def test_streaming_benefits_from_prefetch(self):
        """A forward sweep: with prefetch, most accesses hit in L2."""
        plain = MemoryHierarchy(TABLE1_CONFIG)
        prefetching = MemoryHierarchy(PREFETCH_CONFIG)
        lines = range(100_000, 104_096)  # beyond any cache, no reuse
        plain_penalty = sum(1 for l in lines
                            if plain.access(l, False) == AccessResult.DRAM)
        prefetch_penalty = sum(
            1 for l in lines
            if prefetching.access(l, False) == AccessResult.DRAM
        )
        assert prefetch_penalty < 0.1 * plain_penalty

    def test_simulator_cpi_improves_on_streaming_benchmark(self):
        """End to end: swim (streaming) runs faster with the prefetcher."""
        from repro.compilation.compiler import compile_standard_binaries
        from repro.compilation.targets import TARGET_32O
        from repro.programs.suite import build_benchmark

        binary = compile_standard_binaries(
            build_benchmark("swim"), (TARGET_32O,)
        )[TARGET_32O]
        base = CMPSim(binary, TABLE1_CONFIG).run_full().stats
        fast = CMPSim(binary, PREFETCH_CONFIG).run_full().stats
        assert fast.cycles < base.cycles
        assert fast.instructions == base.instructions
