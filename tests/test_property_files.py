"""Property tests for the PinPoints file formats."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import MappedSimulationPoint
from repro.pinpoints.files import (
    read_regions,
    read_simpoints,
    read_weights,
    write_regions,
    write_simpoints,
    write_weights,
)
from repro.simpoint.simpoint import SimPointResult, SimulationPoint

_coords = st.one_of(
    st.none(),
    st.tuples(st.integers(0, 10_000), st.integers(1, 10**9)),
)

_points = st.lists(
    st.builds(
        MappedSimulationPoint,
        cluster=st.integers(0, 50),
        interval_index=st.integers(0, 10_000),
        start=_coords,
        end=_coords,
        primary_weight=st.floats(
            min_value=0.0, max_value=1.0,
            allow_nan=False, allow_infinity=False,
        ),
    ),
    min_size=0,
    max_size=20,
)


class TestRegionsRoundtrip:
    @settings(deadline=None, max_examples=50)
    @given(points=_points)
    def test_roundtrip_exact(self, points, tmp_path_factory):
        path = tmp_path_factory.mktemp("regions") / "r.regions"
        write_regions(path, points)
        assert read_regions(path) == points


def _simpoint_result(pairs, weights):
    points = tuple(
        SimulationPoint(cluster=c, interval_index=i, weight=w)
        for (i, c), w in zip(pairs, weights)
    )
    return SimPointResult(
        points=points,
        labels=(0,),
        k=max((c for _, c in pairs), default=0) + 1,
        bic_scores=(0.0,),
        interval_instructions=(1,),
    )


class TestSimpointsWeightsRoundtrip:
    @settings(deadline=None, max_examples=50)
    @given(
        data=st.lists(
            st.tuples(
                st.tuples(st.integers(0, 10**6), st.integers(0, 40)),
                st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_roundtrip(self, data, tmp_path_factory):
        pairs = [pair for pair, _ in data]
        weights = [weight for _, weight in data]
        result = _simpoint_result(pairs, weights)
        directory = tmp_path_factory.mktemp("sp")
        sp_path = directory / "x.simpoints"
        w_path = directory / "x.weights"
        write_simpoints(sp_path, result)
        write_weights(w_path, result)
        assert read_simpoints(sp_path) == pairs
        loaded = read_weights(w_path)
        for (weight, cluster), (pair, original) in zip(loaded, data):
            assert cluster == pair[1]
            assert weight == pytest.approx(original, abs=1e-9)
