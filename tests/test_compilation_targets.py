"""Tests for repro.compilation.targets."""

import pytest

from repro.compilation.targets import (
    ISA,
    OptLevel,
    STANDARD_TARGETS,
    TARGET_32O,
    TARGET_32U,
    TARGET_64O,
    TARGET_64U,
    Target,
    target_by_label,
)


class TestISA:
    def test_pointer_widths(self):
        assert ISA.X86_32.pointer_bytes == 4
        assert ISA.X86_64.pointer_bytes == 8

    def test_short_labels(self):
        assert ISA.X86_32.short_label == "32"
        assert ISA.X86_64.short_label == "64"


class TestTarget:
    def test_paper_labels(self):
        assert TARGET_32U.label == "32u"
        assert TARGET_32O.label == "32o"
        assert TARGET_64U.label == "64u"
        assert TARGET_64O.label == "64o"

    def test_optimized_flag(self):
        assert TARGET_32O.optimized
        assert not TARGET_32U.optimized

    def test_str_is_label(self):
        assert str(TARGET_64O) == "64o"

    def test_targets_are_hashable_and_distinct(self):
        assert len(set(STANDARD_TARGETS)) == 4

    def test_standard_order_matches_paper(self):
        labels = [target.label for target in STANDARD_TARGETS]
        assert labels == ["32u", "32o", "64u", "64o"]

    def test_target_by_label_roundtrip(self):
        for target in STANDARD_TARGETS:
            assert target_by_label(target.label) == target

    def test_target_by_label_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown target"):
            target_by_label("128u")

    def test_targets_sortable_by_label(self):
        labels = sorted(target.label for target in STANDARD_TARGETS)
        assert labels == ["32o", "32u", "64o", "64u"]
