"""Regression tests for the interval-accounting and clustering fixes.

Each test here fails on the pre-fix code:

* ``_lloyd`` reseeded two simultaneously-empty clusters on the same
  farthest point because the distance matrix went stale between
  repairs, leaving one cluster empty;
* ``FLITracker.on_chunk`` silently dropped the cycles/DRAM of a chunk
  with zero instructions;
* ``IntervalInstructionCounter.on_block`` looped once per execution on
  the hottest path — replaced by bulk arithmetic that must keep the
  exact boundary semantics of the per-execution loop.
"""

import random

import numpy as np
import pytest

from repro.cmpsim.simulator import FLITracker
from repro.compilation.binary import BlockKind, LoweredBlock
from repro.core.markers import MarkerSet, MarkerTable
from repro.core.weights import IntervalInstructionCounter
from repro.errors import ClusteringError
from repro.simpoint.kmeans import _lloyd, weighted_kmeans


class _StubBinary:
    """The minimal Binary surface the interval counter touches."""

    def __init__(self, blocks, name="stub/32u"):
        self.name = name
        self.blocks = blocks


def _stub_setup(block_sizes, anchors):
    """A stub binary plus a marker set anchoring ``anchors`` blocks."""
    blocks = {
        block_id: LoweredBlock(
            block_id=block_id,
            kind=BlockKind.COMPUTE,
            instructions=size,
            base_cpi=1.0,
        )
        for block_id, size in block_sizes.items()
    }
    binary = _StubBinary(blocks)
    table = MarkerTable(
        binary_name=binary.name,
        anchor_blocks={
            marker_id: block_id
            for marker_id, block_id in anchors.items()
        },
    )
    marker_set = MarkerSet(points=(), tables={binary.name: table})
    return binary, marker_set


class _ReferenceCounter(IntervalInstructionCounter):
    """The pre-fix per-execution ``on_block`` (ground truth)."""

    def on_block(self, block_id, execs=1):
        instructions = self._binary.blocks[block_id].instructions
        marker_id = self._block_to_marker.get(block_id)
        if marker_id is None:
            self._current += instructions * execs
            return
        count = self._marker_counts.get(marker_id, 0)
        for _ in range(execs):
            count += 1
            self._current += instructions
            self._fire(marker_id, count)
        self._marker_counts[marker_id] = count


class TestEmptyClusterRepair:
    def test_two_empty_clusters_get_distinct_points(self):
        # Five coincident points plus one outlier; two of the three
        # initial centroids are far away, so clusters 1 and 2 are both
        # empty on the first assignment. The stale-distance bug reseeds
        # both on the outlier, leaving a cluster empty.
        points = np.array(
            [[0.0, 0.0]] * 5 + [[10.0, 0.0]], dtype=np.float64
        )
        weights = np.ones(len(points))
        centroids = np.array(
            [[0.0, 0.0], [100.0, 100.0], [200.0, 200.0]],
            dtype=np.float64,
        )
        result = _lloyd(points, weights, centroids.copy(), max_iter=1)
        occupied = set(result.labels.tolist())
        assert occupied == {0, 1, 2}

    def test_single_empty_cluster_repair_unchanged(self):
        # One empty cluster: the masked repair must behave exactly like
        # the original farthest-point reseed.
        points = np.array(
            [[0.0, 0.0]] * 4 + [[8.0, 0.0]], dtype=np.float64
        )
        weights = np.ones(len(points))
        centroids = np.array(
            [[0.0, 0.0], [100.0, 100.0]], dtype=np.float64
        )
        result = _lloyd(points, weights, centroids.copy(), max_iter=1)
        assert set(result.labels.tolist()) == {0, 1}
        # The outlier is the farthest point, so it seeds cluster 1.
        assert result.labels[-1] == 1

    def test_full_kmeans_never_returns_empty_clusters(self):
        rng = np.random.default_rng(11)
        points = np.vstack(
            [np.zeros((12, 2)), rng.normal(size=(4, 2)) * 0.01]
        )
        for k in (2, 3, 4, 5):
            result = weighted_kmeans(points, k, seed=5)
            assert set(result.labels.tolist()) == set(range(k))


class TestFLITrackerZeroInstructionChunks:
    def test_cycles_of_empty_chunk_are_conserved(self):
        tracker = FLITracker(100)
        tracker.on_chunk(0, 1, 60, 90.0)
        tracker.on_chunk(1, 1, 0, 7.0, dram=2.0)  # pure-stall chunk
        tracker.on_chunk(0, 1, 40, 50.0)
        tracker.finish()
        assert sum(i.instructions for i in tracker.intervals) == 100
        assert sum(i.cycles for i in tracker.intervals) == pytest.approx(
            147.0
        )
        assert sum(
            i.dram_accesses for i in tracker.intervals
        ) == pytest.approx(2.0)

    def test_trailing_empty_chunk_not_dropped(self):
        tracker = FLITracker(50)
        tracker.on_chunk(0, 1, 50, 50.0)
        tracker.on_chunk(1, 1, 0, 3.0)
        tracker.finish()
        assert sum(i.cycles for i in tracker.intervals) == pytest.approx(
            53.0
        )

    def test_finish_asserts_cycle_conservation(self):
        tracker = FLITracker(10)
        tracker.on_chunk(0, 1, 5, 5.0)
        tracker.total_cycles += 100.0  # simulate lost accounting
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="lost cycles"):
            tracker.finish()


class TestIntervalCounterBulkEquivalence:
    def _random_scenario(self, seed):
        rng = random.Random(seed)
        n_blocks = rng.randint(2, 6)
        block_sizes = {
            block_id: rng.randint(1, 50)
            for block_id in range(n_blocks)
        }
        n_markers = rng.randint(1, min(3, n_blocks))
        anchors = {
            marker_id: block_id
            for marker_id, block_id in enumerate(
                rng.sample(range(n_blocks), n_markers)
            )
        }
        events = [
            (rng.randrange(n_blocks), rng.randint(1, 200))
            for _ in range(rng.randint(5, 40))
        ]
        return block_sizes, anchors, events

    def _firings(self, anchors, events):
        """All (marker, cumulative-count) firings, in order."""
        block_to_marker = {b: m for m, b in anchors.items()}
        counts = {}
        firings = []
        for block_id, execs in events:
            marker = block_to_marker.get(block_id)
            if marker is None:
                continue
            for _ in range(execs):
                counts[marker] = counts.get(marker, 0) + 1
                firings.append((marker, counts[marker]))
        return firings

    @pytest.mark.parametrize("seed", range(25))
    def test_bulk_on_block_matches_per_execution_loop(self, seed):
        block_sizes, anchors, events = self._random_scenario(seed)
        firings = self._firings(anchors, events)
        if not firings:
            pytest.skip("scenario fired no markers")
        rng = random.Random(seed + 1000)
        n_boundaries = rng.randint(1, min(5, len(firings)))
        boundaries = sorted(
            rng.sample(range(len(firings)), n_boundaries)
        )
        boundary_coords = [firings[i] for i in boundaries]

        binary, marker_set = _stub_setup(block_sizes, anchors)
        fast = IntervalInstructionCounter(
            binary, marker_set, boundary_coords
        )
        slow = _ReferenceCounter(binary, marker_set, boundary_coords)
        for block_id, execs in events:
            fast.on_block(block_id, execs)
            slow.on_block(block_id, execs)
        fast.finish()
        slow.finish()
        assert fast.interval_instructions == slow.interval_instructions
        assert len(fast.interval_instructions) == len(boundary_coords) + 1

    def test_huge_exec_counts_are_constant_time(self):
        # The pre-fix code iterated once per execution (10M Python
        # iterations here, several seconds); the bulk path closes the
        # two boundaries with integer arithmetic in microseconds.
        import time

        binary, marker_set = _stub_setup({0: 3}, {1: 0})
        counter = IntervalInstructionCounter(
            binary, marker_set, [(1, 1_000_000), (1, 9_000_000)]
        )
        start = time.perf_counter()
        counter.on_block(0, 10_000_000)
        elapsed = time.perf_counter() - start
        counter.finish()
        assert counter.interval_instructions == [
            3_000_000, 24_000_000, 3_000_000
        ]
        assert elapsed < 0.5, (
            f"on_block took {elapsed:.2f}s for 10M executions - "
            f"the bulk arithmetic path regressed to per-execution work"
        )

    def test_bulk_path_handles_multiple_boundaries_in_one_chunk(self):
        # One marked block, three boundaries crossed by a single
        # bulk call: the counter must close three intervals mid-chunk.
        binary, marker_set = _stub_setup({0: 10}, {7: 0})
        counter = IntervalInstructionCounter(
            binary, marker_set, [(7, 2), (7, 5), (7, 9)]
        )
        counter.on_block(0, 12)
        counter.finish()
        assert counter.interval_instructions == [20, 30, 40, 30]


class TestBinarySearchNormalization:
    """``choose_clustering_binary_search`` must normalize BIC scores
    against the fixed k=1/k=maxK endpoints, not against whichever
    scores the bisection happened to evaluate so far.

    On the pre-fix code a k's qualification drifted as more points were
    evaluated, and the returned k could fail the 0.9 threshold under
    the endpoint normalization (here: old code returns k=6 with a
    normalized score of 0.5)."""

    #: A non-monotone BIC curve, indexed by k-1. Endpoints are 0 and
    #: 100, so the 0.9-threshold qualification bar is a score of 90.
    SCORES = (0.0, 10.0, 20.0, -500.0, 30.0, 50.0, 95.0, 100.0)

    def _choose(self, monkeypatch):
        from repro.simpoint import select

        monkeypatch.setattr(
            select,
            "bic_score",
            lambda points, result, weights: self.SCORES[result.k - 1],
        )
        rng = np.random.default_rng(7)
        points = rng.normal(size=(12, 2))
        weights = np.ones(12)
        return select.choose_clustering_binary_search(
            points, weights, max_k=8, bic_threshold=0.9, n_init=1,
            max_iter=20, seed=0,
        )

    def test_chosen_k_meets_threshold_under_endpoint_normalization(
        self, monkeypatch
    ):
        choice = self._choose(monkeypatch)
        worst = min(self.SCORES[0], self.SCORES[-1])
        spread = max(self.SCORES[0], self.SCORES[-1]) - worst
        normalized = (self.SCORES[choice.k - 1] - worst) / spread
        assert normalized >= 0.9, (
            f"binary search chose k={choice.k} whose normalized BIC "
            f"{normalized:.2f} fails the 0.9 threshold"
        )

    def test_chosen_k_is_smallest_qualifying_evaluated_k(
        self, monkeypatch
    ):
        choice = self._choose(monkeypatch)
        assert choice.k == 7

    def test_flat_curve_still_picks_smallest_k(self, monkeypatch):
        from repro.simpoint import select

        monkeypatch.setattr(
            select, "bic_score", lambda points, result, weights: 42.0
        )
        points = np.arange(10.0).reshape(-1, 1)
        choice = select.choose_clustering_binary_search(
            points, np.ones(10), max_k=6, n_init=1, max_iter=20
        )
        assert choice.k == 1


class TestPickSimulationPointsZeroWeights:
    """An all-zero weight vector used to divide through to NaN weights
    that silently poisoned every downstream CPI estimate."""

    def test_zero_weights_raise_instead_of_nan(self):
        from repro.simpoint.kmeans import KMeansResult
        from repro.simpoint.select import pick_simulation_points

        points = np.arange(8.0).reshape(-1, 2)
        result = KMeansResult(
            centroids=points[:1].copy(),
            labels=np.zeros(4, dtype=int),
            inertia=0.0,
            iterations=1,
        )
        with pytest.raises(ClusteringError, match="positive"):
            pick_simulation_points(points, np.zeros(4), result)

    def test_positive_weights_still_normalize(self):
        from repro.simpoint.kmeans import KMeansResult
        from repro.simpoint.select import pick_simulation_points

        points = np.array([[0.0, 0.0], [1.0, 1.0], [4.0, 4.0], [5.0, 5.0]])
        result = KMeansResult(
            centroids=np.array([[0.5, 0.5], [4.5, 4.5]]),
            labels=np.array([0, 0, 1, 1]),
            inertia=0.0,
            iterations=1,
        )
        picks = pick_simulation_points(
            points, np.array([1.0, 1.0, 3.0, 1.0]), result
        )
        assert sum(pick.weight for pick in picks) == pytest.approx(1.0)
