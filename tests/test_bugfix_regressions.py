"""Regression tests for the interval-accounting and clustering fixes.

Each test here fails on the pre-fix code:

* ``_lloyd`` reseeded two simultaneously-empty clusters on the same
  farthest point because the distance matrix went stale between
  repairs, leaving one cluster empty;
* ``FLITracker.on_chunk`` silently dropped the cycles/DRAM of a chunk
  with zero instructions;
* ``IntervalInstructionCounter.on_block`` looped once per execution on
  the hottest path — replaced by bulk arithmetic that must keep the
  exact boundary semantics of the per-execution loop.
"""

import random

import numpy as np
import pytest

from repro.cmpsim.simulator import FLITracker
from repro.compilation.binary import BlockKind, LoweredBlock
from repro.core.markers import MarkerSet, MarkerTable
from repro.core.weights import IntervalInstructionCounter
from repro.simpoint.kmeans import _lloyd, weighted_kmeans


class _StubBinary:
    """The minimal Binary surface the interval counter touches."""

    def __init__(self, blocks, name="stub/32u"):
        self.name = name
        self.blocks = blocks


def _stub_setup(block_sizes, anchors):
    """A stub binary plus a marker set anchoring ``anchors`` blocks."""
    blocks = {
        block_id: LoweredBlock(
            block_id=block_id,
            kind=BlockKind.COMPUTE,
            instructions=size,
            base_cpi=1.0,
        )
        for block_id, size in block_sizes.items()
    }
    binary = _StubBinary(blocks)
    table = MarkerTable(
        binary_name=binary.name,
        anchor_blocks={
            marker_id: block_id
            for marker_id, block_id in anchors.items()
        },
    )
    marker_set = MarkerSet(points=(), tables={binary.name: table})
    return binary, marker_set


class _ReferenceCounter(IntervalInstructionCounter):
    """The pre-fix per-execution ``on_block`` (ground truth)."""

    def on_block(self, block_id, execs=1):
        instructions = self._binary.blocks[block_id].instructions
        marker_id = self._block_to_marker.get(block_id)
        if marker_id is None:
            self._current += instructions * execs
            return
        count = self._marker_counts.get(marker_id, 0)
        for _ in range(execs):
            count += 1
            self._current += instructions
            self._fire(marker_id, count)
        self._marker_counts[marker_id] = count


class TestEmptyClusterRepair:
    def test_two_empty_clusters_get_distinct_points(self):
        # Five coincident points plus one outlier; two of the three
        # initial centroids are far away, so clusters 1 and 2 are both
        # empty on the first assignment. The stale-distance bug reseeds
        # both on the outlier, leaving a cluster empty.
        points = np.array(
            [[0.0, 0.0]] * 5 + [[10.0, 0.0]], dtype=np.float64
        )
        weights = np.ones(len(points))
        centroids = np.array(
            [[0.0, 0.0], [100.0, 100.0], [200.0, 200.0]],
            dtype=np.float64,
        )
        result = _lloyd(points, weights, centroids.copy(), max_iter=1)
        occupied = set(result.labels.tolist())
        assert occupied == {0, 1, 2}

    def test_single_empty_cluster_repair_unchanged(self):
        # One empty cluster: the masked repair must behave exactly like
        # the original farthest-point reseed.
        points = np.array(
            [[0.0, 0.0]] * 4 + [[8.0, 0.0]], dtype=np.float64
        )
        weights = np.ones(len(points))
        centroids = np.array(
            [[0.0, 0.0], [100.0, 100.0]], dtype=np.float64
        )
        result = _lloyd(points, weights, centroids.copy(), max_iter=1)
        assert set(result.labels.tolist()) == {0, 1}
        # The outlier is the farthest point, so it seeds cluster 1.
        assert result.labels[-1] == 1

    def test_full_kmeans_never_returns_empty_clusters(self):
        rng = np.random.default_rng(11)
        points = np.vstack(
            [np.zeros((12, 2)), rng.normal(size=(4, 2)) * 0.01]
        )
        for k in (2, 3, 4, 5):
            result = weighted_kmeans(points, k, seed=5)
            assert set(result.labels.tolist()) == set(range(k))


class TestFLITrackerZeroInstructionChunks:
    def test_cycles_of_empty_chunk_are_conserved(self):
        tracker = FLITracker(100)
        tracker.on_chunk(0, 1, 60, 90.0)
        tracker.on_chunk(1, 1, 0, 7.0, dram=2.0)  # pure-stall chunk
        tracker.on_chunk(0, 1, 40, 50.0)
        tracker.finish()
        assert sum(i.instructions for i in tracker.intervals) == 100
        assert sum(i.cycles for i in tracker.intervals) == pytest.approx(
            147.0
        )
        assert sum(
            i.dram_accesses for i in tracker.intervals
        ) == pytest.approx(2.0)

    def test_trailing_empty_chunk_not_dropped(self):
        tracker = FLITracker(50)
        tracker.on_chunk(0, 1, 50, 50.0)
        tracker.on_chunk(1, 1, 0, 3.0)
        tracker.finish()
        assert sum(i.cycles for i in tracker.intervals) == pytest.approx(
            53.0
        )

    def test_finish_asserts_cycle_conservation(self):
        tracker = FLITracker(10)
        tracker.on_chunk(0, 1, 5, 5.0)
        tracker.total_cycles += 100.0  # simulate lost accounting
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="lost cycles"):
            tracker.finish()


class TestIntervalCounterBulkEquivalence:
    def _random_scenario(self, seed):
        rng = random.Random(seed)
        n_blocks = rng.randint(2, 6)
        block_sizes = {
            block_id: rng.randint(1, 50)
            for block_id in range(n_blocks)
        }
        n_markers = rng.randint(1, min(3, n_blocks))
        anchors = {
            marker_id: block_id
            for marker_id, block_id in enumerate(
                rng.sample(range(n_blocks), n_markers)
            )
        }
        events = [
            (rng.randrange(n_blocks), rng.randint(1, 200))
            for _ in range(rng.randint(5, 40))
        ]
        return block_sizes, anchors, events

    def _firings(self, anchors, events):
        """All (marker, cumulative-count) firings, in order."""
        block_to_marker = {b: m for m, b in anchors.items()}
        counts = {}
        firings = []
        for block_id, execs in events:
            marker = block_to_marker.get(block_id)
            if marker is None:
                continue
            for _ in range(execs):
                counts[marker] = counts.get(marker, 0) + 1
                firings.append((marker, counts[marker]))
        return firings

    @pytest.mark.parametrize("seed", range(25))
    def test_bulk_on_block_matches_per_execution_loop(self, seed):
        block_sizes, anchors, events = self._random_scenario(seed)
        firings = self._firings(anchors, events)
        if not firings:
            pytest.skip("scenario fired no markers")
        rng = random.Random(seed + 1000)
        n_boundaries = rng.randint(1, min(5, len(firings)))
        boundaries = sorted(
            rng.sample(range(len(firings)), n_boundaries)
        )
        boundary_coords = [firings[i] for i in boundaries]

        binary, marker_set = _stub_setup(block_sizes, anchors)
        fast = IntervalInstructionCounter(
            binary, marker_set, boundary_coords
        )
        slow = _ReferenceCounter(binary, marker_set, boundary_coords)
        for block_id, execs in events:
            fast.on_block(block_id, execs)
            slow.on_block(block_id, execs)
        fast.finish()
        slow.finish()
        assert fast.interval_instructions == slow.interval_instructions
        assert len(fast.interval_instructions) == len(boundary_coords) + 1

    def test_huge_exec_counts_are_constant_time(self):
        # The pre-fix code iterated once per execution (10M Python
        # iterations here, several seconds); the bulk path closes the
        # two boundaries with integer arithmetic in microseconds.
        import time

        binary, marker_set = _stub_setup({0: 3}, {1: 0})
        counter = IntervalInstructionCounter(
            binary, marker_set, [(1, 1_000_000), (1, 9_000_000)]
        )
        start = time.perf_counter()
        counter.on_block(0, 10_000_000)
        elapsed = time.perf_counter() - start
        counter.finish()
        assert counter.interval_instructions == [
            3_000_000, 24_000_000, 3_000_000
        ]
        assert elapsed < 0.5, (
            f"on_block took {elapsed:.2f}s for 10M executions - "
            f"the bulk arithmetic path regressed to per-execution work"
        )

    def test_bulk_path_handles_multiple_boundaries_in_one_chunk(self):
        # One marked block, three boundaries crossed by a single
        # bulk call: the counter must close three intervals mid-chunk.
        binary, marker_set = _stub_setup({0: 10}, {7: 0})
        counter = IntervalInstructionCounter(
            binary, marker_set, [(7, 2), (7, 5), (7, 9)]
        )
        counter.on_block(0, 12)
        counter.finish()
        assert counter.interval_instructions == [20, 30, 40, 30]
