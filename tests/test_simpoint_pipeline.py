"""Tests for repro.simpoint: vectors, projection, selection, facade."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ClusteringError
from repro.profiling.intervals import Interval
from repro.simpoint.projection import project, projection_matrix
from repro.simpoint.select import choose_clustering, pick_simulation_points
from repro.simpoint.simpoint import SimPointConfig, run_simpoint
from repro.simpoint.vectors import build_vector_set


def _intervals_with_phases(n_per_phase=12, phases=3, noise=0.01, seed=5):
    """Synthetic intervals: each phase uses a distinct block set."""
    rng = np.random.default_rng(seed)
    intervals = []
    index = 0
    for phase in range(phases):
        for _ in range(n_per_phase):
            bbv = {}
            for block in range(4):
                key = phase * 10 + block
                bbv[key] = 1000.0 * (1 + block) * (1 + rng.uniform(-noise,
                                                                   noise))
            # A block shared by all phases, lightly used.
            bbv[999] = 100.0
            intervals.append(
                Interval(index=index, instructions=10_000, bbv=bbv)
            )
            index += 1
    return intervals


class TestVectorSet:
    def test_rows_normalized(self):
        vs = build_vector_set(_intervals_with_phases())
        sums = vs.matrix.sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_weights_are_instruction_counts(self):
        vs = build_vector_set(_intervals_with_phases())
        assert np.all(vs.weights == 10_000)

    def test_dimension_keys_cover_blocks(self):
        vs = build_vector_set(_intervals_with_phases(phases=2))
        assert 999 in vs.dimension_keys
        assert vs.n_dimensions == 2 * 4 + 1

    def test_rejects_empty(self):
        with pytest.raises(ClusteringError):
            build_vector_set([])

    def test_rejects_interval_with_empty_bbv(self):
        good = Interval(index=0, instructions=10, bbv={1: 10.0})
        bad = Interval(index=1, instructions=10, bbv={})
        with pytest.raises(ClusteringError):
            build_vector_set([good, bad])


class TestProjection:
    def test_deterministic(self):
        a = projection_matrix(100, 15, seed=1)
        b = projection_matrix(100, 15, seed=1)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = projection_matrix(100, 15, seed=1)
        b = projection_matrix(100, 15, seed=2)
        assert not np.array_equal(a, b)

    def test_output_shape(self):
        data = np.random.default_rng(0).uniform(size=(20, 100))
        projected = project(data, 15)
        assert projected.shape == (20, 15)

    def test_low_dim_data_passes_through(self):
        data = np.random.default_rng(0).uniform(size=(20, 10))
        assert project(data, 15) is data

    def test_rejects_bad_dims(self):
        with pytest.raises(ClusteringError):
            projection_matrix(0, 15)

    def test_preserves_separation_approximately(self):
        """Well-separated clusters stay separated after projection."""
        rng = np.random.default_rng(3)
        a = rng.normal(0.0, 0.01, size=(30, 100))
        b = rng.normal(1.0, 0.01, size=(30, 100))
        pa = project(a, 15, seed=0)
        pb = project(b, 15, seed=0)
        within = np.linalg.norm(pa - pa.mean(axis=0), axis=1).mean()
        between = np.linalg.norm(pa.mean(axis=0) - pb.mean(axis=0))
        assert between > 5 * within


class TestChooseClustering:
    def test_finds_phase_count(self):
        vs = build_vector_set(_intervals_with_phases(phases=3))
        choice = choose_clustering(
            project(vs.matrix), vs.weights, max_k=8, seed=0
        )
        assert choice.k == 3

    def test_smallest_good_k_wins(self):
        """With a lenient threshold, a smaller k is acceptable."""
        vs = build_vector_set(_intervals_with_phases(phases=4))
        strict = choose_clustering(
            project(vs.matrix), vs.weights, max_k=8, bic_threshold=0.99,
            seed=0,
        )
        lenient = choose_clustering(
            project(vs.matrix), vs.weights, max_k=8, bic_threshold=0.1,
            seed=0,
        )
        assert lenient.k <= strict.k

    def test_k_capped_by_interval_count(self):
        vs = build_vector_set(_intervals_with_phases(n_per_phase=2,
                                                     phases=2))
        choice = choose_clustering(vs.matrix, vs.weights, max_k=100, seed=0)
        assert choice.k <= 4

    def test_bic_scores_exposed(self):
        vs = build_vector_set(_intervals_with_phases())
        choice = choose_clustering(
            project(vs.matrix), vs.weights, max_k=5, seed=0
        )
        assert len(choice.bic_scores) == 5

    def test_rejects_bad_threshold(self):
        vs = build_vector_set(_intervals_with_phases())
        with pytest.raises(ClusteringError):
            choose_clustering(vs.matrix, vs.weights, max_k=5,
                              bic_threshold=0.0)


class TestPickSimulationPoints:
    def test_representative_is_cluster_member(self):
        vs = build_vector_set(_intervals_with_phases())
        points = project(vs.matrix)
        choice = choose_clustering(points, vs.weights, max_k=8, seed=0)
        picks = pick_simulation_points(points, vs.weights, choice.result)
        for pick in picks:
            assert choice.result.labels[pick.interval_index] == pick.cluster

    def test_weights_sum_to_one(self):
        vs = build_vector_set(_intervals_with_phases())
        points = project(vs.matrix)
        choice = choose_clustering(points, vs.weights, max_k=8, seed=0)
        picks = pick_simulation_points(points, vs.weights, choice.result)
        assert sum(p.weight for p in picks) == pytest.approx(1.0)

    def test_equal_phases_get_equal_weights(self):
        vs = build_vector_set(_intervals_with_phases(phases=3))
        points = project(vs.matrix)
        choice = choose_clustering(points, vs.weights, max_k=8, seed=0)
        picks = pick_simulation_points(points, vs.weights, choice.result)
        if choice.k == 3:
            for pick in picks:
                assert pick.weight == pytest.approx(1 / 3, abs=0.01)


class TestRunSimPoint:
    def test_end_to_end_on_synthetic_phases(self):
        result = run_simpoint(_intervals_with_phases(phases=3),
                              SimPointConfig(max_k=8))
        assert result.k == 3
        assert result.n_points == 3
        assert len(result.labels) == 36

    def test_max_k_respected(self):
        result = run_simpoint(
            _intervals_with_phases(phases=6),
            SimPointConfig(max_k=4),
        )
        assert result.k <= 4

    def test_weights_sum_to_one(self):
        result = run_simpoint(_intervals_with_phases())
        assert sum(p.weight for p in result.points) == pytest.approx(1.0)

    def test_phase_of_accessor(self):
        result = run_simpoint(_intervals_with_phases())
        for point in result.points:
            assert result.phase_of(point.interval_index) == point.cluster

    def test_weight_of_cluster_accessor(self):
        result = run_simpoint(_intervals_with_phases())
        for point in result.points:
            assert result.weight_of_cluster(point.cluster) == point.weight
        with pytest.raises(ClusteringError):
            result.weight_of_cluster(10_000)

    def test_single_interval(self):
        intervals = [Interval(index=0, instructions=100, bbv={1: 100.0})]
        result = run_simpoint(intervals)
        assert result.k == 1
        assert result.points[0].weight == pytest.approx(1.0)

    def test_config_validation(self):
        with pytest.raises(ClusteringError):
            SimPointConfig(max_k=0)
        with pytest.raises(ClusteringError):
            SimPointConfig(dimensions=0)

    def test_deterministic(self):
        intervals = _intervals_with_phases()
        a = run_simpoint(intervals)
        b = run_simpoint(intervals)
        assert a == b

    @settings(deadline=None, max_examples=10)
    @given(phases=st.integers(min_value=1, max_value=5),
           seed=st.integers(min_value=0, max_value=20))
    def test_labels_consistent_with_points(self, phases, seed):
        intervals = _intervals_with_phases(
            n_per_phase=6, phases=phases, seed=seed
        )
        result = run_simpoint(intervals, SimPointConfig(max_k=8))
        clusters_in_labels = set(result.labels)
        clusters_in_points = {p.cluster for p in result.points}
        assert clusters_in_points == clusters_in_labels
        assert sum(p.weight for p in result.points) == pytest.approx(1.0)
