"""Tests for repro.execution: engine, events, and the Pin tool API."""

import pytest

from repro.compilation.compiler import compile_program
from repro.compilation.targets import TARGET_32O, TARGET_32U
from repro.errors import ExecutionError
from repro.execution.engine import ExecutionEngine, run_binary
from repro.execution.events import (
    ExecutionConsumer,
    InstructionCounter,
    MultiConsumer,
    iteration_profile,
)
from repro.execution.pin import PinTool, run_with_tools
from repro.programs.behaviors import streaming
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    finalize_program,
)


def _nested_program():
    """main -> outer loop { call leaf; inner loop { compute } }."""
    leaf = Procedure(
        name="leaf",
        body=(Compute("leaf_c", instructions=7),),
        inlinable=False,
    )
    main = Procedure(
        name="main",
        body=(
            Loop(
                "outer",
                trips=3,
                body=(
                    Call("call_leaf", callee="leaf"),
                    Loop(
                        "inner",
                        trips=4,
                        body=(Compute("inner_c", instructions=11,
                                      behavior=streaming(4096, 2)),),
                        unrollable=False,
                        splittable=False,
                    ),
                ),
                unrollable=False,
                splittable=False,
            ),
        ),
    )
    return finalize_program(
        Program(name="nested", procedures={"main": main, "leaf": leaf},
                entry="main")
    )


@pytest.fixture(scope="module")
def nested_binary():
    binary, _ = compile_program(_nested_program(), TARGET_32U)
    return binary


class _Recorder(ExecutionConsumer):
    def __init__(self):
        self.events = []

    def on_procedure_entry(self, name, entry_block):
        self.events.append(("proc", name))

    def on_block(self, block_id, execs=1):
        self.events.append(("block", block_id, execs))

    def on_iterations(self, loop, iterations):
        self.events.append(("iters", loop.loop_id, iterations))

    def finish(self):
        self.events.append(("finish",))


class TestEngine:
    def test_totals_are_deterministic(self, nested_binary):
        a = run_binary(nested_binary)
        b = run_binary(nested_binary)
        assert a == b

    def test_exact_instruction_count(self, nested_binary):
        """Hand-computed expectation from the block structure."""
        blocks = nested_binary.blocks
        by_name = {block.source_name: block for block in blocks.values()}
        expected = (
            by_name["main.entry"].instructions
            + by_name["outer.entry"].instructions
            + 3 * (
                by_name["call_leaf"].instructions
                + by_name["leaf.entry"].instructions
                + by_name["leaf_c"].instructions
                + by_name["inner.entry"].instructions
                + 4 * (
                    by_name["inner_c"].instructions
                    + by_name["inner.branch"].instructions
                )
                + by_name["outer.branch"].instructions
            )
        )
        assert run_binary(nested_binary).instructions == expected

    def test_innermost_loop_is_bulk(self, nested_binary):
        recorder = _Recorder()
        ExecutionEngine(nested_binary).run(recorder)
        iters = [e for e in recorder.events if e[0] == "iters"]
        # The inner loop runs bulk once per outer iteration.
        assert len(iters) == 3
        assert all(event[2] == 4 for event in iters)

    def test_outer_loop_is_explicit(self, nested_binary):
        recorder = _Recorder()
        ExecutionEngine(nested_binary).run(recorder)
        outer_branch = next(
            stmt for stmt in nested_binary.procedures["main"].body
        ).branch_block
        branch_events = [
            e for e in recorder.events
            if e[0] == "block" and e[1] == outer_branch
        ]
        assert len(branch_events) == 3

    def test_procedure_entries_in_order(self, nested_binary):
        recorder = _Recorder()
        ExecutionEngine(nested_binary).run(recorder)
        procs = [e[1] for e in recorder.events if e[0] == "proc"]
        assert procs == ["main", "leaf", "leaf", "leaf"]

    def test_finish_called_once(self, nested_binary):
        recorder = _Recorder()
        ExecutionEngine(nested_binary).run(recorder)
        assert recorder.events[-1] == ("finish",)
        assert recorder.events.count(("finish",)) == 1

    def test_input_scaling_changes_trips(self):
        program = _nested_program()
        main = program.procedures["main"]
        # Rebuild with an input-scaled outer loop.
        from dataclasses import replace
        outer = replace(main.body[0], input_scaled=True)
        program = finalize_program(
            Program(
                name="scaled",
                procedures={
                    "main": replace(main, body=(outer,)),
                    "leaf": program.procedures["leaf"],
                },
                entry="main",
            )
        )
        binary, _ = compile_program(program, TARGET_32U)
        full = run_binary(binary, ProgramInput("full", 1.0))
        double = run_binary(binary, ProgramInput("double", 2.0))
        assert double.instructions > full.instructions

    def test_resolved_trips_exposed(self, nested_binary):
        engine = ExecutionEngine(nested_binary)
        trips = [
            engine.resolved_trips(loop_id)
            for loop_id in nested_binary.loops
        ]
        assert sorted(trips) == [3, 4]

    def test_resolved_trips_unknown_loop(self, nested_binary):
        engine = ExecutionEngine(nested_binary)
        with pytest.raises(ExecutionError, match="unknown loop"):
            engine.resolved_trips(12345)

    def test_multi_consumer_broadcasts(self, nested_binary):
        first = InstructionCounter(nested_binary)
        second = InstructionCounter(nested_binary)
        ExecutionEngine(nested_binary).run(MultiConsumer((first, second)))
        assert first.instructions == second.instructions > 0


class TestIterationProfile:
    def test_profile_matches_blocks(self, nested_binary):
        loop = next(
            inner
            for stmt in nested_binary.procedures["main"].body
            for inner in stmt.body
            if hasattr(inner, "branch_block")
        )
        profile = iteration_profile(nested_binary, loop)
        assert profile.branch_block == loop.branch_block
        assert profile.instructions_per_iteration == (
            profile.body_instructions + profile.branch_instructions
        )

    def test_block_counts(self, nested_binary):
        loop = next(
            inner
            for stmt in nested_binary.procedures["main"].body
            for inner in stmt.body
            if hasattr(inner, "branch_block")
        )
        profile = iteration_profile(nested_binary, loop)
        counts = dict(profile.block_counts(5))
        assert counts[profile.branch_block] == 5
        for block in profile.body_blocks:
            assert counts[block] == 5


class _CountingTool(PinTool):
    def __init__(self):
        self.proc_entries = {}
        self.loop_entries = {}
        self.loop_iterations = {}
        self.blocks = 0
        self.started = False
        self.ended = False

    def on_program_start(self, binary):
        self.started = True

    def on_procedure_entry(self, name):
        self.proc_entries[name] = self.proc_entries.get(name, 0) + 1

    def on_loop_entry(self, loop_id):
        self.loop_entries[loop_id] = self.loop_entries.get(loop_id, 0) + 1

    def on_loop_iterations(self, loop_id, iterations):
        self.loop_iterations[loop_id] = (
            self.loop_iterations.get(loop_id, 0) + iterations
        )

    def on_block_exec(self, block, execs):
        self.blocks += execs

    def on_program_end(self):
        self.ended = True


class TestPinTools:
    def test_lifecycle_callbacks(self, nested_binary):
        tool = _CountingTool()
        run_with_tools(nested_binary, (tool,))
        assert tool.started and tool.ended

    def test_procedure_entry_counts(self, nested_binary):
        tool = _CountingTool()
        run_with_tools(nested_binary, (tool,))
        assert tool.proc_entries == {"main": 1, "leaf": 3}

    def test_loop_counts(self, nested_binary):
        tool = _CountingTool()
        run_with_tools(nested_binary, (tool,))
        meta_by_name = {
            meta.source_name: loop_id
            for loop_id, meta in nested_binary.loops.items()
        }
        outer = meta_by_name["outer"]
        inner = meta_by_name["inner"]
        assert tool.loop_entries == {outer: 1, inner: 3}
        assert tool.loop_iterations == {outer: 3, inner: 12}

    def test_block_exec_total_matches_engine(self, nested_binary):
        tool = _CountingTool()
        totals = run_with_tools(nested_binary, (tool,))
        assert tool.blocks == totals.block_executions

    def test_same_counts_across_opt_levels(self):
        """Source-level counts are a compile-time invariant (the basis
        of the paper's mappable points)."""
        program = _nested_program()
        counts = {}
        for target in (TARGET_32U, TARGET_32O):
            binary, _ = compile_program(program, target)
            tool = _CountingTool()
            run_with_tools(binary, (tool,))
            counts[target.label] = dict(tool.proc_entries)
        # leaf is not inlinable here, so both binaries keep the calls.
        assert counts["32u"] == counts["32o"]
