"""Suite-wide mappability checks (functional runs only, fast).

For every one of the 21 benchmarks: the four standard binaries must
match enough mappable points to build VLIs, and every boundary built on
the primary must be locatable in every binary, partitioning its whole
run. This is the end-to-end guarantee the experiments stand on, checked
across the entire suite (the heavier per-benchmark detail lives in the
benchmark harness).
"""

import pytest

from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS
from repro.core.mapping import interval_boundaries
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.core.weights import measure_interval_instructions
from repro.execution.engine import run_binary
from repro.programs.suite import benchmark_names, build_benchmark

INTERVAL = 100_000


@pytest.mark.parametrize("name", benchmark_names())
def test_benchmark_is_fully_mappable(name):
    program = build_benchmark(name)
    binaries = compile_standard_binaries(program)
    ordered = [binaries[target] for target in STANDARD_TARGETS]

    from repro.profiling.callbranch import collect_call_branch_profile

    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in ordered
    ]
    marker_set, report = find_mappable_points(profiles)

    # Enough structure matched to be usable.
    assert report.procedures_matched >= 3, name
    assert marker_set.n_points >= 8, name

    intervals = collect_vli_bbvs(ordered[0], marker_set, INTERVAL)
    assert len(intervals) >= 10, name
    boundaries = interval_boundaries(intervals)

    for binary in ordered:
        counts = measure_interval_instructions(
            binary, marker_set, boundaries
        )
        assert len(counts) == len(intervals), binary.name
        assert all(count > 0 for count in counts), binary.name
        assert sum(counts) == run_binary(binary).instructions, binary.name
