"""Tests for repro.experiments.design_space."""

import pytest

from repro.cmpsim.config import TABLE1_CONFIG
from repro.errors import SimulationError
from repro.experiments.design_space import (
    ArchitecturePoint,
    DesignPoint,
    DesignSpaceResult,
    STANDARD_DESIGN_SPACE,
    explore_design_space,
    render_design_space,
)
from repro.simpoint.simpoint import SimPointConfig


def _point(binary, arch, true, fli, vli):
    return DesignPoint(
        binary_label=binary, architecture=arch,
        true_cycles=true, fli_cycles=fli, vli_cycles=vli,
    )


class TestDesignSpaceResult:
    @pytest.fixture()
    def result(self):
        return DesignSpaceResult(
            program="synthetic",
            points=(
                _point("32u", "a", 100.0, 105.0, 99.0),
                _point("32o", "a", 50.0, 70.0, 51.0),
                _point("32u", "b", 80.0, 78.0, 81.0),
                _point("32o", "b", 60.0, 40.0, 59.0),
            ),
        )

    def test_true_ranking(self, result):
        assert result.ranking() == (
            ("32o", "a"), ("32o", "b"), ("32u", "b"), ("32u", "a"),
        )

    def test_estimated_rankings_differ(self, result):
        # FLI's bad estimates flip the best pair; VLI's do not.
        assert result.best_pair("fli") == ("32o", "b")
        assert result.best_pair("vli") == ("32o", "a")
        assert result.best_pair() == ("32o", "a")

    def test_pairwise_error_zero_for_perfect(self):
        perfect = DesignSpaceResult(
            program="p",
            points=(
                _point("32u", "a", 100.0, 100.0, 100.0),
                _point("32o", "a", 50.0, 50.0, 50.0),
            ),
        )
        assert perfect.pairwise_comparison_error("fli") == 0.0

    def test_vli_error_lower_here(self, result):
        assert (
            result.pairwise_comparison_error("vli")
            < result.pairwise_comparison_error("fli")
        )

    def test_cross_binary_error_subsets(self, result):
        error_a = result.cross_binary_error("vli", "a")
        assert error_a < 0.05

    def test_cross_binary_error_needs_two_points(self, result):
        with pytest.raises(SimulationError):
            result.cross_binary_error("vli", "missing-arch")

    def test_unknown_method_rejected(self, result):
        with pytest.raises(SimulationError):
            result.points[0].estimated_cycles("nope")

    def test_pairwise_needs_two_points(self):
        single = DesignSpaceResult(
            program="p", points=(_point("32u", "a", 1.0, 1.0, 1.0),)
        )
        with pytest.raises(SimulationError):
            single.pairwise_comparison_error("fli")


class TestExploreDesignSpace:
    def test_duplicate_architectures_rejected(self):
        arch = ArchitecturePoint("dup", TABLE1_CONFIG)
        with pytest.raises(SimulationError, match="duplicate"):
            explore_design_space("art", architectures=(arch, arch))

    def test_empty_architectures_rejected(self):
        with pytest.raises(SimulationError):
            explore_design_space("art", architectures=())

    def test_small_exploration_end_to_end(self):
        """art x two architectures: shapes, labels, rendering."""
        result = explore_design_space(
            "art",
            architectures=STANDARD_DESIGN_SPACE[:2],
            simpoint=SimPointConfig(max_k=6),
        )
        assert len(result.points) == 4 * 2
        labels = {p.binary_label for p in result.points}
        assert labels == {"32u", "32o", "64u", "64o"}
        archs = {p.architecture for p in result.points}
        assert archs == {"table1", "big-llc"}
        for point in result.points:
            assert point.true_cycles > 0
            assert point.fli_cycles > 0
            assert point.vli_cycles > 0
        text = render_design_space(result)
        assert "true best" in text and "pairwise comparison error" in text
        # Within each architecture, VLI's cross-binary comparisons are
        # at least as good as FLI's on this benchmark.
        for arch in ("table1", "big-llc"):
            assert (
                result.cross_binary_error("vli", arch)
                <= result.cross_binary_error("fli", arch) + 0.02
            )
