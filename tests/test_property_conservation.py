"""Property tests: tracker conservation laws and weight invariants.

The interval trackers see execution as an arbitrary stream of
``on_chunk`` calls — chunk granularity is a simulator implementation
detail, so no chunking may create or destroy instructions, cycles, or
DRAM accesses. These properties drive the trackers directly with
hypothesis-generated streams (including zero-instruction chunks, the
subject of a past accounting bug) rather than through full simulations.
"""

import math
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.cmpsim.simulator import FLITracker, VLITracker
from repro.core.markers import MarkerTable
from repro.core.weights import phase_weights
from repro.errors import MappingError
from repro.runtime import ProfileCache

_SETTINGS = settings(deadline=None, max_examples=75)

#: One FLI chunk: (block_id, execs, instructions, cycles, dram).
#: Zero-instruction chunks with nonzero cycles/DRAM are deliberately
#: common — they model stall-only events and used to be dropped.
#: Subnormal floats are excluded: the granularity test splits chunks by
#: halving, and halving the smallest subnormal underflows to exactly
#: 0.0, which destroys the quantity being conserved in the test
#: harness itself (real simulators never emit subnormal cycle counts).
_fli_chunks = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=5_000),
        st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False,
            allow_subnormal=False,
        ),
        st.floats(
            min_value=0.0, max_value=1e4, allow_nan=False,
            allow_subnormal=False,
        ),
    ),
    min_size=1,
    max_size=60,
)


class TestFLIConservation:
    @_SETTINGS
    @given(chunks=_fli_chunks,
           interval_size=st.integers(min_value=1, max_value=10_000))
    def test_arbitrary_chunkings_conserve_everything(
        self, chunks, interval_size
    ):
        tracker = FLITracker(interval_size)
        for block_id, execs, instructions, cycles, dram in chunks:
            tracker.on_chunk(block_id, execs, instructions, cycles, dram)
        tracker.finish()  # raises SimulationError if cycles were lost
        intervals = tracker.intervals
        assert sum(i.instructions for i in intervals) == sum(
            c[2] for c in chunks
        )
        assert math.isclose(
            sum(i.cycles for i in intervals),
            sum(c[3] for c in chunks),
            rel_tol=1e-9, abs_tol=1e-6,
        )
        assert math.isclose(
            sum(i.dram_accesses for i in intervals),
            sum(c[4] for c in chunks),
            rel_tol=1e-9, abs_tol=1e-6,
        )
        # Every closed interval is exactly full; only the final one
        # (flushed by finish) may be short.
        for interval in intervals[:-1]:
            assert interval.instructions == interval_size

    @_SETTINGS
    @given(chunks=_fli_chunks)
    def test_chunk_granularity_is_invisible(self, chunks):
        """Splitting every chunk into single executions changes nothing
        (instruction counts; cycles prorate identically by share)."""
        coarse = FLITracker(1_000)
        fine = FLITracker(1_000)
        for block_id, execs, instructions, cycles, dram in chunks:
            coarse.on_chunk(block_id, execs, instructions, cycles, dram)
            # Same totals delivered in two halves.
            lo = instructions // 2
            fine.on_chunk(block_id, execs, lo, cycles / 2, dram / 2)
            fine.on_chunk(
                block_id, execs, instructions - lo, cycles / 2, dram / 2
            )
        coarse.finish()
        fine.finish()
        assert [i.instructions for i in coarse.intervals] == [
            i.instructions for i in fine.intervals
        ]


@st.composite
def _vli_streams(draw):
    """A marker table plus a chunk stream and the boundary list.

    Blocks 0-3 are plain blocks; blocks 10 and 11 anchor markers 0 and
    1. Marker chunks are per-execution uniform and DRAM-free (marker
    anchors are overhead blocks), matching the tracker's contract.
    """
    anchors = {0: 10, 1: 11}
    table = MarkerTable(binary_name="prop/32u", anchor_blocks=anchors)
    events = draw(st.lists(
        st.tuples(
            st.sampled_from([0, 1, 2, 3, 10, 11]),
            st.integers(min_value=1, max_value=30),
            st.integers(min_value=0, max_value=200),
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    ))
    marker_blocks = {block for block in anchors.values()}
    chunks = []
    firings = []
    counts = {}
    for block_id, execs, per_instr, cycles, dram in events:
        if block_id in marker_blocks:
            marker_id = 0 if block_id == 10 else 1
            for _ in range(execs):
                counts[marker_id] = counts.get(marker_id, 0) + 1
                firings.append((marker_id, counts[marker_id]))
            chunks.append(
                (block_id, execs, per_instr * execs, cycles, 0.0)
            )
        else:
            chunks.append((block_id, execs, per_instr, cycles, dram))
    n_boundaries = (
        draw(st.integers(min_value=0, max_value=min(4, len(firings))))
        if firings else 0
    )
    if n_boundaries:
        indices = sorted(draw(st.permutations(
            range(len(firings))
        ))[:n_boundaries])
        boundaries = [firings[i] for i in indices]
    else:
        boundaries = []
    return table, chunks, boundaries


class TestVLIConservation:
    @_SETTINGS
    @given(stream=_vli_streams())
    def test_arbitrary_chunkings_conserve_everything(self, stream):
        table, chunks, boundaries = stream
        tracker = VLITracker(table, boundaries)
        for chunk in chunks:
            tracker.on_chunk(*chunk)
        tracker.finish()
        intervals = tracker.intervals
        assert len(intervals) == len(boundaries) + 1
        assert sum(i.instructions for i in intervals) == sum(
            c[2] for c in chunks
        )
        assert math.isclose(
            sum(i.cycles for i in intervals),
            sum(c[3] for c in chunks),
            rel_tol=1e-9, abs_tol=1e-6,
        )
        assert math.isclose(
            sum(i.dram_accesses for i in intervals),
            sum(c[4] for c in chunks),
            rel_tol=1e-9, abs_tol=1e-6,
        )


class TestPhaseWeightProperties:
    @_SETTINGS
    @given(data=st.data(),
           n=st.integers(min_value=1, max_value=40))
    def test_weights_sum_to_one(self, data, n):
        counts = data.draw(st.lists(
            st.integers(min_value=0, max_value=10**9),
            min_size=n, max_size=n,
        ))
        if sum(counts) == 0:
            with pytest.raises(MappingError):
                phase_weights(counts, [0] * n)
            return
        labels = data.draw(st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=n, max_size=n,
        ))
        weights = phase_weights(counts, labels)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(w >= 0.0 for w in weights.values())
        assert set(weights) == {
            label for label, count in zip(labels, counts)
        }

    @_SETTINGS
    @given(data=st.data(),
           n=st.integers(min_value=1, max_value=20))
    def test_weights_roundtrip_through_cache(self, data, n, tmp_path_factory):
        counts = data.draw(st.lists(
            st.integers(min_value=1, max_value=10**6),
            min_size=n, max_size=n,
        ))
        labels = data.draw(st.lists(
            st.integers(min_value=0, max_value=5),
            min_size=n, max_size=n,
        ))
        weights = phase_weights(counts, labels)
        cache = ProfileCache(tmp_path_factory.mktemp("cache"))
        stored = cache.get_or_compute(
            "weights", (counts, labels), lambda: weights
        )
        reloaded = cache.get_or_compute(
            "weights", (counts, labels), lambda: None
        )
        assert cache.stats.hits == 1
        # Bit-exact: pickling through the cache must not perturb floats.
        assert pickle.dumps(reloaded) == pickle.dumps(weights)
        assert stored == reloaded == weights
