"""Tests for repro.compilation.lowering and repro.compilation.binary."""

import pytest

from repro.compilation.binary import (
    Binary,
    BlockKind,
    LBlock,
    LCall,
    LLoop,
    LoweredBlock,
    validate_binary,
)
from repro.compilation.compiler import compile_program
from repro.compilation.lowering import (
    DATA_REGION_BASE,
    STACK_REGION_BASE,
    base_cpi,
    kernel_scaling,
    lower_program,
    scaled_instructions,
)
from repro.compilation.targets import (
    TARGET_32O,
    TARGET_32U,
    TARGET_64O,
    TARGET_64U,
)
from repro.errors import CompilationError
from repro.programs.behaviors import AccessKind, pointer_chasing, streaming
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    finalize_program,
)


@pytest.fixture(scope="module")
def simple_program():
    leaf = Procedure(
        name="leaf",
        body=(Compute("leaf_c", instructions=30,
                      behavior=streaming(8192, 3)),),
        inlinable=False,
    )
    main = Procedure(
        name="main",
        body=(
            Compute("init", instructions=50,
                    behavior=pointer_chasing(65536, 2)),
            Loop(
                "loop",
                trips=5,
                body=(
                    Call("call_leaf", callee="leaf"),
                    Compute("work", instructions=40,
                            behavior=streaming(4096, 2)),
                ),
                unrollable=False,
                splittable=False,
            ),
        ),
    )
    return finalize_program(
        Program(name="low", procedures={"main": main, "leaf": leaf},
                entry="main")
    )


class TestKernelScaling:
    def test_deterministic(self):
        compute = Compute("k", instructions=100, behavior=streaming(4096))
        a = kernel_scaling("prog", compute)
        b = kernel_scaling("prog", compute)
        assert a == b

    def test_o0_always_inflates(self):
        compute = Compute("k", instructions=100, behavior=streaming(4096))
        scale = kernel_scaling("prog", compute)
        assert scale.o0_mult > 1.5
        assert scale.o2_mult < 1.0

    def test_unoptimized_executes_more_instructions(self, simple_program):
        compute = simple_program.procedures["leaf"].body[0]
        o0 = scaled_instructions("low", compute, TARGET_32U)
        o2 = scaled_instructions("low", compute, TARGET_32O)
        assert o0 > o2

    def test_pointer_heavy_kernels_may_grow_on_64bit(self):
        compute = Compute("k", instructions=100,
                          behavior=pointer_chasing(4096))
        scale = kernel_scaling("prog", compute)
        assert scale.x64_mult >= 0.95

    def test_compute_kernels_shrink_on_64bit(self):
        compute = Compute("k", instructions=100, behavior=streaming(4096))
        scale = kernel_scaling("prog", compute)
        assert scale.x64_mult < 1.0

    def test_minimum_instructions(self):
        compute = Compute("k", instructions=1, behavior=streaming(4096))
        assert scaled_instructions("p", compute, TARGET_32O) >= 4


class TestBaseCPI:
    def test_deterministic(self):
        assert base_cpi("p", "b", TARGET_32U) == base_cpi("p", "b", TARGET_32U)

    def test_positive(self):
        for target in (TARGET_32U, TARGET_32O, TARGET_64U, TARGET_64O):
            assert base_cpi("p", "blk", target) > 0

    def test_optimized_code_stalls_more_per_instruction(self):
        # Denser optimized code carries more dependent work per
        # instruction on an in-order core.
        assert base_cpi("p", "b", TARGET_32O) > base_cpi("p", "b", TARGET_32U)


class TestLowering:
    def test_every_procedure_has_entry_block(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        for proc in binary.procedures.values():
            assert binary.block(proc.entry_block).kind is BlockKind.PROC_ENTRY

    def test_loop_gets_entry_and_branch_blocks(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        loop = next(
            stmt for stmt in binary.procedures["main"].body
            if isinstance(stmt, LLoop)
        )
        assert binary.block(loop.entry_block).kind is BlockKind.LOOP_ENTRY
        assert binary.block(loop.branch_block).kind is BlockKind.LOOP_BRANCH

    def test_call_gets_call_block(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        loop = next(
            stmt for stmt in binary.procedures["main"].body
            if isinstance(stmt, LLoop)
        )
        call = next(s for s in loop.body if isinstance(s, LCall))
        assert binary.block(call.call_block).kind is BlockKind.CALL
        assert call.callee == "leaf"

    def test_overhead_blocks_bigger_at_o0(self, simple_program):
        o0 = lower_program(simple_program, TARGET_32U)
        o2 = lower_program(simple_program, TARGET_32O)

        def entry_size(binary):
            return binary.block(binary.procedures["main"].entry_block).instructions

        assert entry_size(o0) > entry_size(o2)

    def test_o0_computes_have_stack_traffic(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        compute_blocks = [
            block for block in binary.blocks.values()
            if block.kind is BlockKind.COMPUTE
        ]
        for block in compute_blocks:
            kinds = {spec.kind for spec in block.accesses}
            assert AccessKind.STACK in kinds

    def test_o2_computes_have_no_stack_traffic(self, simple_program):
        binary = lower_program(simple_program, TARGET_32O)
        for block in binary.blocks.values():
            if block.kind is BlockKind.COMPUTE:
                kinds = {spec.kind for spec in block.accesses}
                assert AccessKind.STACK not in kinds

    def test_overhead_blocks_never_touch_memory(self, simple_program):
        # The trackers' bulk arithmetic relies on this invariant.
        for target in (TARGET_32U, TARGET_64O):
            binary = lower_program(simple_program, target)
            for block in binary.blocks.values():
                if block.kind is not BlockKind.COMPUTE:
                    assert block.accesses == ()

    def test_pointer_footprints_scale_on_64bit(self, simple_program):
        b32 = lower_program(simple_program, TARGET_32U)
        b64 = lower_program(simple_program, TARGET_64U)

        def chase_footprint(binary):
            for block in binary.blocks.values():
                for spec in block.accesses:
                    if spec.kind is AccessKind.POINTER_CHASE:
                        return spec.footprint
            raise AssertionError("no pointer-chase spec found")

        assert chase_footprint(b64) > chase_footprint(b32)

    def test_stream_footprints_do_not_scale(self, simple_program):
        b32 = lower_program(simple_program, TARGET_32U)
        b64 = lower_program(simple_program, TARGET_64U)

        def stream_footprints(binary):
            return sorted(
                spec.footprint
                for block in binary.blocks.values()
                for spec in block.accesses
                if spec.kind is AccessKind.STREAM
            )

        assert stream_footprints(b32) == stream_footprints(b64)

    def test_data_regions_do_not_overlap(self, simple_program):
        binary = lower_program(simple_program, TARGET_64U)
        regions = {}
        for block in binary.blocks.values():
            for spec in block.accesses:
                regions[spec.stream_id] = (spec.base, spec.footprint)
        placed = sorted(regions.values())
        for (base_a, size_a), (base_b, _) in zip(placed, placed[1:]):
            assert base_a + size_a <= base_b

    def test_data_and_stack_regions_separated(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        for block in binary.blocks.values():
            for spec in block.accesses:
                if spec.kind is AccessKind.STACK:
                    assert spec.base >= STACK_REGION_BASE
                else:
                    assert DATA_REGION_BASE <= spec.base < STACK_REGION_BASE

    def test_block_ids_dense_from_zero(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        assert sorted(binary.blocks) == list(range(len(binary.blocks)))

    def test_debug_lines_preserved(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        loop = next(
            stmt for stmt in binary.procedures["main"].body
            if isinstance(stmt, LLoop)
        )
        meta = binary.loop(loop.loop_id)
        source_loop = simple_program.procedures["main"].body[1]
        assert meta.location == source_loop.location

    def test_symbols_cover_all_procedures(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        assert binary.symbols == frozenset(binary.procedures)

    def test_requires_finalized_program(self):
        main = Procedure(name="main", body=(Compute("c", instructions=1),))
        raw = Program(name="p", procedures={"main": main}, entry="main")
        with pytest.raises(CompilationError, match="finalized"):
            lower_program(raw, TARGET_32U)


class TestBinaryValidation:
    def test_binary_name(self, simple_program):
        binary = lower_program(simple_program, TARGET_32O)
        assert binary.name == "low/32o"

    def test_unknown_block_lookup(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        with pytest.raises(CompilationError, match="unknown block"):
            binary.block(999_999)

    def test_unknown_loop_lookup(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        with pytest.raises(CompilationError, match="unknown loop"):
            binary.loop(999_999)

    def test_lowered_block_rejects_zero_instructions(self):
        with pytest.raises(CompilationError):
            LoweredBlock(block_id=0, kind=BlockKind.COMPUTE,
                         instructions=0, base_cpi=1.0)

    def test_validate_catches_missing_callee(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        procedures = dict(binary.procedures)
        del procedures["leaf"]
        broken = Binary(
            program_name=binary.program_name,
            target=binary.target,
            entry=binary.entry,
            procedures=procedures,
            blocks=binary.blocks,
            loops=binary.loops,
            symbols=frozenset(procedures),
        )
        with pytest.raises(CompilationError, match="missing procedure"):
            validate_binary(broken)

    def test_iter_loops_of_finds_nested(self, simple_program):
        binary = lower_program(simple_program, TARGET_32U)
        loops = binary.iter_loops_of("main")
        assert len(loops) == 1


class TestOptimizedLowering:
    def test_compile_program_returns_report_at_o2(self, simple_program):
        _, report = compile_program(simple_program, TARGET_32O)
        assert report is not None

    def test_compile_program_no_report_at_o0(self, simple_program):
        _, report = compile_program(simple_program, TARGET_32U)
        assert report is None

    def test_both_o2_binaries_make_same_decisions(self, simple_program):
        _, report32 = compile_program(simple_program, TARGET_32O)
        _, report64 = compile_program(simple_program, TARGET_64O)
        assert report32 == report64
