"""Tests for repro.simpoint.kmeans and repro.simpoint.bic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ClusteringError
from repro.simpoint.bic import bic_score
from repro.simpoint.kmeans import weighted_kmeans


def _three_blobs(n_per=20, seed=7):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.vstack([
        center + rng.normal(scale=0.3, size=(n_per, 2))
        for center in centers
    ])
    return points


class TestWeightedKMeans:
    def test_recovers_separated_blobs(self):
        points = _three_blobs()
        result = weighted_kmeans(points, 3, seed=1)
        # Each blob's 20 points share a label.
        labels = result.labels
        blob_labels = [set(labels[i * 20:(i + 1) * 20]) for i in range(3)]
        assert all(len(s) == 1 for s in blob_labels)
        assert len(set.union(*blob_labels)) == 3

    def test_k1_centroid_is_weighted_mean(self):
        points = np.array([[0.0], [10.0]])
        weights = np.array([3.0, 1.0])
        result = weighted_kmeans(points, 1, weights)
        assert result.centroids[0, 0] == pytest.approx(2.5)

    def test_inertia_decreases_with_k(self):
        points = _three_blobs()
        inertias = [
            weighted_kmeans(points, k, seed=3).inertia for k in (1, 2, 3)
        ]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_deterministic_for_fixed_seed(self):
        points = _three_blobs()
        a = weighted_kmeans(points, 3, seed=42)
        b = weighted_kmeans(points, 3, seed=42)
        assert np.array_equal(a.labels, b.labels)

    def test_weights_pull_centroids(self):
        points = np.array([[0.0], [1.0], [10.0], [11.0]])
        heavy_left = np.array([100.0, 100.0, 1.0, 1.0])
        result = weighted_kmeans(points, 1, heavy_left)
        assert result.centroids[0, 0] < 2.0

    def test_k_equal_n_gives_zero_inertia(self):
        points = np.array([[0.0], [5.0], [9.0]])
        result = weighted_kmeans(points, 3)
        assert result.inertia == pytest.approx(0.0)
        assert len(set(result.labels.tolist())) == 3

    def test_rejects_k_above_n(self):
        with pytest.raises(ClusteringError):
            weighted_kmeans(np.zeros((2, 2)), 3)

    def test_rejects_zero_k(self):
        with pytest.raises(ClusteringError):
            weighted_kmeans(np.zeros((2, 2)), 0)

    def test_rejects_empty_matrix(self):
        with pytest.raises(ClusteringError):
            weighted_kmeans(np.zeros((0, 2)), 1)

    def test_rejects_negative_weights(self):
        with pytest.raises(ClusteringError):
            weighted_kmeans(np.zeros((3, 2)), 1, np.array([1.0, -1.0, 1.0]))

    def test_rejects_wrong_weight_shape(self):
        with pytest.raises(ClusteringError):
            weighted_kmeans(np.zeros((3, 2)), 1, np.array([1.0, 1.0]))

    def test_identical_points_no_crash(self):
        points = np.ones((10, 3))
        result = weighted_kmeans(points, 3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(min_value=2, max_value=30),
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_every_label_in_range_and_every_cluster_usable(self, n, k, seed):
        if k > n:
            k = n
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(n, 4))
        result = weighted_kmeans(points, k, seed=seed)
        assert result.labels.shape == (n,)
        assert set(result.labels.tolist()) <= set(range(k))
        assert result.inertia >= 0.0

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_inertia_is_weighted_sum_of_squares(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(12, 3))
        weights = rng.uniform(0.5, 2.0, size=12)
        result = weighted_kmeans(points, 3, weights, seed=seed)
        manual = 0.0
        for i in range(12):
            diff = points[i] - result.centroids[result.labels[i]]
            manual += weights[i] * float(diff @ diff)
        assert result.inertia == pytest.approx(manual, rel=1e-9)


class TestBIC:
    def test_prefers_true_k_on_blobs(self):
        points = _three_blobs()
        weights = np.ones(points.shape[0])
        scores = {}
        for k in range(1, 7):
            result = weighted_kmeans(points, k, weights, seed=k)
            scores[k] = bic_score(points, result, weights)
        assert max(scores, key=scores.get) == 3

    def test_higher_is_better_orientation(self):
        points = _three_blobs()
        weights = np.ones(points.shape[0])
        bad = weighted_kmeans(points, 1, weights, seed=0)
        good = weighted_kmeans(points, 3, weights, seed=0)
        assert bic_score(points, good, weights) > bic_score(points, bad,
                                                            weights)

    def test_rejects_mismatched_labels(self):
        points = _three_blobs()
        result = weighted_kmeans(points, 2, seed=0)
        with pytest.raises(ClusteringError):
            bic_score(points[:10], result)

    def test_weighted_reduces_to_unweighted(self):
        points = _three_blobs()
        result = weighted_kmeans(points, 3, seed=0)
        unweighted = bic_score(points, result)
        ones = bic_score(points, result, np.ones(points.shape[0]))
        assert unweighted == pytest.approx(ones)

    def test_degenerate_zero_variance(self):
        points = np.ones((10, 2))
        result = weighted_kmeans(points, 1)
        score = bic_score(points, result)
        assert np.isfinite(score)
