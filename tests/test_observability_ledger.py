"""Run ledger, manifest diffing, and the drift sentinel."""

import json

import pytest

from repro.cli import main
from repro.errors import FileFormatError
from repro.observability.diff import (
    DriftThresholds,
    check_drift,
    diff_manifests,
    diff_runs,
    render_diff,
    render_violations,
    thresholds_from_options,
)
from repro.observability.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    entry_from_manifest,
    render_entries,
)
from repro.observability.manifest import build_manifest
from repro.observability.metrics import Registry


def _manifest(
    run_id,
    *,
    fingerprint="fp-aaaa",
    error=0.02,
    k=3,
    stage_seconds=1.0,
    total_seconds=2.0,
    hit_rate=0.8,
    bias=0.01,
    coverage=0.9,
    min_confidence=0.8,
    created_at=None,
    jobs=None,
):
    registry = Registry()
    registry.counter("simpoint.kmeans_runs").inc(7)
    for name, value in (jobs or {}).items():
        registry.counter(f"jobs.{name}").inc(value)
    for value in (1.0, 3.0, 5.0, 17.0):
        registry.histogram("trace.replay_batch_events").observe(value)
    manifest = build_manifest(
        total_seconds=total_seconds,
        stages={"profile": stage_seconds, "cluster": 0.5},
        metrics_snapshot=registry.snapshot(),
        clusterings={"art/32u": {"k": k, "n_points": k,
                                 "bic_scores": [1.0, 2.0]}},
        errors={"art/32u": {"fli_cpi_error": error}},
        bias={"art/32u": {"0": {"weight": 0.6, "true_cpi": 1.1,
                                "sp_cpi": 1.1 + bias, "bias": bias}}},
        matching={"art": {
            "threshold": 0.6,
            "min_confidence": min_confidence,
            "fuzzy_procedures": 0,
            "fuzzy_loops": 1,
            "low_confidence_dropped": 0,
            "min_pair_coverage": coverage,
            "pairs": {"art/32u|art/32o": {
                "matched_a": 9, "candidates_a": 10,
                "matched_b": 9, "candidates_b": 10,
                "coverage": coverage,
            }},
        }},
        config_fingerprint=fingerprint,
        command=["summary", "art"],
        run_id=run_id,
    )
    manifest["cache"] = {
        "hits": 8, "misses": 2, "hit_rate": hit_rate,
        "bytes_read": 100, "bytes_written": 50,
    }
    if created_at is not None:
        manifest["created_at"] = created_at
    return manifest


def _write(tmp_path, name, manifest):
    path = tmp_path / name
    path.write_text(json.dumps(manifest))
    return path


class TestEntryFromManifest:
    def test_flattens_the_fields_comparison_needs(self):
        entry = entry_from_manifest(_manifest("run-a"))
        assert entry.run_id == "run-a"
        assert entry.config_fingerprint == "fp-aaaa"
        assert entry.stages == {"profile": 1.0, "cluster": 0.5}
        assert entry.clusterings == {"art/32u": {"k": 3, "n_points": 3}}
        assert entry.errors == {"art/32u": {"fli_cpi_error": 0.02}}
        assert entry.bias["art/32u"]["0"]["bias"] == 0.01
        assert entry.counters == {"simpoint.kmeans_runs": 7}
        summary = entry.histograms["trace.replay_batch_events"]
        assert summary["count"] == 4
        assert summary["p50"] == pytest.approx(2.0 ** 1.5)
        assert summary["p99"] == 17.0  # clamped to the observed max

    def test_indexes_upgraded_v1_manifests(self):
        manifest = _manifest("ignored")
        manifest["schema"] = "repro.manifest/v1"
        del manifest["run_id"]
        del manifest["bias"]
        entry = entry_from_manifest(manifest)
        assert entry.run_id.startswith("v1-")
        assert entry.bias == {}


class TestRunLedger:
    def test_log_list_and_lookup(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        path = _write(tmp_path, "a.json", _manifest("run-a"))
        entry = ledger.log_path(path)
        assert entry.manifest_path == str(path.resolve())
        ledger.log_manifest(_manifest("run-b", error=0.03))
        runs = [e.run_id for e in ledger.entries()]
        assert runs == ["run-a", "run-b"]
        assert ledger.entry("run-b").errors["art/32u"]["fli_cpi_error"] == 0.03
        with pytest.raises(FileFormatError, match="no ledger entry"):
            ledger.entry("run-zzz")
        assert "run-a" in render_entries(ledger.entries())

    def test_duplicate_run_id_is_refused(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.log_manifest(_manifest("run-a"))
        with pytest.raises(FileFormatError, match="already logged"):
            ledger.log_manifest(_manifest("run-a"))
        assert len(ledger.entries()) == 1

    def test_baseline_is_latest_earlier_same_fingerprint(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.log_manifest(_manifest("run-a"))
        ledger.log_manifest(_manifest("run-other", fingerprint="fp-bbbb"))
        ledger.log_manifest(_manifest("run-b"))
        baseline = ledger.baseline_for("fp-aaaa", exclude_run_id="run-c")
        assert baseline.run_id == "run-b"
        # A run is never its own baseline.
        assert ledger.baseline_for(
            "fp-bbbb", exclude_run_id="run-other"
        ) is None
        assert ledger.baseline_for(None) is None

    def test_foreign_schema_records_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.log_manifest(_manifest("run-a"))
        with path.open("a") as handle:
            handle.write(json.dumps(
                {"schema": "repro.ledger/v99", "run_id": "future"}
            ) + "\n")
        assert [e.run_id for e in ledger.entries()] == ["run-a"]

    def test_corrupt_line_names_the_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.log_manifest(_manifest("run-a"))
        with path.open("a") as handle:
            handle.write("{not json\n")
        with pytest.raises(FileFormatError, match=r":2: corrupt"):
            ledger.entries()

    def test_missing_file_is_an_empty_ledger(self, tmp_path):
        assert RunLedger(tmp_path / "absent.jsonl").entries() == []


class TestDiff:
    def test_identical_runs_have_no_changed_deltas(self):
        manifest = _manifest("run-a", created_at=1.0)
        diff = diff_manifests(manifest, manifest)
        assert diff.fingerprints_match
        assert diff.changed() == ()
        assert "(no differences)" in render_diff(diff)

    def test_changed_fields_land_in_their_sections(self):
        diff = diff_manifests(
            _manifest("run-a"),
            _manifest("run-b", error=0.05, k=4, stage_seconds=3.0),
        )
        changed = {f"{d.section}:{d.field}" for d in diff.changed()}
        assert "errors:art/32u.fli_cpi_error" in changed
        assert "clusterings:art/32u.k" in changed
        assert "stages:profile" in changed
        delta = next(
            d for d in diff.changed()
            if d.field == "art/32u.fli_cpi_error"
        )
        assert delta.absolute == pytest.approx(0.03)
        assert delta.relative == pytest.approx(1.5)
        rendered = render_diff(diff)
        assert "[errors]" in rendered and "-> 0.05" in rendered

    def test_mismatched_fingerprints_are_flagged(self):
        diff = diff_manifests(
            _manifest("run-a"),
            _manifest("run-b", fingerprint="fp-bbbb"),
        )
        assert not diff.fingerprints_match
        assert "DIFFERENT" in render_diff(diff)

    def test_fields_present_on_one_side_only(self):
        old = _manifest("run-a")
        new = _manifest("run-b")
        new["errors"]["art/64u"] = {"fli_cpi_error": 0.01}
        delta = next(
            d for d in diff_manifests(old, new).changed()
            if d.field == "art/64u.fli_cpi_error"
        )
        assert delta.old is None and delta.new == 0.01
        assert delta.absolute is None


class TestDriftSentinel:
    def _diff(self, old_kwargs=None, new_kwargs=None):
        return diff_runs(
            entry_from_manifest(_manifest("run-a", **(old_kwargs or {}))),
            entry_from_manifest(_manifest("run-b", **(new_kwargs or {}))),
        )

    def test_identical_runs_pass(self):
        violations = check_drift(self._diff())
        assert violations == []
        assert "passed" in render_violations(violations)

    def test_error_regression_is_accuracy_drift(self):
        violations = check_drift(self._diff(new_kwargs={"error": 0.05}))
        assert [v.kind for v in violations] == ["accuracy"]
        assert "fli_cpi_error" in violations[0].delta.field
        assert "FAILED" in render_violations(violations)

    def test_error_improvement_is_not_drift(self):
        assert check_drift(self._diff(new_kwargs={"error": 0.001})) == []

    def test_error_magnitude_is_what_matters(self):
        # -0.05 is a *worse* error than +0.02 even though it is smaller.
        violations = check_drift(self._diff(new_kwargs={"error": -0.05}))
        assert [v.kind for v in violations] == ["accuracy"]

    def test_bias_shift_is_accuracy_drift(self):
        violations = check_drift(self._diff(new_kwargs={"bias": 0.2}))
        kinds = {v.kind for v in violations}
        assert "accuracy" in kinds
        assert any(v.delta.field.endswith(".bias") for v in violations)

    def test_k_flip_is_decision_drift(self):
        violations = check_drift(self._diff(new_kwargs={"k": 4}))
        assert any(v.kind == "decision" for v in violations)
        relaxed = check_drift(
            self._diff(new_kwargs={"k": 4}),
            DriftThresholds(forbid_k_change=False),
        )
        assert all(v.kind != "decision" for v in relaxed)

    def test_stage_slowdown_needs_both_margins(self):
        # 3x slower and +2.0s absolute: fires.
        violations = check_drift(self._diff(new_kwargs={"stage_seconds": 3.0}))
        assert any(
            v.kind == "performance" and v.delta.field == "profile"
            for v in violations
        )
        # Huge relative but tiny absolute slowdown: jitter, not drift.
        small = check_drift(self._diff(
            old_kwargs={"stage_seconds": 0.01},
            new_kwargs={"stage_seconds": 0.05},
        ))
        assert all(v.delta.field != "profile" for v in small)
        # Large absolute but modest relative slowdown: within tolerance.
        modest = check_drift(self._diff(
            old_kwargs={"stage_seconds": 10.0},
            new_kwargs={"stage_seconds": 14.0},
        ))
        assert all(v.delta.field != "profile" for v in modest)

    def test_total_time_regression_fires(self):
        violations = check_drift(
            self._diff(new_kwargs={"total_seconds": 10.0})
        )
        assert any(
            v.delta.field == "total_seconds" for v in violations
        )

    def test_hit_rate_drop_is_performance_drift(self):
        violations = check_drift(self._diff(new_kwargs={"hit_rate": 0.5}))
        assert any(
            v.kind == "performance" and v.delta.field == "hit_rate"
            for v in violations
        )
        # Warmer cache on the second run is fine.
        assert check_drift(self._diff(new_kwargs={"hit_rate": 1.0})) == []

    def test_thresholds_from_options_ignores_nones(self):
        thresholds = thresholds_from_options({
            "max_error_increase": 0.5,
            "max_bias_shift": None,
            "manifest": "ignored-non-threshold-key",
        })
        assert thresholds.max_error_increase == 0.5
        assert thresholds.max_bias_shift == DriftThresholds().max_bias_shift


class TestReliabilityDrift:
    """The job service's receipt-derived counters gate the sentinel."""

    def _diff(self, old_jobs=None, new_jobs=None):
        return diff_runs(
            entry_from_manifest(_manifest("run-a", jobs=old_jobs)),
            entry_from_manifest(_manifest("run-b", jobs=new_jobs)),
        )

    def test_clean_job_counters_pass(self):
        diff = self._diff(
            new_jobs={"completed": 8, "failed": 0, "retries": 1}
        )
        assert check_drift(diff) == []

    def test_any_failed_job_is_reliability_drift(self):
        diff = self._diff(new_jobs={"completed": 7, "failed": 1})
        violations = check_drift(diff)
        assert [v.kind for v in violations] == ["reliability"]
        assert violations[0].delta.field == "jobs.failure_rate"
        assert "failure rate" in violations[0].message

    def test_exhausted_jobs_count_as_failures(self):
        diff = self._diff(new_jobs={"completed": 7, "exhausted": 1})
        assert [v.kind for v in check_drift(diff)] == ["reliability"]

    def test_excessive_retries_are_reliability_drift(self):
        diff = self._diff(new_jobs={"completed": 4, "retries": 3})
        violations = check_drift(diff)
        assert [v.delta.field for v in violations] == ["jobs.retry_rate"]

    def test_bounds_are_absolute_not_deltas(self):
        # An equally-unhealthy baseline does not excuse the candidate.
        diff = self._diff(
            old_jobs={"completed": 7, "failed": 1},
            new_jobs={"completed": 7, "failed": 1},
        )
        assert [v.kind for v in check_drift(diff)] == ["reliability"]

    def test_runs_without_job_counters_are_exempt(self):
        assert check_drift(self._diff()) == []

    def test_thresholds_are_tunable(self):
        diff = self._diff(new_jobs={"completed": 7, "failed": 1})
        relaxed = check_drift(
            diff, DriftThresholds(max_job_failure_rate=0.2)
        )
        assert relaxed == []

    def test_thresholds_from_options_picks_up_job_rates(self):
        thresholds = thresholds_from_options({
            "max_job_failure_rate": 0.1,
            "max_job_retry_rate": 2.0,
        })
        assert thresholds.max_job_failure_rate == 0.1
        assert thresholds.max_job_retry_rate == 2.0

    def test_cli_check_gates_on_job_failures(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        baseline = _write(tmp_path, "a.json", _manifest("run-a"))
        unreliable = _write(
            tmp_path, "bad.json",
            _manifest("run-bad", jobs={"completed": 7, "failed": 1}),
        )
        assert main(["ledger", "--ledger", ledger, "log", str(baseline)]) == 0
        capsys.readouterr()
        assert main([
            "ledger", "--ledger", ledger, "check", str(unreliable)
        ]) == 1
        assert "failure rate" in capsys.readouterr().out
        # The CLI flag relaxes the tolerance.
        assert main([
            "ledger", "--ledger", ledger, "check",
            "--max-job-failure-rate", "0.2", str(unreliable),
        ]) == 0


class TestAppendLocking:
    """Regression: the ledger used to append via a buffered write that
    the OS could interleave with a concurrent writer's; it now goes
    through a single O_APPEND write under an advisory lock. (The
    multi-process hammering lives in tests/test_runtime_jobs.py.)"""

    def test_append_line_is_one_newline_terminated_write(self, tmp_path):
        from repro.runtime.locking import append_line

        path = tmp_path / "log.jsonl"
        append_line(path, "alpha")
        append_line(path, "beta\n")  # trailing newline not doubled
        assert path.read_text() == "alpha\nbeta\n"

    def test_file_lock_uses_a_sidecar_that_survives(self, tmp_path):
        from repro.runtime.locking import file_lock, lock_path_for

        path = tmp_path / "ledger.jsonl"
        with file_lock(path):
            assert lock_path_for(path).exists()
        # The sidecar is never unlinked: unlinking would let a late
        # locker grab a fresh inode while another holds the old one.
        assert lock_path_for(path).exists()
        with file_lock(path):  # re-lockable after release
            pass

    def test_log_manifest_writes_a_single_locked_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.log_manifest(_manifest("run-a"))
        ledger.log_manifest(_manifest("run-b"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # each line parses on its own


class TestMatchingDrift:
    """Matcher coverage/confidence regressions trip the sentinel."""

    def _diff(self, old_kwargs=None, new_kwargs=None):
        return diff_runs(
            entry_from_manifest(_manifest("run-a", **(old_kwargs or {}))),
            entry_from_manifest(_manifest("run-b", **(new_kwargs or {}))),
        )

    def test_matching_rows_flatten_for_the_differ(self):
        entry = entry_from_manifest(_manifest("run-a", coverage=0.9))
        row = entry.matching["art"]
        assert row["min_pair_coverage"] == 0.9
        assert row["coverage[art/32u|art/32o]"] == 0.9
        assert row["min_confidence"] == 0.8
        assert "pairs" not in row  # nested table is flattened away

    def test_matching_deltas_land_in_their_section(self):
        diff = self._diff(new_kwargs={"coverage": 0.7})
        changed = {d.field for d in diff.section("matching") if d.changed}
        assert "art.min_pair_coverage" in changed
        assert "art.coverage[art/32u|art/32o]" in changed

    def test_coverage_drop_is_accuracy_drift(self):
        violations = check_drift(self._diff(new_kwargs={"coverage": 0.8}))
        assert violations, "a 0.1 coverage drop must fire at default 0.02"
        assert all(v.kind == "accuracy" for v in violations)
        assert any("coverage" in v.message for v in violations)

    def test_coverage_improvement_is_not_drift(self):
        assert check_drift(self._diff(new_kwargs={"coverage": 0.95})) == []

    def test_small_coverage_wobble_is_tolerated(self):
        assert check_drift(
            self._diff(new_kwargs={"coverage": 0.89}),
        ) == []

    def test_confidence_drop_is_accuracy_drift(self):
        violations = check_drift(
            self._diff(new_kwargs={"min_confidence": 0.6})
        )
        assert [v.kind for v in violations] == ["accuracy"]
        assert "min_confidence" in violations[0].delta.field

    def test_thresholds_are_tunable(self):
        diff = self._diff(new_kwargs={"coverage": 0.8})
        relaxed = check_drift(
            diff, DriftThresholds(max_coverage_drop=0.5)
        )
        assert relaxed == []

    def test_cli_check_fails_on_coverage_regression(
        self, tmp_path, capsys
    ):
        ledger = str(tmp_path / "ledger.jsonl")
        baseline = _write(tmp_path, "a.json", _manifest("run-a"))
        regressed = _write(
            tmp_path, "bad.json", _manifest("run-bad", coverage=0.7)
        )
        assert main(["ledger", "--ledger", ledger, "log", str(baseline)]) == 0
        capsys.readouterr()
        assert main([
            "ledger", "--ledger", ledger, "check", str(regressed)
        ]) == 1
        assert "coverage" in capsys.readouterr().out
        # The CLI flag relaxes the tolerance.
        assert main([
            "ledger", "--ledger", ledger, "check",
            "--max-coverage-drop", "0.5", str(regressed),
        ]) == 0


class TestLedgerCLI:
    def test_log_list_and_check_flow(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        first = _write(tmp_path, "a.json", _manifest("run-a"))
        second = _write(tmp_path, "b.json", _manifest("run-b"))

        assert main(["ledger", "--ledger", ledger, "log", str(first)]) == 0
        assert "logged run run-a" in capsys.readouterr().out

        assert main(["ledger", "--ledger", ledger, "list"]) == 0
        assert "run-a" in capsys.readouterr().out

        # Identical configuration, bit-identical results: check passes
        # against the auto-selected baseline and logs the candidate.
        assert main([
            "ledger", "--ledger", ledger, "check", "--log", str(second)
        ]) == 0
        out = capsys.readouterr().out
        assert "baseline: run-a" in out
        assert "passed" in out and "logged run run-b" in out
        assert main(["ledger", "--ledger", ledger, "list"]) == 0
        assert "run-b" in capsys.readouterr().out

    def test_check_fails_on_injected_regression(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        baseline = _write(tmp_path, "a.json", _manifest("run-a"))
        regressed = _write(
            tmp_path, "bad.json", _manifest("run-bad", error=0.07)
        )
        assert main(["ledger", "--ledger", ledger, "log", str(baseline)]) == 0
        capsys.readouterr()
        assert main([
            "ledger", "--ledger", ledger, "check", "--log", str(regressed)
        ]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "fli_cpi_error" in out
        # A drifting run is never auto-logged.
        assert main(["ledger", "--ledger", ledger, "list"]) == 0
        assert "run-bad" not in capsys.readouterr().out

    def test_check_without_baseline_can_seed_the_ledger(
        self, tmp_path, capsys
    ):
        ledger = str(tmp_path / "ledger.jsonl")
        path = _write(tmp_path, "a.json", _manifest("run-a"))
        assert main([
            "ledger", "--ledger", ledger, "check", "--log", str(path)
        ]) == 0
        out = capsys.readouterr().out
        assert "no baseline" in out and "as the baseline" in out
        assert [e.run_id for e in RunLedger(ledger).entries()] == ["run-a"]

    def test_check_against_explicit_baseline_path(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        baseline = _write(tmp_path, "a.json", _manifest("run-a"))
        candidate = _write(
            tmp_path, "b.json", _manifest("run-b", error=0.09)
        )
        code = main([
            "ledger", "--ledger", ledger, "check",
            "--baseline", str(baseline), str(candidate),
        ])
        assert code == 1
        # A looser tolerance lets the same pair pass.
        code = main([
            "ledger", "--ledger", ledger, "check",
            "--baseline", str(baseline),
            "--max-error-increase", "0.5", str(candidate),
        ])
        assert code == 0

    def test_diff_subcommand_renders_changes(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        first = _write(tmp_path, "a.json", _manifest("run-a"))
        second = _write(tmp_path, "b.json", _manifest("run-b", error=0.05))
        assert main([
            "ledger", "--ledger", ledger, "diff", str(first), str(second)
        ]) == 0
        out = capsys.readouterr().out
        assert "run-a -> run-b" in out and "[errors]" in out

    def test_duplicate_log_is_a_clean_error(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        path = _write(tmp_path, "a.json", _manifest("run-a"))
        assert main(["ledger", "--ledger", ledger, "log", str(path)]) == 0
        capsys.readouterr()
        assert main(["ledger", "--ledger", ledger, "log", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "already logged" in err

    def test_unknown_run_id_is_a_clean_error(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        assert main([
            "ledger", "--ledger", ledger, "diff", "run-x", "run-y"
        ]) == 2
        assert "no ledger entry" in capsys.readouterr().err


def test_ledger_schema_is_stamped_on_every_record(tmp_path):
    path = tmp_path / "ledger.jsonl"
    RunLedger(path).log_manifest(_manifest("run-a"))
    record = json.loads(path.read_text())
    assert record["schema"] == LEDGER_SCHEMA
