"""Ablation: early simulation points (tolerance sweep).

SimPoint's earliest-acceptable-representative variant (the paper's
reference [13]) trades representativeness for earlier simulation
points — less fast-forwarding. This ablation sweeps the tolerance on
gcc's mapped VLI profile (via
`repro.experiments.sweeps.sweep_early_tolerance`) and reports, per
setting, how early the last simulation point lands and what it costs
in CPI accuracy.
"""

from benchmarks.conftest import run_once
from repro.experiments.sweeps import sweep_early_tolerance

TOLERANCES = (0.0, 0.25, 1.0, 1e9)


def test_early_points_tradeoff(benchmark, gcc_run):
    n = len(gcc_run.cross.intervals)
    results = run_once(
        benchmark, lambda: sweep_early_tolerance(gcc_run, TOLERANCES)
    )

    print()
    for tolerance, point in results.items():
        print(
            f"tolerance={tolerance:<8g} last point at interval "
            f"{point.last_point_index:3d}/{n} | "
            f"avg CPI error {point.cpi_error:.3f}"
        )

    last_indices = [results[t].last_point_index for t in TOLERANCES]
    # More tolerance never pushes the last point later...
    assert all(a >= b for a, b in zip(last_indices, last_indices[1:]))
    # ...and the extreme setting lands strictly earlier than classic.
    # (The gain is modest on gcc: its stage pattern repeats from the
    # start of the run, so every phase already has an early member.)
    assert last_indices[-1] < last_indices[0]
    # Even the extreme setting keeps points within the first third of
    # the run — the earliness the variant exists to deliver.
    assert last_indices[-1] <= n / 3
    # Accuracy stays usable even at the extreme (phases are real).
    for tolerance, point in results.items():
        assert point.cpi_error <= 0.30, tolerance
