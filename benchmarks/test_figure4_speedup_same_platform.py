"""Figure 4: speedup error across optimization levels, same platform.

Paper shape (the headline result): mappable SimPoint (VLI) yields a
*lower* speedup-estimation error than per-binary SimPoint (FLI) on
average, for both the 32u->32o and 64u->64o configurations, because
its per-phase biases are consistent across the two binaries and cancel
out of the speedup ratio.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure4_speedup_error_same_platform
from repro.experiments.reporting import render_figure


def test_figure4_speedup_error_same_platform(benchmark, suite_runs):
    data = run_once(
        benchmark, lambda: figure4_speedup_error_same_platform(suite_runs)
    )
    print()
    print(render_figure(data))

    for pair in ("32u32o", "64u64o"):
        fli_avg = data.average(f"fli_{pair}")
        vli_avg = data.average(f"vli_{pair}")
        # The headline: VLI beats FLI on average, by a clear factor.
        assert vli_avg < fli_avg, pair
        assert vli_avg <= 0.5 * fli_avg, pair
        # And VLI's absolute error is small.
        assert vli_avg <= 0.05, pair

    # FLI shows heavy-tail outliers (the paper calls out 12.5%/21.7%).
    worst_fli = max(
        max(data.series["fli_32u32o"]), max(data.series["fli_64u64o"])
    )
    assert worst_fli >= 0.08
