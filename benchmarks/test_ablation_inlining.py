"""Ablation: the Section 3.3 inlining-recovery heuristic.

With the count-signature heuristic enabled, loops whose debug lines
were clobbered by inlining can still become mappable points when their
counts identify them uniquely. The heuristic can never help applu's
solver region — the five PDE procedures have identical counts, which
is exactly the ambiguity the paper describes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS
from repro.core.matching import find_mappable_points
from repro.core.vli import collect_vli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile
from repro.programs.suite import build_benchmark

INTERVAL = 100_000


def _profiles(name):
    program = build_benchmark(name)
    binaries = compile_standard_binaries(program)
    ordered = [binaries[target] for target in STANDARD_TARGETS]
    return ordered, [
        (binary, collect_call_branch_profile(binary)) for binary in ordered
    ]


def test_inlining_recovery_ablation(benchmark):
    def sweep():
        out = {}
        for name in ("gcc", "applu"):
            binaries, profiles = _profiles(name)
            on_set, on_report = find_mappable_points(
                profiles, enable_signature_recovery=True
            )
            off_set, off_report = find_mappable_points(
                profiles, enable_signature_recovery=False
            )
            vlis_on = collect_vli_bbvs(binaries[0], on_set, INTERVAL)
            vlis_off = collect_vli_bbvs(binaries[0], off_set, INTERVAL)
            out[name] = (on_set, on_report, off_set, off_report,
                         vlis_on, vlis_off)
        return out

    results = run_once(benchmark, sweep)

    print()
    for name, (on_set, on_report, off_set, off_report,
               vlis_on, vlis_off) in results.items():
        print(
            f"{name}: markers on/off = {on_set.n_points}/{off_set.n_points}, "
            f"recovered = {on_report.loops_recovered_by_signature}, "
            f"ambiguous = {on_report.loops_dropped_ambiguous}, "
            f"max VLI on/off = "
            f"{max(i.instructions for i in vlis_on):,} / "
            f"{max(i.instructions for i in vlis_off):,}"
        )

    gcc_on, gcc_on_report, gcc_off, _, _, _ = results["gcc"]
    # Recovery finds extra mappable points on gcc...
    assert gcc_on_report.loops_recovered_by_signature >= 1
    assert gcc_on.n_points > gcc_off.n_points

    applu_on, applu_on_report, _, _, vlis_on, vlis_off = results["applu"]
    # ...but cannot disambiguate applu's identical-count PDE loops.
    assert applu_on_report.loops_dropped_ambiguous >= 1
    # The solver region stays marker-free either way: the largest VLI
    # is far above the target in both configurations.
    assert max(i.instructions for i in vlis_on) >= 3 * INTERVAL
    assert max(i.instructions for i in vlis_off) >= 3 * INTERVAL
