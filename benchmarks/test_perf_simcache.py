"""Sweep-level sim-result reuse: cold vs. warm wall time.

The content-keyed simulation cache (:mod:`repro.cmpsim.simcache`) keys
detailed results by (binary content, region boundaries + warmup
policy, CMP$im configuration), so a re-run sweep only re-simulates
cells whose key actually changed. These benchmarks quantify the PR's
acceptance criterion: a warm re-run of the interval-size sweep is at
least 3x faster than the cold run that primed the cache, with
byte-identical error tables against the uncached path.

Execution order matters (uncached -> cold -> warm share state through
the module-level ``RESULTS`` dict); pytest-benchmark runs the tests in
file order, and each later test skips if an earlier stage is missing
(e.g. under ``-k``).
"""

import pickle
import time

import pytest

from repro.experiments.runner import ExperimentConfig, clear_cache
from repro.experiments.sweeps import sweep_interval_sizes
from repro.observability import metrics
from repro.runtime import ProfileCache, runtime_session
from repro.simpoint.simpoint import SimPointConfig

from benchmarks.conftest import run_once

SIZES = (50_000, 100_000, 200_000)
CONFIG = ExperimentConfig(simpoint=SimPointConfig(max_k=3, n_init=2))

#: Tables, wall times, and sim-cache tallies shared across the stages.
RESULTS = {}


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("simcache-bench")


def _timed_sweep(cache):
    """One full interval-size sweep; returns (tables, seconds, sim)."""
    with runtime_session(cache=cache):
        clear_cache()  # drop the in-process memo; only disk may help
        with metrics.scoped_registry() as local:
            start = time.perf_counter()
            tables = sweep_interval_sizes(
                "gcc", list(SIZES), CONFIG, jobs=1
            )
            elapsed = time.perf_counter() - start
    counters = local.snapshot()["counters"]
    sim = {
        key: counters.get(f"cache.sim.{key}", 0)
        for key in ("hits", "misses")
    }
    return tables, elapsed, sim


def test_perf_sweep_uncached(benchmark):
    """Baseline: the sweep with no cache at all."""
    tables, elapsed, sim = run_once(benchmark, lambda: _timed_sweep(None))
    assert sim == {"hits": 0, "misses": 0}
    RESULTS["uncached"] = (tables, elapsed)


def test_perf_sweep_cold(benchmark, shared_cache_dir):
    """First cached sweep: pays full simulation, primes the cache."""
    cache = ProfileCache(shared_cache_dir)
    tables, elapsed, sim = run_once(
        benchmark, lambda: _timed_sweep(cache)
    )
    assert sim["hits"] == 0 and sim["misses"] > 0
    benchmark.extra_info["sim_misses"] = sim["misses"]
    RESULTS["cold"] = (tables, elapsed, sim)


def test_perf_sweep_warm(benchmark, shared_cache_dir):
    """Warm re-run: every detailed simulation served from the cache."""
    if "uncached" not in RESULTS or "cold" not in RESULTS:
        pytest.skip("needs the uncached and cold stages first")
    cache = ProfileCache(shared_cache_dir)
    tables, elapsed, sim = run_once(
        benchmark, lambda: _timed_sweep(cache)
    )
    uncached_tables, _ = RESULTS["uncached"]
    cold_tables, cold_elapsed, cold_sim = RESULTS["cold"]
    # Bit-identical error tables: warm == cold == uncached.
    assert pickle.dumps(tables) == pickle.dumps(cold_tables)
    assert pickle.dumps(tables) == pickle.dumps(uncached_tables)
    assert sim["misses"] == 0
    assert sim["hits"] == cold_sim["misses"]
    benchmark.extra_info["sim_hit_rate"] = 1.0
    benchmark.extra_info["cold_seconds"] = round(cold_elapsed, 3)
    benchmark.extra_info["warm_seconds"] = round(elapsed, 3)
    benchmark.extra_info["speedup"] = round(cold_elapsed / elapsed, 2)
    # The acceptance criterion: warm >= 3x faster than cold.
    assert cold_elapsed >= 3 * elapsed, (
        f"warm sweep not >=3x faster: cold {cold_elapsed:.2f}s vs "
        f"warm {elapsed:.2f}s"
    )
