"""The clustering stage of the gcc sweep: kernels, fan-out, reuse.

Stages re-cluster gcc's FLI profile under several ``max_k`` budgets —
exactly the work :func:`repro.experiments.sweeps.sweep_max_k` redoes
per cell — through each acceleration in turn:

1. reference kernel, serial, uncached (the pre-engine baseline),
2. Hamerly-pruned kernel (bit-identical; records the distance-row
   saving, which at 15 projected dimensions outruns the wall-clock
   saving because the GEMM it avoids is cheap),
3. pruned kernel + parallel restart fan-out (bit-identical),
4. cold content-keyed cache (pays compute, primes the cache),
5. warm cache (reuse ratio 1.0; the PR's acceptance criterion —
   the clustering stage at least 2x faster than the reference run).

Execution order matters (stages share state through the module-level
``RESULTS`` dict); pytest-benchmark runs tests in file order, and each
later test skips if an earlier stage is missing (e.g. under ``-k``).
"""

import pickle
import time

import pytest

from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS
from repro.observability import metrics
from repro.profiling.bbv import collect_fli_bbvs
from repro.programs.suite import build_benchmark
from repro.runtime import ProfileCache
from repro.simpoint.clustercache import cached_choose_clustering
from repro.simpoint.projection import DEFAULT_DIMENSIONS, project
from repro.simpoint.select import choose_clustering
from repro.simpoint.vectors import build_vector_set

from benchmarks.conftest import run_once

#: Fine-grained intervals make the clustering stage the dominant cost.
INTERVAL_SIZE = 5_000
#: The re-clustering budgets of the sweep (one clustering each).
BUDGETS = (6, 8, 10)

#: Choices, wall times, and counters shared across the stages.
RESULTS = {}


@pytest.fixture(scope="module")
def gcc_profile():
    """gcc's projected FLI profile: (points, weights)."""
    program = build_benchmark("gcc")
    binary = compile_standard_binaries(
        program, STANDARD_TARGETS[:1]
    )[STANDARD_TARGETS[0]]
    intervals = collect_fli_bbvs(binary, INTERVAL_SIZE)
    vectors = build_vector_set(intervals)
    points = project(vectors.matrix, DEFAULT_DIMENSIONS, 2007)
    return points, vectors.weights


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("clustering-bench")


def _pickled(choices):
    """Per-choice pickles for bit-identity checks.

    Choices that crossed a process pool or the cache are unpickled
    copies: equal in content, but a *list* of them pickles differently
    than freshly computed ones (the serial list shares interned
    dict-key strings, which pickle memoizes). Per-choice pickles are
    free of that aliasing and compare the actual payload.
    """
    return [pickle.dumps(choice) for choice in choices]


def _timed_stage(points, weights, *, use_pruned, jobs, cache=None):
    """Re-cluster under every budget; (choices, seconds, counters)."""
    with metrics.scoped_registry() as local:
        start = time.perf_counter()
        choices = [
            cached_choose_clustering(
                points, weights, max_k=budget, use_pruned=use_pruned,
                jobs=jobs, cache=cache,
                use_clustering_cache=cache is not None,
            )
            if cache is not None
            else choose_clustering(
                points, weights, max_k=budget, use_pruned=use_pruned,
                jobs=jobs,
            )
            for budget in BUDGETS
        ]
        elapsed = time.perf_counter() - start
    return choices, elapsed, local.snapshot()["counters"]


def test_perf_clustering_reference(benchmark, gcc_profile):
    """Baseline: the reference Lloyd kernel, serial, no cache."""
    points, weights = gcc_profile
    choices, elapsed, counters = run_once(
        benchmark,
        lambda: _timed_stage(points, weights, use_pruned=False, jobs=1),
    )
    assert "simpoint.kmeans_pruned_points" not in counters
    benchmark.extra_info["distance_rows"] = counters[
        "simpoint.kmeans_distance_rows"
    ]
    RESULTS["reference"] = (choices, elapsed, counters)


def test_perf_clustering_pruned(benchmark, gcc_profile):
    """Pruned kernel: bit-identical, fewer distance rows."""
    if "reference" not in RESULTS:
        pytest.skip("needs the reference stage first")
    points, weights = gcc_profile
    choices, elapsed, counters = run_once(
        benchmark,
        lambda: _timed_stage(points, weights, use_pruned=True, jobs=1),
    )
    ref_choices, ref_elapsed, ref_counters = RESULTS["reference"]
    assert _pickled(choices) == _pickled(ref_choices)
    assert counters["simpoint.kmeans_pruned_points"] > 0
    assert (
        counters["simpoint.kmeans_distance_rows"]
        < ref_counters["simpoint.kmeans_distance_rows"]
    )
    benchmark.extra_info["pruned_points"] = counters[
        "simpoint.kmeans_pruned_points"
    ]
    benchmark.extra_info["distance_rows"] = counters[
        "simpoint.kmeans_distance_rows"
    ]
    benchmark.extra_info["row_saving"] = round(
        1
        - counters["simpoint.kmeans_distance_rows"]
        / ref_counters["simpoint.kmeans_distance_rows"],
        3,
    )
    benchmark.extra_info["speedup_vs_reference"] = round(
        ref_elapsed / elapsed, 2
    )
    RESULTS["pruned"] = (choices, elapsed)


def test_perf_clustering_parallel(benchmark, gcc_profile):
    """Pruned kernel + restart fan-out: still bit-identical."""
    if "reference" not in RESULTS:
        pytest.skip("needs the reference stage first")
    points, weights = gcc_profile
    choices, elapsed, _ = run_once(
        benchmark,
        lambda: _timed_stage(points, weights, use_pruned=True, jobs=4),
    )
    ref_choices, ref_elapsed, _ = RESULTS["reference"]
    assert _pickled(choices) == _pickled(ref_choices)
    benchmark.extra_info["speedup_vs_reference"] = round(
        ref_elapsed / elapsed, 2
    )
    RESULTS["parallel"] = (choices, elapsed)


def test_perf_clustering_cold_cache(benchmark, gcc_profile,
                                    shared_cache_dir):
    """First cached sweep: pays full clustering, primes the cache."""
    if "reference" not in RESULTS:
        pytest.skip("needs the reference stage first")
    points, weights = gcc_profile
    cache = ProfileCache(shared_cache_dir)
    choices, elapsed, counters = run_once(
        benchmark,
        lambda: _timed_stage(points, weights, use_pruned=True, jobs=1,
                             cache=cache),
    )
    ref_choices, _, _ = RESULTS["reference"]
    assert _pickled(choices) == _pickled(ref_choices)
    assert counters["cache.clustering.misses"] == len(BUDGETS)
    assert "cache.clustering.hits" not in counters
    RESULTS["cold"] = (choices, elapsed, counters)


def test_perf_clustering_warm_cache(benchmark, gcc_profile,
                                    shared_cache_dir):
    """Warm re-sweep: every clustering served from the cache."""
    if "reference" not in RESULTS or "cold" not in RESULTS:
        pytest.skip("needs the reference and cold stages first")
    points, weights = gcc_profile
    cache = ProfileCache(shared_cache_dir)
    choices, elapsed, counters = run_once(
        benchmark,
        lambda: _timed_stage(points, weights, use_pruned=True, jobs=1,
                             cache=cache),
    )
    ref_choices, ref_elapsed, _ = RESULTS["reference"]
    assert _pickled(choices) == _pickled(ref_choices)
    assert counters["cache.clustering.hits"] == len(BUDGETS)
    assert "cache.clustering.misses" not in counters
    benchmark.extra_info["clustering_reuse_ratio"] = 1.0
    benchmark.extra_info["reference_seconds"] = round(ref_elapsed, 3)
    benchmark.extra_info["warm_seconds"] = round(elapsed, 3)
    benchmark.extra_info["speedup"] = round(ref_elapsed / elapsed, 2)
    # The acceptance criterion: the clustering stage of a repeated
    # sweep runs at least 2x faster than the reference baseline.
    assert ref_elapsed >= 2 * elapsed, (
        f"warm clustering stage not >=2x faster: reference "
        f"{ref_elapsed:.2f}s vs warm {elapsed:.2f}s"
    )
