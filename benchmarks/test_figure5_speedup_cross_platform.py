"""Figure 5: speedup error across platforms (32-bit vs 64-bit).

Paper shape: as in Figure 4, mappable SimPoint's consistent bias makes
cross-platform speedup estimates far more reliable than per-binary
SimPoint's — the paper's worst FLI case here is gcc at 38%.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure5_speedup_error_cross_platform
from repro.experiments.reporting import render_figure


def test_figure5_speedup_error_cross_platform(benchmark, suite_runs):
    data = run_once(
        benchmark, lambda: figure5_speedup_error_cross_platform(suite_runs)
    )
    print()
    print(render_figure(data))

    for pair in ("32u64u", "32o64o"):
        fli_avg = data.average(f"fli_{pair}")
        vli_avg = data.average(f"vli_{pair}")
        assert vli_avg < fli_avg, pair
        assert vli_avg <= 0.5 * fli_avg, pair
        assert vli_avg <= 0.05, pair

    # FLI's heavy tail: at least one benchmark above 15% error.
    worst_fli = max(
        max(data.series["fli_32u64u"]), max(data.series["fli_32o64o"])
    )
    assert worst_fli >= 0.10
