"""Table 1: memory system configuration.

Regenerates the paper's Table 1 from the live simulator configuration
and checks it row by row against the paper's text.
"""

from repro.experiments.reporting import render_table1
from repro.experiments.tables import table1_configuration


def test_table1_configuration(benchmark):
    rows = benchmark(table1_configuration)
    print()
    print(render_table1(rows))

    by_level = {row.level: row for row in rows}
    assert list(by_level) == ["FLC(L1D)", "MLC(L2D)", "LLC(L3D)", "DRAM"]

    l1 = by_level["FLC(L1D)"]
    assert (l1.capacity, l1.associativity, l1.line_size, l1.hit_latency) == (
        "32KB", "2-way", "64 bytes", "3 cycles"
    )
    l2 = by_level["MLC(L2D)"]
    assert (l2.capacity, l2.associativity, l2.hit_latency) == (
        "512KB", "8-way", "14 cycles"
    )
    l3 = by_level["LLC(L3D)"]
    assert (l3.capacity, l3.associativity, l3.hit_latency) == (
        "1024KB", "16-way", "35 cycles"
    )
    assert by_level["DRAM"].hit_latency == "250 cycles"
    for level in ("FLC(L1D)", "MLC(L2D)", "LLC(L3D)"):
        assert by_level[level].policy == "WriteBack"
