"""Figure 2: average interval size for mappable SimPoint (VLI).

Paper shape: per-binary FLI intervals are fixed at the target size;
mappable VLI intervals average near (often below) the target because
intervals built on the unoptimized primary shrink when mapped to the
optimized binaries — and ``applu`` is the outlier, with much larger
intervals because its optimized solver region has no mappable markers
(the five inlined, split PDE procedures).
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure2_interval_sizes
from repro.experiments.reporting import render_figure


def test_figure2_interval_sizes(benchmark, suite_runs, experiment_config):
    data = run_once(benchmark, lambda: figure2_interval_sizes(suite_runs))
    print()
    print(render_figure(data, precision=0))

    target = experiment_config.interval_size
    sizes = dict(zip(data.benchmarks, data.series["VLI"]))

    # applu is the outlier, by a wide margin.
    applu = sizes.pop("applu")
    largest_other = max(sizes.values())
    assert applu == max([applu] + list(sizes.values()))
    assert applu >= 1.8 * largest_other
    assert applu >= 1.2 * target

    # Everything else stays in a sane band around the target: above
    # 40% (mapped intervals shrink ~2.5-3x in optimized binaries, and
    # two of the four binaries are optimized) and below 1.5x.
    for name, size in sizes.items():
        assert 0.4 * target <= size <= 1.5 * target, (name, size)
