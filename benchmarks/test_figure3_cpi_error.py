"""Figure 3: CPI error vs full simulation, per method.

Paper shape: *both* techniques accurately estimate per-binary
performance on average (each binary's own estimate vs its own full
run), with a handful of larger outliers (the paper's figure carries
10.8% and 21.7% callouts). The cross-binary story is in Figures 4-5;
Figure 3 only establishes that VLI does not sacrifice single-binary
accuracy.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure3_cpi_error
from repro.experiments.reporting import render_figure


def test_figure3_cpi_error(benchmark, suite_runs):
    data = run_once(benchmark, lambda: figure3_cpi_error(suite_runs))
    print()
    print(render_figure(data))

    fli_avg = data.average("FLI")
    vli_avg = data.average("VLI")
    # Both methods are accurate on average...
    assert fli_avg <= 0.10
    assert vli_avg <= 0.10
    # ...and comparable to each other.
    assert abs(fli_avg - vli_avg) <= 0.05
    # Outliers exist but stay bounded (paper's worst callout: 21.7%).
    assert max(data.series["FLI"]) <= 0.30
    assert max(data.series["VLI"]) <= 0.30
