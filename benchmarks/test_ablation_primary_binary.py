"""Ablation: which binary is the primary?

The paper (Section 3.2.4) notes the primary binary "can be selected
arbitrarily", but interval sizes expand or contract depending on the
choice: intervals are built at the target size in *primary*
instructions, so when an unoptimized binary is primary, the mapped
intervals shrink in the optimized binaries — and vice versa.
"""

import pytest

from benchmarks.conftest import run_once
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS
from repro.core.pipeline import CrossBinaryConfig, run_cross_binary_simpoint
from repro.programs.suite import build_benchmark
from repro.simpoint.simpoint import SimPointConfig

INTERVAL = 100_000


@pytest.fixture(scope="module")
def gcc_binaries():
    program = build_benchmark("gcc")
    binaries = compile_standard_binaries(program)
    return [binaries[target] for target in STANDARD_TARGETS]


def _average_sizes(result):
    """Average mapped interval size per binary, keyed by label suffix."""
    sizes = {}
    for name, counts in result.interval_instructions.items():
        sizes[name.rsplit("/", 1)[1]] = sum(counts) / len(counts)
    return sizes


def test_primary_binary_choice(benchmark, gcc_binaries):
    def sweep():
        results = {}
        for primary_index in range(4):
            results[primary_index] = run_cross_binary_simpoint(
                gcc_binaries,
                CrossBinaryConfig(
                    interval_size=INTERVAL,
                    simpoint=SimPointConfig(),
                    primary_index=primary_index,
                ),
            )
        return results

    results = run_once(benchmark, sweep)

    print()
    for primary_index, result in results.items():
        sizes = _average_sizes(result)
        print(
            f"primary={STANDARD_TARGETS[primary_index].label}: "
            f"{len(result.intervals)} intervals | avg mapped sizes "
            + ", ".join(f"{k}={v:,.0f}" for k, v in sorted(sizes.items()))
        )

    # Primary = 32u (O0): intervals are >= target in the primary and
    # shrink when mapped to the optimized binaries.
    sizes_u = _average_sizes(results[0])
    assert sizes_u["32u"] >= INTERVAL
    assert sizes_u["32o"] < 0.6 * sizes_u["32u"]

    # Primary = 32o (O2): the mapped intervals *expand* in the
    # unoptimized binaries instead.
    sizes_o = _average_sizes(results[1])
    assert sizes_o["32o"] >= INTERVAL
    assert sizes_o["32u"] > 1.5 * sizes_o["32o"]

    # An optimized primary executes fewer instructions, so the same
    # target size yields fewer intervals.
    assert len(results[1].intervals) < len(results[0].intervals)
