"""Performance micro-benchmarks of the library's hot kernels.

Unlike the exhibit benchmarks (single-round regenerations of the
paper's figures), these are genuine repeated-round timing benchmarks of
the components that dominate a reproduction run: the execution engine,
the BBV profiler, the cache hierarchy, weighted k-means, and the full
detailed simulator.
"""

import numpy as np
import pytest

from repro.cmpsim.hierarchy import MemoryHierarchy
from repro.cmpsim.simulator import CMPSim
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import TARGET_32U
from repro.execution.engine import run_binary
from repro.profiling.bbv import collect_fli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile
from repro.programs.suite import build_benchmark
from repro.simpoint.kmeans import weighted_kmeans


@pytest.fixture(scope="module")
def art_32u():
    program = build_benchmark("art")
    return compile_standard_binaries(program, (TARGET_32U,))[TARGET_32U]


def test_perf_execution_engine(benchmark, art_32u):
    """Functional execution throughput (bulk iteration spans)."""
    totals = benchmark(run_binary, art_32u)
    assert totals.instructions > 1_000_000


def test_perf_bbv_collection(benchmark, art_32u):
    """FLI BBV profiling over a full run."""
    intervals = benchmark(collect_fli_bbvs, art_32u, 100_000)
    assert len(intervals) > 10


def test_perf_call_branch_profile(benchmark, art_32u):
    """Call-and-branch profiling over a full run."""
    profile = benchmark(collect_call_branch_profile, art_32u)
    assert profile.total_instructions > 1_000_000


def test_perf_cache_hierarchy(benchmark):
    """Demand-access throughput of the three-level hierarchy."""
    hierarchy = MemoryHierarchy()
    lines = [(line * 131) % 65_536 for line in range(20_000)]

    def access_all():
        access = hierarchy.access
        for line in lines:
            access(line, False)

    benchmark(access_all)


def test_perf_weighted_kmeans(benchmark):
    """k-means over a SimPoint-sized problem (200 x 15, k=10)."""
    rng = np.random.default_rng(0)
    points = rng.uniform(size=(200, 15))
    weights = rng.uniform(0.5, 2.0, size=200)
    result = benchmark(
        weighted_kmeans, points, 10, weights, 5, 100, 42
    )
    assert result.k == 10


def test_perf_detailed_simulation(benchmark, art_32u):
    """One full CMP$im run (the dominant cost of the harness)."""
    result = benchmark.pedantic(
        lambda: CMPSim(art_32u).run_full(), rounds=1, iterations=2
    )
    assert result.stats.cpi > 0.5
