"""Performance micro-benchmarks of the library's hot kernels.

Unlike the exhibit benchmarks (single-round regenerations of the
paper's figures), these are genuine repeated-round timing benchmarks of
the components that dominate a reproduction run: the execution engine,
the BBV profiler, the cache hierarchy, weighted k-means, and the full
detailed simulator.
"""

import numpy as np
import pytest

from repro.cmpsim.hierarchy import MemoryHierarchy
from repro.cmpsim.simulator import CMPSim
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import TARGET_32U
from repro.execution.engine import run_binary
from repro.profiling.bbv import collect_fli_bbvs
from repro.profiling.callbranch import collect_call_branch_profile
from repro.programs.suite import build_benchmark
from repro.simpoint.kmeans import weighted_kmeans


@pytest.fixture(scope="module")
def art_32u():
    program = build_benchmark("art")
    return compile_standard_binaries(program, (TARGET_32U,))[TARGET_32U]


def test_perf_execution_engine(benchmark, art_32u):
    """Functional execution throughput (bulk iteration spans)."""
    totals = benchmark(run_binary, art_32u)
    assert totals.instructions > 1_000_000


def test_perf_bbv_collection(benchmark, art_32u):
    """FLI BBV profiling over a full run."""
    intervals = benchmark(collect_fli_bbvs, art_32u, 100_000)
    assert len(intervals) > 10


def test_perf_call_branch_profile(benchmark, art_32u):
    """Call-and-branch profiling over a full run."""
    profile = benchmark(collect_call_branch_profile, art_32u)
    assert profile.total_instructions > 1_000_000


def test_perf_cache_hierarchy(benchmark):
    """Demand-access throughput of the three-level hierarchy
    (batched replay through ``access_many``)."""
    hierarchy = MemoryHierarchy()
    lines = np.arange(20_000, dtype=np.int64) * 131 % 65_536
    writes = np.zeros(20_000, dtype=np.bool_)

    def access_all():
        hierarchy.access_many(lines, writes)

    benchmark(access_all)


def test_perf_cache_hierarchy_scalar(benchmark):
    """Reference-at-a-time hierarchy throughput (the oracle path)."""
    hierarchy = MemoryHierarchy()
    lines = [(line * 131) % 65_536 for line in range(20_000)]

    def access_all():
        access = hierarchy.access
        for line in lines:
            access(line, False)

    benchmark(access_all)


def test_perf_bulk_reference_generation(benchmark, art_32u):
    """Closed-form address-stream generation for the hottest loop."""
    from repro.cmpsim.memory import AddressStreamState, bulk_pattern

    specs = max(
        (
            block.accesses
            for block in art_32u.blocks.values()
            if block.accesses
        ),
        key=lambda accesses: sum(s.refs_per_exec for s in accesses),
    )
    pattern = bulk_pattern(tuple(specs))

    def generate():
        state = AddressStreamState()
        return pattern.generate(state, 50_000)

    lines, _ = benchmark(generate)
    assert lines.size >= 50_000


def test_perf_weighted_kmeans(benchmark):
    """k-means over a SimPoint-sized problem (200 x 15, k=10)."""
    rng = np.random.default_rng(0)
    points = rng.uniform(size=(200, 15))
    weights = rng.uniform(0.5, 2.0, size=200)
    result = benchmark(
        weighted_kmeans, points, 10, weights, 5, 100, 42
    )
    assert result.k == 10


def test_perf_detailed_simulation(benchmark, art_32u):
    """One full CMP$im run (the dominant cost of the harness)."""
    result = benchmark.pedantic(
        lambda: CMPSim(art_32u).run_full(), rounds=1, iterations=2
    )
    assert result.stats.cpi > 0.5


def test_perf_detailed_simulation_scalar(benchmark, art_32u):
    """Full run on the scalar oracle path (``batched=False``)."""
    result = benchmark.pedantic(
        lambda: CMPSim(art_32u).run_full(batched=False),
        rounds=1,
        iterations=1,
    )
    assert result.stats.cpi > 0.5


@pytest.fixture(scope="module")
def art_pair():
    """art compiled for the two 32-bit targets (unopt + O2)."""
    from repro.compilation.targets import TARGET_32O

    program = build_benchmark("art")
    binaries = compile_standard_binaries(
        program, (TARGET_32U, TARGET_32O)
    )
    return [binaries[TARGET_32U], binaries[TARGET_32O]]


@pytest.fixture(scope="module")
def art_marker_set(art_pair):
    from repro.core.matching import find_mappable_points

    profiles = [
        (binary, collect_call_branch_profile(binary))
        for binary in art_pair
    ]
    marker_set, _ = find_mappable_points(profiles)
    return marker_set


def test_perf_trace_compile(benchmark, art_32u):
    """One recorded engine walk lowered to flat trace arrays."""
    from repro.execution.trace import clear_trace_memo, compile_trace

    def compile_cold():
        clear_trace_memo()
        return compile_trace(art_32u)

    trace = benchmark(compile_cold)
    assert trace.total_instructions > 1_000_000


def test_perf_fli_replay(benchmark, art_32u):
    """FLI cutting replayed from a memoized compiled trace."""
    from repro.execution.trace import compiled_trace, replay_fli

    trace = compiled_trace(art_32u)
    intervals = benchmark(replay_fli, trace, 100_000)
    assert len(intervals) > 10


def test_perf_fli_scalar(benchmark, art_32u):
    """FLI cutting on the scalar oracle (one engine walk per call)."""
    intervals = benchmark(
        collect_fli_bbvs, art_32u, 100_000, use_trace=False
    )
    assert len(intervals) > 10


def _profile_end_to_end(binaries, marker_set, use_trace):
    """FLI + VLI + re-measured weights for one binary pair."""
    from repro.core.mapping import interval_boundaries
    from repro.core.vli import collect_vli_bbvs
    from repro.core.weights import measure_interval_instructions

    primary = binaries[0]
    fli = collect_fli_bbvs(primary, 100_000, use_trace=use_trace)
    vlis = collect_vli_bbvs(
        primary, marker_set, 100_000, use_trace=use_trace
    )
    boundaries = interval_boundaries(vlis)
    counts = [
        measure_interval_instructions(
            binary, marker_set, boundaries, use_trace=use_trace
        )
        for binary in binaries
    ]
    return fli, vlis, counts


def test_perf_profiling_end_to_end_trace(
    benchmark, art_pair, art_marker_set
):
    """FLI + VLI + weights via compiled traces (compile included)."""
    from repro.execution.trace import clear_trace_memo

    def run():
        clear_trace_memo()
        return _profile_end_to_end(art_pair, art_marker_set, True)

    fli, vlis, counts = benchmark(run)
    assert len(fli) > 10 and len(vlis) > 10 and len(counts) == 2


def test_perf_profiling_end_to_end_scalar(
    benchmark, art_pair, art_marker_set
):
    """FLI + VLI + weights on the scalar oracle paths."""
    fli, vlis, counts = benchmark(
        _profile_end_to_end, art_pair, art_marker_set, False
    )
    assert len(fli) > 10 and len(vlis) > 10 and len(counts) == 2
