"""Ablation: the cluster budget (maxK).

The paper limits SimPoint to 10 clusters. When a program has more
distinct behaviours than the budget (gcc has 14 stages), behaviours
must share phases, so some intervals are represented by a simulation
point whose CPI is far from their own. This ablation re-clusters the
*same* primary VLI profile under different budgets (via
`repro.experiments.sweeps.sweep_max_k`) and measures the
**representation error**: the instruction-weighted mean absolute
difference between each interval's CPI and its phase representative's
CPI, across all four binaries.

Whole-program CPI error is *not* monotone in k — a single global
representative can land near the global mean by luck — which is
precisely why the paper argues about per-phase bias consistency rather
than headline accuracy.
"""

from benchmarks.conftest import run_once
from repro.experiments.sweeps import sweep_max_k

BUDGETS = (1, 3, 10)


def test_cluster_budget_ablation(benchmark, gcc_run):
    results = run_once(benchmark, lambda: sweep_max_k(gcc_run, BUDGETS))

    print()
    for budget, point in results.items():
        print(
            f"maxK={budget:2d}: chose k={point.k:2d}, "
            f"representation error {point.representation_error:.3f} "
            f"cycles/instr, CPI error {point.cpi_error:.3f}"
        )

    for budget, point in results.items():
        assert point.k <= budget
    # Finer phase models represent intervals strictly better on gcc
    # (14 stages force sharing at every budget below ~14).
    errors = [results[budget].representation_error for budget in BUDGETS]
    assert errors[0] > errors[1] > errors[2]
    assert errors[2] <= 0.75 * errors[0]
