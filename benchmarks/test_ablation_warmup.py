"""Ablation: warm vs cold fast-forward in region simulation.

The harness's default (matching the paper's methodology of running the
binary under the simulator with a PinPoints file) keeps the caches
functionally warm while fast-forwarding between simulation points.
This ablation quantifies what cold fast-forward — skipping the cache
model outside the chosen regions — does to the region statistics.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cmpsim.simulator import CMPSim, regions_from_mapped_points
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS
from repro.programs.suite import build_benchmark


def test_warmup_ablation(benchmark, gcc_run):
    program = build_benchmark("gcc")
    binaries = compile_standard_binaries(program)
    binary = binaries[STANDARD_TARGETS[0]]  # 32u, the primary
    table = gcc_run.cross.marker_set.table_for(binary.name)
    regions = regions_from_mapped_points(gcc_run.cross.mapped_points)

    def sweep():
        sim = CMPSim(binary)
        warm = sim.run_regions(regions, table, warm=True)
        cold = sim.run_regions(regions, table, warm=False)
        return warm, cold

    warm, cold = run_once(benchmark, sweep)

    print()
    drifts = {}
    for point in gcc_run.cross.mapped_points:
        warm_cpi = warm.region(point.cluster).cpi
        cold_cpi = cold.region(point.cluster).cpi
        drifts[point.cluster] = abs(cold_cpi - warm_cpi) / warm_cpi
        print(
            f"cluster {point.cluster}: warm CPI {warm_cpi:.2f}, "
            f"cold CPI {cold_cpi:.2f}, drift {drifts[point.cluster]:.1%}"
        )

    # Warm region stats reproduce the full-run per-interval stats.
    outcome = gcc_run.outcome("32u")
    for point in gcc_run.cross.mapped_points:
        tracked = outcome.vli_intervals[point.interval_index]
        region = warm.region(point.cluster)
        assert region.instructions == tracked.instructions
        assert region.cycles == pytest.approx(tracked.cycles)

    # Cold fast-forward changes at least some regions' CPI: cache
    # state at region entry is stale instead of current.
    assert max(drifts.values()) > 0.005
    # Instruction counts are mode-independent (functional execution).
    for point in gcc_run.cross.mapped_points:
        assert (
            warm.region(point.cluster).instructions
            == cold.region(point.cluster).instructions
        )
