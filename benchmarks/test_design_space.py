"""Design-space exploration benchmark (the paper's Section 1 scenario).

Not one of the paper's numbered exhibits, but its stated motivation:
"determining which (binary, architecture) pair performs the best."
The check encodes the consistent-bias claim on every architecture of
the space, and that the mappable method identifies the true best pair.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.design_space import (
    STANDARD_DESIGN_SPACE,
    explore_design_space,
    render_design_space,
)

BENCHMARKS = ("twolf", "gcc")


def test_design_space_exploration(benchmark):
    def sweep():
        return {
            name: explore_design_space(name) for name in BENCHMARKS
        }

    results = run_once(benchmark, sweep)

    print()
    for name, result in results.items():
        print(render_design_space(result))
        print()

    for name, result in results.items():
        # Within every architecture, cross-binary comparisons are more
        # accurate with mappable points.
        for arch in STANDARD_DESIGN_SPACE:
            fli = result.cross_binary_error("fli", arch.name)
            vli = result.cross_binary_error("vli", arch.name)
            assert vli < fli, (name, arch.name)
            assert vli <= 0.05, (name, arch.name)
        # The mappable method identifies the true best design point.
        assert result.best_pair("vli") == result.best_pair(), name
