"""Figure 1: number of SimPoints, per-binary FLI vs mappable VLI.

Paper shape: both techniques select a *similar* number of simulation
points on average ("this is expected since the binaries all represent
the same program, so we are still observing the same behaviors").
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure1_number_of_simpoints
from repro.experiments.reporting import render_figure


def test_figure1_number_of_simpoints(benchmark, suite_runs):
    data = run_once(
        benchmark, lambda: figure1_number_of_simpoints(suite_runs)
    )
    print()
    print(render_figure(data, precision=2))

    fli_avg = data.average("FLI")
    vli_avg = data.average("VLI")
    # Both averages sit under the maxK=10 budget and close together.
    assert 5.0 <= fli_avg <= 10.0
    assert 5.0 <= vli_avg <= 10.0
    assert abs(fli_avg - vli_avg) <= 2.0

    for name in data.benchmarks:
        assert 1 <= data.value("FLI", name) <= 10
        assert 1 <= data.value("VLI", name) <= 10
