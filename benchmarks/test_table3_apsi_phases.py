"""Table 3: apsi phase comparison, 32-bit vs 64-bit optimized.

Paper shape: apsi's per-binary FLI bias for one of the top phases
changes from -0.7% to +37% between the binaries, while the mappable
VLI biases stay consistent across the phases.
"""

from benchmarks.conftest import run_once
from repro.experiments.reporting import render_phase_comparison
from repro.experiments.tables import table3_apsi_phases


def test_table3_apsi_phase_bias(benchmark, apsi_run):
    comparison = run_once(
        benchmark, lambda: table3_apsi_phases(run=apsi_run)
    )
    print()
    print(render_phase_comparison(comparison))

    rows_a = {r.cluster: r for r in comparison.vli_rows["32o"]}
    rows_b = {r.cluster: r for r in comparison.vli_rows["64o"]}
    assert set(rows_a) == set(rows_b)
    for cluster in rows_a:
        assert abs(rows_a[cluster].weight - rows_b[cluster].weight) <= 0.05

    fli_swing = comparison.max_fli_bias_swing()
    vli_swing = comparison.max_vli_bias_swing()
    assert vli_swing < fli_swing
    # The paper's apsi FLI swing is dramatic (-0.7% -> 37%); ours is
    # the same order.
    assert fli_swing >= 0.10
    assert vli_swing <= 0.10
