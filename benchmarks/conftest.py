"""Shared fixtures for the benchmark harness.

The heavy work — running all 21 benchmarks through both pipelines and
the detailed simulator — happens once per pytest session in
``suite_runs`` and is shared by every figure/table benchmark. Exhibit
benchmarks therefore measure figure *generation* over the cached runs,
and their assertions check the paper's qualitative shapes (documented
per exhibit in DESIGN.md and EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentConfig, run_benchmark, run_suite
from repro.programs.suite import benchmark_names


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture(scope="session")
def suite_runs(experiment_config):
    """All 21 paper benchmarks through the full experiment (cached)."""
    return run_suite(benchmark_names(), experiment_config, progress=True)


@pytest.fixture(scope="session")
def gcc_run(suite_runs):
    return suite_runs["gcc"]


@pytest.fixture(scope="session")
def apsi_run(suite_runs):
    return suite_runs["apsi"]


@pytest.fixture(scope="session")
def applu_run(suite_runs):
    return suite_runs["applu"]


def run_once(benchmark, func):
    """Benchmark a harness function with a single measured round."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
