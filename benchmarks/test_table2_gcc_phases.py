"""Table 2: gcc phase comparison, 32-bit vs 64-bit unoptimized.

Paper shape: with per-binary FLI, the largest phases' weights and
biases swing between the two binaries (the paper shows a phase bias
going from +56% to -17%); with mappable VLI, phases correspond across
binaries and their biases stay consistent.
"""

from benchmarks.conftest import run_once
from repro.experiments.reporting import render_phase_comparison
from repro.experiments.tables import table2_gcc_phases


def test_table2_gcc_phase_bias(benchmark, gcc_run):
    comparison = run_once(
        benchmark, lambda: table2_gcc_phases(run=gcc_run)
    )
    print()
    print(render_phase_comparison(comparison))

    # VLI's top phases are the same clusters in both binaries, with
    # nearly identical weights.
    rows_a = {r.cluster: r for r in comparison.vli_rows["32u"]}
    rows_b = {r.cluster: r for r in comparison.vli_rows["64u"]}
    assert set(rows_a) == set(rows_b)
    for cluster in rows_a:
        assert abs(rows_a[cluster].weight - rows_b[cluster].weight) <= 0.05

    # The bias swing (how much a phase's bias changes across binaries)
    # is far larger for FLI than for VLI.
    fli_swing = comparison.max_fli_bias_swing()
    vli_swing = comparison.max_vli_bias_swing()
    assert vli_swing < fli_swing
    assert vli_swing <= 0.10
