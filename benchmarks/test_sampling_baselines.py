"""Sampling-method comparison: SimPoint vs systematic sampling.

The paper's premise (Section 1) is that phase-aware sampling gets
representative behaviour from a handful of points. This benchmark
quantifies it against the classic statistical baseline: systematic
sampling of every N-th interval, at SimPoint's budget and at larger
budgets, across the whole suite.
"""

from benchmarks.conftest import run_once
from repro.analysis.systematic import systematic_sample


def test_simpoint_vs_systematic(benchmark, suite_runs):
    def sweep():
        rows = []
        for name, run in suite_runs.items():
            outcome = run.outcome("32u")
            intervals = list(outcome.fli_intervals)
            true_cpi = outcome.true_cpi
            budget = outcome.fli_estimate.n_points
            period_equal = max(1, len(intervals) // budget)
            equal = systematic_sample(intervals, period_equal)
            dense = systematic_sample(intervals, max(1, period_equal // 4))
            rows.append(
                (
                    name,
                    budget,
                    outcome.fli_estimate.cpi_error,
                    equal.n_samples,
                    abs(equal.estimate - true_cpi) / true_cpi,
                    dense.n_samples,
                    abs(dense.estimate - true_cpi) / true_cpi,
                )
            )
        return rows

    rows = run_once(benchmark, sweep)

    print()
    header = (f"{'benchmark':<10} {'SP pts':>6} {'SP err':>7} "
              f"{'sys pts':>7} {'sys err':>8} {'sys4x pts':>9} "
              f"{'sys4x err':>9}")
    print(header)
    print("-" * len(header))
    for (name, budget, sp_err, eq_n, eq_err, d_n, d_err) in rows:
        print(f"{name:<10} {budget:>6} {sp_err:>7.1%} {eq_n:>7} "
              f"{eq_err:>8.1%} {d_n:>9} {d_err:>9.1%}")

    sp_avg = sum(row[2] for row in rows) / len(rows)
    eq_avg = sum(row[4] for row in rows) / len(rows)
    dense_avg = sum(row[6] for row in rows) / len(rows)
    print(f"\naverages: SimPoint {sp_avg:.1%} | systematic@equal "
          f"{eq_avg:.1%} | systematic@4x {dense_avg:.1%}")

    # Phase-aware selection beats position-blind sampling at the same
    # detail budget, on average across the suite.
    assert sp_avg < eq_avg
    # Systematic sampling needs a substantially larger budget to close
    # the gap (4x the points gets it near or below SimPoint here).
    assert dense_avg < eq_avg
