"""Ablation: interval size.

SimPoint's interval size trades profile resolution against detailed-
simulation budget per point (the paper's lineage used 1M/10M/100M
studies before settling on 100M). This ablation runs the full
experiment for gcc at half, default, and double the interval size (via
`repro.experiments.sweeps.sweep_interval_sizes`) and reports interval
counts, chosen k, and both methods' errors.
"""

from benchmarks.conftest import run_once
from repro.experiments.sweeps import sweep_interval_sizes

SIZES = (50_000, 100_000, 200_000)


def test_interval_size_ablation(benchmark):
    results = run_once(
        benchmark, lambda: sweep_interval_sizes("gcc", SIZES)
    )

    print()
    header = (f"{'size':>8} {'intervals':>9} {'k':>3} {'FLI cpi':>8} "
              f"{'VLI cpi':>8} {'FLI spd':>8} {'VLI spd':>8}")
    print(header)
    print("-" * len(header))
    for size, point in results.items():
        print(f"{size:>8,} {point.n_intervals:>9} {point.k:>3} "
              f"{point.fli_cpi_error:>8.1%} {point.vli_cpi_error:>8.1%} "
              f"{point.fli_speedup_error:>8.1%} "
              f"{point.vli_speedup_error:>8.1%}")

    # Halving the size roughly doubles the interval count.
    counts = [results[size].n_intervals for size in SIZES]
    assert counts[0] > counts[1] > counts[2]
    assert counts[0] >= 1.7 * counts[1]
    # The headline holds at every granularity: VLI speedup error beats
    # FLI on gcc's 32u->32o comparison.
    for size in SIZES:
        point = results[size]
        assert point.vli_speedup_error < point.fli_speedup_error, size
        # Estimates stay usable at every granularity.
        assert point.fli_cpi_error <= 0.25
        assert point.vli_cpi_error <= 0.25
