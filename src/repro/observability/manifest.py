"""Per-run manifests: provenance + validation artifacts.

A manifest is the one JSON document that makes a run auditable after
the fact: what code produced it (git describe), under which
configuration (content fingerprint), where the time went (per-stage
wall times from the tracer), what the cache did (hit/miss/traffic
counters), what SimPoint decided (chosen k and the BIC trace per
binary), and how good the result was (final error tables). It is
written as ``manifest.json`` next to the trace output.

The schema is flat and versioned; :func:`validate_manifest` is the
single authority on required keys and is used by tests and the CI
quickstart check alike.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.errors import FileFormatError

MANIFEST_SCHEMA = "repro.manifest/v1"

#: Every manifest has exactly these top-level keys (stable schema —
#: tests pin the set, so additions require a version bump or a test
#: update in the same change).
MANIFEST_KEYS = (
    "schema",
    "created_at",
    "command",
    "git_describe",
    "python",
    "config_fingerprint",
    "total_seconds",
    "stages",
    "cache",
    "metrics",
    "clusterings",
    "errors",
)

_CACHE_KEYS = ("hits", "misses", "hit_rate", "bytes_read", "bytes_written")

PathLike = Union[str, Path]


def git_describe() -> str:
    """``git describe`` of the working tree, or ``"unknown"``."""
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    described = proc.stdout.strip()
    return described if proc.returncode == 0 and described else "unknown"


def build_manifest(
    *,
    total_seconds: float,
    stages: Mapping[str, float],
    metrics_snapshot: Mapping[str, Any],
    cache_stats: Optional[Any] = None,
    clusterings: Optional[Mapping[str, Mapping[str, Any]]] = None,
    errors: Optional[Mapping[str, Mapping[str, float]]] = None,
    config_fingerprint: Optional[str] = None,
    command: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Assemble a schema-complete manifest dict.

    ``cache_stats`` is a :class:`repro.runtime.cache.CacheStats` (or
    ``None`` for a cache-less run, which records all-zero counters).
    """
    if cache_stats is not None:
        cache_block = {
            "hits": cache_stats.hits,
            "misses": cache_stats.misses,
            "hit_rate": cache_stats.hit_rate,
            "bytes_read": cache_stats.bytes_read,
            "bytes_written": cache_stats.bytes_written,
        }
    else:
        cache_block = {key: 0 for key in _CACHE_KEYS}
    return {
        "schema": MANIFEST_SCHEMA,
        "created_at": time.time(),
        "command": list(command) if command is not None else [],
        "git_describe": git_describe(),
        "python": sys.version.split()[0],
        "config_fingerprint": config_fingerprint,
        "total_seconds": float(total_seconds),
        "stages": [
            {"name": name, "seconds": float(seconds)}
            for name, seconds in stages.items()
        ],
        "cache": cache_block,
        "metrics": dict(metrics_snapshot),
        "clusterings": {
            name: dict(entry) for name, entry in (clusterings or {}).items()
        },
        "errors": {
            name: dict(table) for name, table in (errors or {}).items()
        },
    }


def validate_manifest(data: Any) -> Dict[str, Any]:
    """Check a manifest's schema; returns it on success.

    Raises :class:`FileFormatError` naming the first problem found.
    """
    if not isinstance(data, dict):
        raise FileFormatError(
            f"manifest must be a JSON object, got {type(data).__name__}"
        )
    if data.get("schema") != MANIFEST_SCHEMA:
        raise FileFormatError(
            f"manifest schema {data.get('schema')!r}, "
            f"expected {MANIFEST_SCHEMA!r}"
        )
    missing = [key for key in MANIFEST_KEYS if key not in data]
    if missing:
        raise FileFormatError(f"manifest missing keys: {missing}")
    unknown = [key for key in data if key not in MANIFEST_KEYS]
    if unknown:
        raise FileFormatError(f"manifest has unknown keys: {unknown}")
    if not isinstance(data["stages"], list):
        raise FileFormatError("manifest stages must be a list")
    for stage in data["stages"]:
        if (
            not isinstance(stage, dict)
            or not isinstance(stage.get("name"), str)
            or not isinstance(stage.get("seconds"), (int, float))
        ):
            raise FileFormatError(f"malformed manifest stage: {stage!r}")
    cache = data["cache"]
    if not isinstance(cache, dict):
        raise FileFormatError("manifest cache must be an object")
    for key in _CACHE_KEYS:
        if not isinstance(cache.get(key), (int, float)):
            raise FileFormatError(f"manifest cache missing counter {key!r}")
    for section in ("clusterings", "errors", "metrics"):
        if not isinstance(data[section], dict):
            raise FileFormatError(f"manifest {section} must be an object")
    if not isinstance(data["total_seconds"], (int, float)):
        raise FileFormatError("manifest total_seconds must be a number")
    return data


def write_manifest(path: PathLike, manifest: Mapping[str, Any]) -> Path:
    """Validate and write a manifest; returns the path written."""
    validate_manifest(dict(manifest))
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return target


def load_manifest(path: PathLike) -> Dict[str, Any]:
    """Read and validate a manifest file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise FileFormatError(f"{path}: cannot read manifest: {exc}") from exc
    try:
        return validate_manifest(data)
    except FileFormatError as exc:
        raise FileFormatError(f"{path}: {exc}") from None
