"""Per-run manifests: provenance + validation artifacts.

A manifest is the one JSON document that makes a run auditable after
the fact: what code produced it (git describe), under which
configuration (content fingerprint), where the time went (per-stage
wall times from the tracer), what the cache did (hit/miss/traffic
counters), what SimPoint decided (chosen k and the BIC trace per
binary), how good the result was (final error tables), and — new in
v2 — *why* it was that good: per-binary per-cluster bias tables, the
quantity whose cross-binary consistency is the paper's core claim. It
is written as ``manifest.json`` next to the trace output.

The schema is flat and versioned; :func:`validate_manifest` is the
single authority on required keys and is used by tests and the CI
quickstart check alike. v2 adds ``run_id`` (a unique handle the run
ledger indexes by) and ``bias``, and carries bucketed histograms in
``metrics``; ``matching`` (the cross-binary matcher's confidence and
per-pair coverage summary) joined v2 later, so the upgrader fills it
in as empty for documents predating it. v1 documents remain loadable:
:func:`upgrade_manifest` lifts them to v2 (synthesizing a
deterministic ``run_id`` from the document content and empty
bias/bucket/matching sections), and :func:`load_manifest` applies it
transparently.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.errors import FileFormatError

MANIFEST_SCHEMA = "repro.manifest/v2"
MANIFEST_SCHEMA_V1 = "repro.manifest/v1"

#: Every manifest has exactly these top-level keys (stable schema —
#: tests pin the set, so additions require a version bump or a test
#: update in the same change).
MANIFEST_KEYS = (
    "schema",
    "run_id",
    "created_at",
    "command",
    "git_describe",
    "python",
    "config_fingerprint",
    "total_seconds",
    "stages",
    "cache",
    "metrics",
    "clusterings",
    "errors",
    "bias",
    "matching",
)

#: v1 key set = v2 minus the additions (used by the upgrader).
MANIFEST_KEYS_V1 = tuple(
    key for key in MANIFEST_KEYS if key not in ("run_id", "bias", "matching")
)

_CACHE_KEYS = ("hits", "misses", "hit_rate", "bytes_read", "bytes_written")

PathLike = Union[str, Path]


def git_describe() -> str:
    """``git describe`` of the working tree, or ``"unknown"``."""
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    described = proc.stdout.strip()
    return described if proc.returncode == 0 and described else "unknown"


def new_run_id() -> str:
    """A fresh, globally unique run id (12 hex chars)."""
    return uuid.uuid4().hex[:12]


def build_manifest(
    *,
    total_seconds: float,
    stages: Mapping[str, float],
    metrics_snapshot: Mapping[str, Any],
    cache_stats: Optional[Any] = None,
    clusterings: Optional[Mapping[str, Mapping[str, Any]]] = None,
    errors: Optional[Mapping[str, Mapping[str, float]]] = None,
    bias: Optional[Mapping[str, Mapping[str, Mapping[str, float]]]] = None,
    matching: Optional[Mapping[str, Mapping[str, Any]]] = None,
    config_fingerprint: Optional[str] = None,
    command: Optional[Sequence[str]] = None,
    run_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble a schema-complete manifest dict.

    ``cache_stats`` is a :class:`repro.runtime.cache.CacheStats` (or
    ``None`` for a cache-less run, which records all-zero counters).
    The cache block also carries ``kinds`` (the same counters broken
    down per entry kind) plus ``sim`` and ``clustering`` (content-keyed
    reuse tallies and per-run reuse ratios, derived from the
    ``cache.sim.*`` / ``cache.clustering.*`` metric counters — the
    metrics registry is the one place those arrive from every
    execution path, including ``--via-jobs`` receipts).
    ``bias`` maps ``name -> cluster -> row`` where each row carries the
    phase's ``weight``, ``true_cpi``, ``sp_cpi``, and signed ``bias``.
    ``matching`` maps program name to the cross-binary matcher summary
    (confidence threshold, weakest marker confidence, fuzzy match
    counts, per-binary-pair coverage).
    """
    if cache_stats is not None:
        cache_block: Dict[str, Any] = {
            "hits": cache_stats.hits,
            "misses": cache_stats.misses,
            "hit_rate": cache_stats.hit_rate,
            "bytes_read": cache_stats.bytes_read,
            "bytes_written": cache_stats.bytes_written,
        }
    else:
        cache_block = {key: 0 for key in _CACHE_KEYS}
    kinds = getattr(cache_stats, "by_kind", None) or {}
    cache_block["kinds"] = {
        kind: {
            "hits": row.hits,
            "misses": row.misses,
            "hit_rate": row.hit_rate,
            "stale_evictions": row.stale_evictions,
            "bytes_read": row.bytes_read,
            "bytes_written": row.bytes_written,
        }
        for kind, row in sorted(kinds.items())
    }
    counters = dict(metrics_snapshot or {}).get("counters") or {}
    # Content-keyed reuse summaries, one per mirrored cache kind: the
    # "sim" (detailed-simulation) and "clustering" tallies plus their
    # per-run reuse ratios.
    for block_name in ("sim", "clustering"):
        hits = int(counters.get(f"cache.{block_name}.hits", 0))
        misses = int(counters.get(f"cache.{block_name}.misses", 0))
        lookups = hits + misses
        cache_block[block_name] = {
            "hits": hits,
            "misses": misses,
            "stale_evictions": int(
                counters.get(f"cache.{block_name}.stale_evictions", 0)
            ),
            "reuse_ratio": hits / lookups if lookups else 0.0,
        }
    return {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id if run_id is not None else new_run_id(),
        "created_at": time.time(),
        "command": list(command) if command is not None else [],
        "git_describe": git_describe(),
        "python": sys.version.split()[0],
        "config_fingerprint": config_fingerprint,
        "total_seconds": float(total_seconds),
        "stages": [
            {"name": name, "seconds": float(seconds)}
            for name, seconds in stages.items()
        ],
        "cache": cache_block,
        "metrics": dict(metrics_snapshot),
        "clusterings": {
            name: dict(entry) for name, entry in (clusterings or {}).items()
        },
        "errors": {
            name: dict(table) for name, table in (errors or {}).items()
        },
        "bias": {
            name: {
                str(cluster): dict(row) for cluster, row in table.items()
            }
            for name, table in (bias or {}).items()
        },
        "matching": {
            name: dict(row) for name, row in (matching or {}).items()
        },
    }


def upgrade_manifest(data: Any) -> Dict[str, Any]:
    """Lift a v1 manifest to v2 (v2 input passes through untouched).

    The synthesized ``run_id`` is a content hash of the v1 document, so
    upgrading the same file twice yields the same id; ``bias`` starts
    empty and metric histograms gain empty bucket tables (their
    distribution was never recorded, so quantiles over them degrade to
    the mean — see :class:`repro.observability.metrics.Histogram`).
    """
    if not isinstance(data, dict):
        raise FileFormatError(
            f"manifest must be a JSON object, got {type(data).__name__}"
        )
    schema = data.get("schema")
    if schema == MANIFEST_SCHEMA:
        # ``matching`` postdates v2's introduction; older v2 documents
        # without it stay loadable (an empty section, same as a run
        # that recorded no matcher summary).
        if "matching" not in data:
            data = dict(data)
            data["matching"] = {}
        return data
    if schema != MANIFEST_SCHEMA_V1:
        raise FileFormatError(
            f"manifest schema {schema!r}, expected {MANIFEST_SCHEMA!r} "
            f"(or {MANIFEST_SCHEMA_V1!r} for the upgrader)"
        )
    missing = [key for key in MANIFEST_KEYS_V1 if key not in data]
    if missing:
        raise FileFormatError(f"v1 manifest missing keys: {missing}")
    upgraded = dict(data)
    upgraded["schema"] = MANIFEST_SCHEMA
    digest = hashlib.sha256(
        json.dumps(data, sort_keys=True).encode()
    ).hexdigest()
    upgraded["run_id"] = f"v1-{digest[:9]}"
    upgraded["bias"] = {}
    upgraded["matching"] = {}
    metrics_block = upgraded.get("metrics")
    if isinstance(metrics_block, dict):
        histograms = metrics_block.get("histograms")
        if isinstance(histograms, dict):
            metrics_block = dict(metrics_block)
            metrics_block["histograms"] = {
                name: (
                    {**summary, "buckets": summary.get("buckets") or {}}
                    if isinstance(summary, dict)
                    else summary
                )
                for name, summary in histograms.items()
            }
            upgraded["metrics"] = metrics_block
    return upgraded


def validate_manifest(data: Any) -> Dict[str, Any]:
    """Check a (v2) manifest's schema; returns it on success.

    Raises :class:`FileFormatError` naming the first problem found. v1
    documents are rejected with a pointer at the upgrader —
    :func:`load_manifest` lifts them automatically.
    """
    if not isinstance(data, dict):
        raise FileFormatError(
            f"manifest must be a JSON object, got {type(data).__name__}"
        )
    schema = data.get("schema")
    if schema == MANIFEST_SCHEMA_V1:
        raise FileFormatError(
            f"manifest schema is {MANIFEST_SCHEMA_V1!r}; this is a v1 "
            f"manifest — pass it through upgrade_manifest (load_manifest "
            f"does this automatically)"
        )
    if schema != MANIFEST_SCHEMA:
        raise FileFormatError(
            f"manifest schema {schema!r}, expected {MANIFEST_SCHEMA!r}"
        )
    missing = [key for key in MANIFEST_KEYS if key not in data]
    if missing:
        raise FileFormatError(f"manifest missing keys: {missing}")
    unknown = [key for key in data if key not in MANIFEST_KEYS]
    if unknown:
        raise FileFormatError(f"manifest has unknown keys: {unknown}")
    if not isinstance(data["run_id"], str) or not data["run_id"]:
        raise FileFormatError("manifest run_id must be a non-empty string")
    if not isinstance(data["stages"], list):
        raise FileFormatError("manifest stages must be a list")
    for stage in data["stages"]:
        if (
            not isinstance(stage, dict)
            or not isinstance(stage.get("name"), str)
            or not isinstance(stage.get("seconds"), (int, float))
        ):
            raise FileFormatError(f"malformed manifest stage: {stage!r}")
    cache = data["cache"]
    if not isinstance(cache, dict):
        raise FileFormatError("manifest cache must be an object")
    for key in _CACHE_KEYS:
        if not isinstance(cache.get(key), (int, float)):
            raise FileFormatError(f"manifest cache missing counter {key!r}")
    # Optional cache sub-blocks (absent from pre-existing documents):
    # per-kind counter rows and the content-keyed reuse summaries.
    for block_name in ("kinds", "sim", "clustering"):
        if block_name in cache and not isinstance(
            cache[block_name], dict
        ):
            raise FileFormatError(
                f"manifest cache {block_name} must be an object"
            )
    for section in ("clusterings", "errors", "metrics", "bias", "matching"):
        if not isinstance(data[section], dict):
            raise FileFormatError(f"manifest {section} must be an object")
    for name, row in data["matching"].items():
        if not isinstance(row, dict):
            raise FileFormatError(
                f"manifest matching entry {name!r} must be an object"
            )
    for name, table in data["bias"].items():
        if not isinstance(table, dict):
            raise FileFormatError(
                f"manifest bias table {name!r} must be an object"
            )
        for cluster, row in table.items():
            if not isinstance(row, dict) or not all(
                isinstance(value, (int, float)) for value in row.values()
            ):
                raise FileFormatError(
                    f"malformed bias row {name!r}/{cluster!r}: {row!r}"
                )
    if not isinstance(data["total_seconds"], (int, float)):
        raise FileFormatError("manifest total_seconds must be a number")
    return data


def write_manifest(path: PathLike, manifest: Mapping[str, Any]) -> Path:
    """Validate and write a manifest; returns the path written."""
    validate_manifest(dict(manifest))
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return target


def load_manifest(path: PathLike) -> Dict[str, Any]:
    """Read, upgrade (v1 -> v2 if needed), and validate a manifest."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise FileFormatError(f"{path}: cannot read manifest: {exc}") from exc
    try:
        return validate_manifest(upgrade_manifest(data))
    except FileFormatError as exc:
        raise FileFormatError(f"{path}: {exc}") from None
