"""Structured manifest diffing and the accuracy/perf drift sentinel.

The differ compares two runs field by field — stage wall times, cache
behavior, chosen k per clustering, CPI/speedup error tables, bias
tables, matcher coverage/confidence summaries, metric counters, and
histogram quantiles — producing one
:class:`Delta` per field with both absolute and relative change. Both
sides are normalized through
:func:`repro.observability.ledger.entry_from_manifest`, so a full
manifest and a ledger record diff identically.

On top of the diff, :func:`check_drift` applies
:class:`DriftThresholds` and returns the list of :class:`Violation`\\ s
— an *accuracy* violation when any error-table entry or bias row
worsens beyond tolerance (or the cross-binary matcher's coverage or
weakest-marker confidence falls), a *decision* violation when a chosen k
flips, a *performance* violation when a stage (or the total) slows
down or the cache hit rate drops beyond tolerance, and a *reliability*
violation when the candidate run's receipt-derived job counters show a
failure or retry rate above its bounds. ``repro ledger check`` exits
non-zero when any violation fires, which is what lets CI gate on
drift.

Timing tolerances are deliberately asymmetric and guarded by an
absolute floor: wall-clock jitter on shared runners is real, so a
stage only registers as a regression when it is both *much* slower
relatively and slower by an absolute margin. Accuracy tolerances have
no such slack — identical configurations are bit-deterministic in this
harness, so any error worsening is a true change.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, List, Mapping, Optional, Tuple

from repro.observability.ledger import LedgerEntry, entry_from_manifest

#: Diff sections, in rendering order.
SECTIONS = (
    "run",
    "stages",
    "cache",
    "clusterings",
    "errors",
    "bias",
    "matching",
    "counters",
    "histograms",
)


@dataclass(frozen=True)
class Delta:
    """One field's change between two runs."""

    section: str
    field: str
    old: Optional[float]
    new: Optional[float]

    @property
    def absolute(self) -> Optional[float]:
        if self.old is None or self.new is None:
            return None
        return self.new - self.old

    @property
    def relative(self) -> Optional[float]:
        """Change relative to the old magnitude (None when undefined)."""
        if self.old is None or self.new is None or self.old == 0:
            return None
        return (self.new - self.old) / abs(self.old)

    @property
    def changed(self) -> bool:
        return self.old != self.new

    def render(self) -> str:
        old = "-" if self.old is None else f"{self.old:.6g}"
        new = "-" if self.new is None else f"{self.new:.6g}"
        parts = [f"{self.field}: {old} -> {new}"]
        if self.absolute is not None:
            parts.append(f"abs {self.absolute:+.6g}")
        if self.relative is not None:
            parts.append(f"rel {self.relative:+.2%}")
        return " | ".join(parts)


@dataclass(frozen=True)
class RunDiff:
    """A full structured comparison of two runs."""

    old_run_id: str
    new_run_id: str
    fingerprints_match: bool
    deltas: Tuple[Delta, ...]

    def section(self, name: str) -> Tuple[Delta, ...]:
        return tuple(d for d in self.deltas if d.section == name)

    def changed(self) -> Tuple[Delta, ...]:
        return tuple(d for d in self.deltas if d.changed)


def _numeric_deltas(
    section: str,
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    prefix: str = "",
) -> List[Delta]:
    """Deltas over the union of two flat name->number mappings."""
    deltas: List[Delta] = []
    for name in sorted(set(old) | set(new)):
        old_value = old.get(name)
        new_value = new.get(name)
        if not isinstance(old_value, (int, float)):
            old_value = None
        if not isinstance(new_value, (int, float)):
            new_value = None
        if old_value is None and new_value is None:
            continue
        deltas.append(
            Delta(section, f"{prefix}{name}", old_value, new_value)
        )
    return deltas


def _nested_deltas(
    section: str,
    old: Mapping[str, Mapping[str, Any]],
    new: Mapping[str, Mapping[str, Any]],
) -> List[Delta]:
    deltas: List[Delta] = []
    for name in sorted(set(old) | set(new)):
        deltas.extend(
            _numeric_deltas(
                section,
                old.get(name) or {},
                new.get(name) or {},
                prefix=f"{name}.",
            )
        )
    return deltas


def diff_runs(old: LedgerEntry, new: LedgerEntry) -> RunDiff:
    """Structured per-field comparison of two indexed runs."""
    deltas: List[Delta] = [
        Delta("run", "total_seconds", old.total_seconds, new.total_seconds),
    ]
    deltas.extend(_numeric_deltas("stages", old.stages, new.stages))
    deltas.extend(_numeric_deltas("cache", old.cache, new.cache))
    deltas.extend(
        _nested_deltas("clusterings", old.clusterings, new.clusterings)
    )
    deltas.extend(_nested_deltas("errors", old.errors, new.errors))
    for name in sorted(set(old.bias) | set(new.bias)):
        old_table = old.bias.get(name) or {}
        new_table = new.bias.get(name) or {}
        for cluster in sorted(set(old_table) | set(new_table)):
            deltas.extend(
                _numeric_deltas(
                    "bias",
                    old_table.get(cluster) or {},
                    new_table.get(cluster) or {},
                    prefix=f"{name}.cluster{cluster}.",
                )
            )
    deltas.extend(_nested_deltas("matching", old.matching, new.matching))
    deltas.extend(_numeric_deltas("counters", old.counters, new.counters))
    deltas.extend(
        _nested_deltas("histograms", old.histograms, new.histograms)
    )
    return RunDiff(
        old_run_id=old.run_id,
        new_run_id=new.run_id,
        fingerprints_match=(
            old.config_fingerprint is not None
            and old.config_fingerprint == new.config_fingerprint
        ),
        deltas=tuple(deltas),
    )


def diff_manifests(
    old: Mapping[str, Any], new: Mapping[str, Any]
) -> RunDiff:
    """Diff two manifest documents (v1 inputs are upgraded first)."""
    return diff_runs(entry_from_manifest(old), entry_from_manifest(new))


def render_diff(diff: RunDiff, changed_only: bool = True) -> str:
    """The ``repro ledger diff`` report."""
    lines = [
        f"diff: {diff.old_run_id} -> {diff.new_run_id} "
        f"({'same' if diff.fingerprints_match else 'DIFFERENT'} "
        f"config fingerprint)"
    ]
    any_change = False
    for section in SECTIONS:
        deltas = diff.section(section)
        if changed_only:
            deltas = tuple(d for d in deltas if d.changed)
        if not deltas:
            continue
        any_change = True
        lines.append(f"\n[{section}]")
        lines.extend(f"  {delta.render()}" for delta in deltas)
    if not any_change:
        lines.append("(no differences)")
    return "\n".join(lines)


@dataclass(frozen=True)
class DriftThresholds:
    """Tolerances for :func:`check_drift` (CLI flags mirror the names).

    ``max_error_increase`` bounds how much any error-table entry's
    *magnitude* may grow (absolute, e.g. 0.002 = 0.2 CPI-error points).
    ``max_bias_shift`` bounds how far any per-cluster bias may move.
    ``max_stage_regression`` / ``max_total_regression`` are relative
    slowdowns ((new-old)/old) that only fire when the slowdown also
    exceeds ``stage_min_seconds`` absolutely, because wall time jitters.
    ``max_hit_rate_drop`` bounds how far the cache hit rate may fall.
    ``forbid_k_change`` treats any chosen-k flip as drift (the paper's
    clustering decisions are deterministic for a fixed config).
    ``max_coverage_drop`` bounds how far the matcher's per-pair (or
    worst-pair) coverage may fall between runs, and
    ``max_confidence_drop`` bounds how far the weakest accepted
    marker's confidence may fall — together they make a matcher
    regression (markers silently dropping out, or surviving only at
    lower confidence) trip ``repro ledger check``.
    ``max_job_failure_rate`` / ``max_job_retry_rate`` gate on the job
    service's receipt-derived counters in the *candidate* run: the
    fraction of jobs ending failed/exhausted, and retries per finished
    job (the default 0.0 failure tolerance means any failed job is
    drift; retries below a quarter per job are tolerated because a
    reclaimed lease is recovery working, not silent corruption).
    ``min_sim_hit_rate`` is an absolute floor on the candidate run's
    sim-result reuse ratio (``cache: sim.reuse_ratio``). It is off by
    default — cold runs legitimately have ratio 0 — and is meant for
    warm CI runs, where a silent cache-key bust (the reuse ratio
    collapsing although nothing changed) should read as drift.
    ``min_clustering_hit_rate`` is the same floor for the clustering
    reuse ratio (``cache: clustering.reuse_ratio``).
    ``max_queue_wait_p95`` is an absolute ceiling (seconds) on the
    candidate run's p95 job queue-wait, read from the
    ``jobs.queue_wait_seconds`` histogram the event journal feeds into
    manifests. Off by default — the figure only exists when a
    ``--via-jobs`` run had events enabled; a candidate without the
    histogram is not a violation (there is nothing to bound).
    """

    max_error_increase: float = 0.002
    max_bias_shift: float = 0.05
    max_stage_regression: float = 1.0
    max_total_regression: float = 1.0
    stage_min_seconds: float = 0.25
    max_hit_rate_drop: float = 0.10
    forbid_k_change: bool = True
    max_coverage_drop: float = 0.02
    max_confidence_drop: float = 0.05
    max_job_failure_rate: float = 0.0
    max_job_retry_rate: float = 0.25
    min_sim_hit_rate: Optional[float] = None
    min_clustering_hit_rate: Optional[float] = None
    max_queue_wait_p95: Optional[float] = None


@dataclass(frozen=True)
class Violation:
    """One threshold breach, naming the offending field and delta."""

    kind: str  # "accuracy" | "decision" | "performance" | "reliability"
    delta: Delta
    message: str

    def render(self) -> str:
        return f"{self.kind}: {self.message} ({self.delta.render()})"


def check_drift(
    diff: RunDiff,
    thresholds: Optional[DriftThresholds] = None,
) -> List[Violation]:
    """Apply the thresholds; returns every violated field's delta."""
    limits = thresholds or DriftThresholds()
    violations: List[Violation] = []

    for delta in diff.section("errors"):
        if delta.old is None or delta.new is None:
            continue
        worsening = abs(delta.new) - abs(delta.old)
        if worsening > limits.max_error_increase:
            violations.append(
                Violation(
                    "accuracy",
                    delta,
                    f"error {delta.field} worsened by {worsening:.4f} "
                    f"(> {limits.max_error_increase:.4f})",
                )
            )

    for delta in diff.section("bias"):
        if not delta.field.endswith(".bias"):
            continue
        if delta.old is None or delta.new is None:
            continue
        shift = abs(delta.new - delta.old)
        if shift > limits.max_bias_shift:
            violations.append(
                Violation(
                    "accuracy",
                    delta,
                    f"bias {delta.field} shifted by {shift:.4f} "
                    f"(> {limits.max_bias_shift:.4f})",
                )
            )

    for delta in diff.section("matching"):
        if delta.old is None or delta.new is None:
            continue
        field_name = delta.field.rsplit(".", 1)[-1]
        is_coverage = field_name == "min_pair_coverage" or (
            field_name.startswith("coverage[")
        )
        if is_coverage:
            drop = delta.old - delta.new
            if drop > limits.max_coverage_drop:
                violations.append(
                    Violation(
                        "accuracy",
                        delta,
                        f"matcher coverage {delta.field} dropped by "
                        f"{drop:.1%} (> {limits.max_coverage_drop:.1%})",
                    )
                )
        elif field_name == "min_confidence":
            drop = delta.old - delta.new
            if drop > limits.max_confidence_drop:
                violations.append(
                    Violation(
                        "accuracy",
                        delta,
                        f"marker confidence {delta.field} dropped by "
                        f"{drop:.2f} (> {limits.max_confidence_drop:.2f})",
                    )
                )

    if limits.forbid_k_change:
        for delta in diff.section("clusterings"):
            if delta.field.endswith(".k") and delta.changed:
                violations.append(
                    Violation(
                        "decision",
                        delta,
                        f"chosen k flipped for {delta.field[:-2]}",
                    )
                )

    for delta in diff.section("stages"):
        violations.extend(
            _time_violation(delta, limits.max_stage_regression, limits)
        )
    for delta in diff.section("run"):
        if delta.field == "total_seconds":
            violations.extend(
                _time_violation(delta, limits.max_total_regression, limits)
            )

    for delta in diff.section("cache"):
        if delta.field != "hit_rate":
            continue
        if delta.old is None or delta.new is None:
            continue
        drop = delta.old - delta.new
        if drop > limits.max_hit_rate_drop:
            violations.append(
                Violation(
                    "performance",
                    delta,
                    f"cache hit rate dropped by {drop:.1%} "
                    f"(> {limits.max_hit_rate_drop:.1%})",
                )
            )

    violations.extend(
        _reuse_ratio_violations(
            diff, limits.min_sim_hit_rate, "sim", "sim-result"
        )
    )
    violations.extend(
        _reuse_ratio_violations(
            diff,
            limits.min_clustering_hit_rate,
            "clustering",
            "clustering",
        )
    )
    violations.extend(_job_rate_violations(diff, limits))
    violations.extend(_queue_wait_violations(diff, limits))
    return violations


def _reuse_ratio_violations(
    diff: RunDiff,
    floor: Optional[float],
    summary: str,
    label: str,
) -> List[Violation]:
    """Absolute floor on a candidate content-keyed reuse ratio.

    Like the job-rate gates this bounds the *new* run, not a delta: a
    warm CI run whose reuse ratio collapsed is a cache-key bust no
    matter what the baseline did. A candidate that recorded no such
    block at all (older manifest, or caching disabled) counts as
    ratio 0 — with the floor armed, that is exactly the failure the
    gate exists to surface.
    """
    if floor is None:
        return []
    field = f"{summary}.reuse_ratio"
    old_ratio: Optional[float] = None
    new_ratio = 0.0
    for delta in diff.section("cache"):
        if delta.field == field:
            old_ratio = delta.old
            if delta.new is not None:
                new_ratio = delta.new
    if new_ratio >= floor:
        return []
    return [
        Violation(
            "performance",
            Delta("cache", field, old_ratio, new_ratio),
            f"{label} reuse ratio {new_ratio:.1%} below floor "
            f"{floor:.1%}",
        )
    ]


def _job_counters(diff: RunDiff, side: str) -> dict:
    values = {}
    for delta in diff.section("counters"):
        if delta.field.startswith("jobs."):
            value = delta.old if side == "old" else delta.new
            values[delta.field[len("jobs."):]] = value or 0.0
    return values


def _job_rates(counters: Mapping[str, float]) -> Tuple[Optional[float], Optional[float]]:
    """(failure_rate, retry_rate) over a run's terminal job receipts."""
    finished = (
        counters.get("completed", 0.0)
        + counters.get("failed", 0.0)
        + counters.get("exhausted", 0.0)
    )
    if finished <= 0:
        return None, None
    bad = counters.get("failed", 0.0) + counters.get("exhausted", 0.0)
    return bad / finished, counters.get("retries", 0.0) / finished


def _job_rate_violations(
    diff: RunDiff, limits: DriftThresholds
) -> List[Violation]:
    """Reliability gates over the candidate's receipt-derived counters.

    Unlike the other gates these are absolute bounds on the *new* run,
    not deltas: a failed or endlessly-retried job is a problem even if
    the baseline was equally unhealthy.
    """
    old_failure, old_retry = _job_rates(_job_counters(diff, "old"))
    new_failure, new_retry = _job_rates(_job_counters(diff, "new"))
    violations: List[Violation] = []
    if new_failure is not None and new_failure > limits.max_job_failure_rate:
        violations.append(
            Violation(
                "reliability",
                Delta("counters", "jobs.failure_rate", old_failure, new_failure),
                f"job failure rate {new_failure:.1%} exceeds "
                f"{limits.max_job_failure_rate:.1%}",
            )
        )
    if new_retry is not None and new_retry > limits.max_job_retry_rate:
        violations.append(
            Violation(
                "reliability",
                Delta("counters", "jobs.retry_rate", old_retry, new_retry),
                f"job retry rate {new_retry:.2f}/job exceeds "
                f"{limits.max_job_retry_rate:.2f}/job",
            )
        )
    return violations


def _queue_wait_violations(
    diff: RunDiff, limits: DriftThresholds
) -> List[Violation]:
    """Absolute ceiling on the candidate's p95 job queue-wait seconds.

    Like the job-rate gates this bounds the *new* run only: jobs
    sitting in queue is a fleet-health problem regardless of the
    baseline. A candidate that recorded no queue-wait histogram (events
    disabled, or no ``--via-jobs`` run) produces no violation — unlike
    the reuse-ratio floors, absence here means "not measured", not
    "measured as bad".
    """
    ceiling = limits.max_queue_wait_p95
    if ceiling is None:
        return []
    for delta in diff.section("histograms"):
        if delta.field != "jobs.queue_wait_seconds.p95":
            continue
        if delta.new is not None and delta.new > ceiling:
            return [
                Violation(
                    "reliability",
                    delta,
                    f"p95 queue wait {delta.new:.2f}s exceeds "
                    f"{ceiling:.2f}s",
                )
            ]
    return []


def _time_violation(
    delta: Delta, rel_limit: float, limits: DriftThresholds
) -> List[Violation]:
    if delta.absolute is None or delta.relative is None:
        return []
    if (
        delta.absolute > limits.stage_min_seconds
        and delta.relative > rel_limit
    ):
        return [
            Violation(
                "performance",
                delta,
                f"{delta.field} slowed {delta.relative:+.1%} "
                f"(> {rel_limit:+.1%} and > "
                f"{limits.stage_min_seconds}s absolute)",
            )
        ]
    return []


def thresholds_from_options(options: Mapping[str, Any]) -> DriftThresholds:
    """Build thresholds from CLI-style options, ignoring ``None``\\ s."""
    known = {f.name for f in fields(DriftThresholds)}
    overrides = {
        key: value
        for key, value in options.items()
        if key in known and value is not None
    }
    return DriftThresholds(**overrides)


def render_violations(violations: List[Violation]) -> str:
    if not violations:
        return "drift check passed: no violations"
    lines = [f"drift check FAILED: {len(violations)} violation(s)"]
    lines.extend(f"  {violation.render()}" for violation in violations)
    return "\n".join(lines)
