"""Hierarchical timed spans.

A :class:`Tracer` records a tree of named spans with wall-clock
durations and arbitrary JSON-able attributes. Instrumented code calls
the module-level :func:`span`; with no tracer installed that returns a
shared no-op context manager, so always-on instrumentation in hot
paths stays cheap (one global read and one ``is None`` test).

Spans nest by runtime context: a span opened while another is open
becomes its child. Worker processes never inherit the parent's tracer
(it is process-local and deliberately not pickled), so spans inside
pool workers are silently skipped — cross-process aggregation happens
through :mod:`repro.observability.metrics` instead.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class _NullSpan:
    """Shared do-nothing span used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class SpanNode:
    """One recorded span: name, attributes, timing, children."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: Dict[str, Any], start: float) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.children: List["SpanNode"] = []

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload


class _SpanContext:
    """Context manager opening/closing one :class:`SpanNode`."""

    __slots__ = ("_tracer", "_node")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._node = SpanNode(name, attrs, 0.0)

    def __enter__(self) -> SpanNode:
        self._tracer._open(self._node)
        return self._node

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._close(self._node)
        return False


class Tracer:
    """Collects a tree of spans for one run."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self._origin = time.perf_counter()
        self.roots: List[SpanNode] = []
        self._stack: List[SpanNode] = []
        self._finished: Optional[float] = None

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _SpanContext(self, name, attrs)

    def _open(self, node: SpanNode) -> None:
        node.start = self._now()
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)

    def _close(self, node: SpanNode) -> None:
        node.end = self._now()
        # Tolerate out-of-order exits (generators, exceptions): pop
        # back to the node rather than asserting strict nesting.
        while self._stack:
            top = self._stack.pop()
            if top is node:
                break

    def finish(self) -> float:
        """Freeze the total; spans still open are closed at the end."""
        if self._finished is None:
            while self._stack:
                self._stack.pop().end = self._now()
            self._finished = self._now()
        return self._finished

    def total_seconds(self) -> float:
        return self._finished if self._finished is not None else self._now()

    def stage_seconds(self) -> Dict[str, float]:
        """Top-level span durations aggregated by name, in first-seen
        order — the manifest's per-stage wall-time table."""
        stages: Dict[str, float] = {}
        for root in self.roots:
            stages[root.name] = stages.get(root.name, 0.0) + root.seconds
        return stages

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": "repro.trace/v1",
            "started_at": self.started_at,
            "total_seconds": self.total_seconds(),
            "spans": [root.to_dict() for root in self.roots],
        }


_tracer: Optional[Tracer] = None


def install(tracer: Tracer) -> None:
    """Make ``tracer`` the process-wide span collector."""
    global _tracer
    _tracer = tracer


def uninstall() -> None:
    global _tracer
    _tracer = None


def active() -> Optional[Tracer]:
    return _tracer


def enabled() -> bool:
    return _tracer is not None


def span(name: str, **attrs: Any):
    """A timed span under the active tracer, or a no-op without one."""
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)
