"""Pipeline observability: tracing, metrics, and run manifests.

Three cooperating layers, all dependency-free:

* :mod:`repro.observability.trace` — hierarchical timed spans
  (``with trace.span("cluster", k=k):``) collected into a structured
  JSON trace. Tracing is off by default; when no tracer is installed a
  span is a shared no-op context manager, so instrumented code paths
  cost almost nothing.
* :mod:`repro.observability.metrics` — named counters, gauges, and
  histograms in a process-local registry. Worker processes record into
  a scoped registry whose snapshot travels back through
  :func:`repro.runtime.parallel.parallel_map` and is merged into the
  parent, so counts are whole-run totals regardless of fan-out.
* :mod:`repro.observability.manifest` — a per-run ``manifest.json``
  (config fingerprint, git describe, per-stage wall times, cache
  statistics, chosen k and BIC trace per binary, final error tables)
  plus its validator.

:func:`observe` ties them together for one run: it installs a tracer,
resets the metrics registry, and on exit writes the trace, metrics,
and manifest files. The CLI's ``--trace-out``/``--metrics-out`` flags
(env ``REPRO_TRACE_OUT``/``REPRO_METRICS_OUT``) feed straight into it.

Above the single run sit the cross-run layers (imported as
submodules, not re-exported):

* :mod:`repro.observability.ledger` — an append-only JSONL index of
  every logged run, keyed by run id and config fingerprint;
* :mod:`repro.observability.diff` — the structured run differ and the
  threshold-driven drift sentinel behind ``repro ledger check``;
* :mod:`repro.observability.events` — the crash-safe job-service
  event journal (``repro.events/v1``) behind ``--events`` /
  ``REPRO_EVENTS``;
* :mod:`repro.observability.status` — the queue/fleet snapshot folder
  behind ``repro top``.
"""

from __future__ import annotations

from repro.observability import metrics, trace
from repro.observability.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    build_manifest,
    load_manifest,
    new_run_id,
    upgrade_manifest,
    validate_manifest,
    write_manifest,
)
from repro.observability.session import (
    ObservationSession,
    current_session,
    observe,
    record_bias,
    record_clustering,
    record_config,
    record_errors,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_V1",
    "ObservationSession",
    "build_manifest",
    "current_session",
    "load_manifest",
    "metrics",
    "new_run_id",
    "observe",
    "record_bias",
    "record_clustering",
    "record_config",
    "record_errors",
    "trace",
    "upgrade_manifest",
    "validate_manifest",
    "write_manifest",
]
