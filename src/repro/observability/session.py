"""One run's observation session: tracer + metrics + manifest output.

:func:`observe` is the single entry point the CLI and examples use:

    with observe(trace_out="out/trace.json") as session:
        ...  # spans and metrics record as usual
        session.record_clustering("art/32u", k=4, bic_scores=[...])

On exit it writes the trace JSON to ``trace_out``, a metrics dump to
``metrics_out`` (when given), and the run manifest to ``manifest.json``
next to the trace. When neither output is requested (and neither
``REPRO_TRACE_OUT`` nor ``REPRO_METRICS_OUT`` is set) it yields
``None`` and records nothing, so instrumented entry points can wrap
themselves unconditionally.

Annotations (clusterings, error tables, config fingerprint) are
collected parent-side only; worker processes contribute through the
metrics layer instead.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Union
from contextlib import contextmanager

from repro.observability import metrics, trace
from repro.observability.manifest import (
    build_manifest,
    new_run_id,
    write_manifest,
)
from repro.runtime.fingerprint import fingerprint

PathLike = Union[str, Path]


class ObservationSession:
    """Collects one run's observability state and writes its artifacts."""

    def __init__(
        self,
        trace_out: Optional[PathLike] = None,
        metrics_out: Optional[PathLike] = None,
        manifest_out: Optional[PathLike] = None,
        command: Optional[Sequence[str]] = None,
    ) -> None:
        self.trace_out = Path(trace_out) if trace_out is not None else None
        self.metrics_out = (
            Path(metrics_out) if metrics_out is not None else None
        )
        if manifest_out is not None:
            self.manifest_out: Optional[Path] = Path(manifest_out)
        elif self.trace_out is not None:
            self.manifest_out = self.trace_out.parent / "manifest.json"
        else:
            self.manifest_out = None
        self.command = list(command) if command is not None else []
        self.run_id = new_run_id()
        self.tracer = trace.Tracer()
        self.clusterings: Dict[str, Dict[str, Any]] = {}
        self.errors: Dict[str, Dict[str, float]] = {}
        self.bias: Dict[str, Dict[str, Dict[str, float]]] = {}
        self.matching: Dict[str, Dict[str, Any]] = {}
        self.config_fingerprint: Optional[str] = None
        self.manifest: Optional[Dict[str, Any]] = None

    def record_config(self, material: Any) -> None:
        """Fingerprint the run's configuration for the manifest."""
        self.config_fingerprint = fingerprint("config", material)

    def record_clustering(
        self,
        name: str,
        k: int,
        bic_scores: Sequence[float],
        n_points: Optional[int] = None,
    ) -> None:
        """Record one binary's chosen k and BIC trace."""
        entry: Dict[str, Any] = {
            "k": int(k),
            "bic_scores": [float(score) for score in bic_scores],
        }
        if n_points is not None:
            entry["n_points"] = int(n_points)
        self.clusterings[name] = entry

    def record_errors(self, name: str, table: Mapping[str, float]) -> None:
        """Record one binary's (or method's) final error table."""
        self.errors[name] = {
            key: float(value) for key, value in table.items()
        }

    def record_bias(
        self,
        name: str,
        table: Mapping[Any, Mapping[str, float]],
    ) -> None:
        """Record one binary's per-cluster phase-bias table.

        ``table`` maps cluster id to a row of ``weight``, ``true_cpi``,
        ``sp_cpi``, and signed ``bias`` — the quantity whose
        cross-binary consistency the paper's Section 3 argues for, made
        observable per run so the ledger differ can track its drift.
        """
        self.bias[name] = {
            str(cluster): {
                key: float(value) for key, value in row.items()
            }
            for cluster, row in table.items()
        }

    def record_matching(
        self, name: str, summary: Mapping[str, Any]
    ) -> None:
        """Record one program's cross-binary matcher summary.

        ``summary`` is :meth:`repro.core.matching.MatchReport.
        to_summary`: confidence threshold, weakest marker confidence,
        fuzzy match counts, and per-binary-pair matched/unmatched
        coverage — the quantities the drift sentinel watches so a
        matcher regression trips ``repro ledger check``.
        """
        self.matching[name] = dict(summary)

    def finish(self) -> Dict[str, Any]:
        """Freeze timings, build the manifest, write all artifacts."""
        # Imported here: runtime.cache pulls in the metrics module, so
        # a top-level import would be circular through the package.
        from repro.runtime.config import active_cache

        self.tracer.finish()
        cache = active_cache()
        self.manifest = build_manifest(
            total_seconds=self.tracer.total_seconds(),
            stages=self.tracer.stage_seconds(),
            metrics_snapshot=metrics.snapshot(),
            cache_stats=cache.stats if cache is not None else None,
            clusterings=self.clusterings,
            errors=self.errors,
            bias=self.bias,
            matching=self.matching,
            config_fingerprint=self.config_fingerprint,
            command=self.command,
            run_id=self.run_id,
        )
        if self.trace_out is not None:
            self.trace_out.parent.mkdir(parents=True, exist_ok=True)
            self.trace_out.write_text(
                json.dumps(self.tracer.to_payload(), indent=2) + "\n"
            )
        if self.metrics_out is not None:
            self.metrics_out.parent.mkdir(parents=True, exist_ok=True)
            self.metrics_out.write_text(
                json.dumps(metrics.snapshot(), indent=2, sort_keys=True)
                + "\n"
            )
        if self.manifest_out is not None:
            write_manifest(self.manifest_out, self.manifest)
        return self.manifest


_current: Optional[ObservationSession] = None


def current_session() -> Optional[ObservationSession]:
    return _current


def record_clustering(
    name: str,
    k: int,
    bic_scores: Sequence[float],
    n_points: Optional[int] = None,
) -> None:
    """Annotate the active session, if any (no-op otherwise)."""
    if _current is not None:
        _current.record_clustering(name, k, bic_scores, n_points)


def record_errors(name: str, table: Mapping[str, float]) -> None:
    if _current is not None:
        _current.record_errors(name, table)


def record_bias(name: str, table: Mapping[Any, Mapping[str, float]]) -> None:
    """Annotate the active session, if any (no-op otherwise)."""
    if _current is not None:
        _current.record_bias(name, table)


def record_matching(name: str, summary: Mapping[str, Any]) -> None:
    """Annotate the active session, if any (no-op otherwise)."""
    if _current is not None:
        _current.record_matching(name, summary)


def record_config(material: Any) -> None:
    if _current is not None and _current.config_fingerprint is None:
        _current.record_config(material)


@contextmanager
def observe(
    trace_out: Optional[PathLike] = None,
    metrics_out: Optional[PathLike] = None,
    manifest_out: Optional[PathLike] = None,
    command: Optional[Sequence[str]] = None,
) -> Iterator[Optional[ObservationSession]]:
    """Run one observed block; write artifacts on exit.

    Output paths fall back to ``REPRO_TRACE_OUT``/``REPRO_METRICS_OUT``;
    with no output configured at all this is a transparent no-op that
    yields ``None``. Nested calls reuse the outer session.
    """
    global _current
    if trace_out is None:
        trace_out = os.environ.get("REPRO_TRACE_OUT") or None
    if metrics_out is None:
        metrics_out = os.environ.get("REPRO_METRICS_OUT") or None
    if _current is not None or (
        trace_out is None and metrics_out is None and manifest_out is None
    ):
        yield _current
        return
    session = ObservationSession(
        trace_out=trace_out,
        metrics_out=metrics_out,
        manifest_out=manifest_out,
        command=command,
    )
    metrics.reset()
    trace.install(session.tracer)
    _current = session
    try:
        yield session
    finally:
        _current = None
        trace.uninstall()
        session.finish()
