"""Fold a queue's directories, receipts, and journal into one snapshot.

:func:`queue_status` is the read side of the fleet-observability layer:
it combines what the queue's *directories* say right now (pending
depth, active leases with ages), what the *receipts* prove happened
(terminal tallies, retry and failure rates, execution times,
throughput), and what the *event journal* adds when enabled (which
workers are alive, how long jobs waited in queue) into a single
:class:`QueueStatus` value. ``repro top`` renders it as a refreshing
terminal dashboard; ``--json`` emits :meth:`QueueStatus.to_payload`
for scripting and CI.

Everything here is read-only and advisory: the snapshot is assembled
from unsynchronized reads of a live queue, so counts can be a rename
or two stale — fine for a dashboard, and why terminal truth stays
with the receipts.

The wait/execution distributions reuse the mergeable log-bucket
:class:`~repro.observability.metrics.Histogram`, so the quantiles here
are the same p50/p95/p99 the manifests and the ledger report.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.observability.events import (
    lease_age_samples,
    queue_wait_samples,
    read_events,
)
from repro.observability.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jobs.queue import JobQueue

#: A worker whose last journal sign of life is older than this many
#: seconds (and that never wrote its exit event) is presumed dead.
DEFAULT_STALE_AFTER = 30.0

#: Receipts younger than this feed the "recent throughput" figure.
DEFAULT_THROUGHPUT_WINDOW = 300.0


@dataclass(frozen=True)
class LeaseStatus:
    """One currently leased job, as the active directory tells it."""

    job_id: str
    kind: str
    worker: str
    age_seconds: Optional[float]
    expires_in_seconds: Optional[float]
    attempt: int = 0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "worker": self.worker,
            "age_seconds": self.age_seconds,
            "expires_in_seconds": self.expires_in_seconds,
            "attempt": self.attempt,
        }


@dataclass(frozen=True)
class WorkerStatus:
    """One worker's journal-derived liveness."""

    worker: str
    state: str  # "live" | "stale" | "exited"
    seconds_since_seen: float
    executed: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "state": self.state,
            "seconds_since_seen": self.seconds_since_seen,
            "executed": self.executed,
        }


@dataclass(frozen=True)
class QueueStatus:
    """One moment's folded view of a queue and its fleet."""

    root: str
    generated_at: float
    pending: int
    active: List[LeaseStatus]
    workers: List[WorkerStatus]
    receipts: Dict[str, int]  # ok / failed / exhausted
    retries: int
    attempts: Dict[str, int]  # receipt attempt counts, keyed by str(n)
    failure_rate: Optional[float]
    retry_rate: Optional[float]
    throughput_per_minute: Optional[float]
    eta_seconds: Optional[float]
    queue_wait: Histogram = field(default_factory=Histogram)
    execution: Histogram = field(default_factory=Histogram)
    lease_age: Histogram = field(default_factory=Histogram)
    events: int = 0

    @property
    def drained(self) -> bool:
        return self.pending == 0 and not self.active

    @property
    def finished(self) -> int:
        return sum(self.receipts.values())

    def to_payload(self) -> Dict[str, Any]:
        """The ``repro top --json`` document (plain JSON-able)."""
        return {
            "root": self.root,
            "generated_at": self.generated_at,
            "drained": self.drained,
            "pending": self.pending,
            "active": [lease.to_payload() for lease in self.active],
            "workers": [worker.to_payload() for worker in self.workers],
            "receipts": dict(self.receipts),
            "retries": self.retries,
            "attempts": dict(self.attempts),
            "failure_rate": self.failure_rate,
            "retry_rate": self.retry_rate,
            "throughput_per_minute": self.throughput_per_minute,
            "eta_seconds": self.eta_seconds,
            "histograms": {
                "queue_wait_seconds": _histogram_payload(self.queue_wait),
                "execution_seconds": _histogram_payload(self.execution),
                "lease_age_seconds": _histogram_payload(self.lease_age),
            },
            "events": self.events,
        }


def _histogram_payload(histogram: Histogram) -> Dict[str, Any]:
    return {
        "count": histogram.count,
        "mean": histogram.mean,
        **histogram.quantiles(),
    }


def queue_status(
    queue: "JobQueue",
    *,
    now: Optional[float] = None,
    stale_after: float = DEFAULT_STALE_AFTER,
    throughput_window: float = DEFAULT_THROUGHPUT_WINDOW,
) -> QueueStatus:
    """Assemble one :class:`QueueStatus` snapshot of a live queue."""
    now = time.time() if now is None else now
    events = read_events(queue.events_path)

    active = _active_leases(queue, now)
    receipts = queue.receipts()
    tallies = {"ok": 0, "failed": 0, "exhausted": 0}
    attempts: Dict[str, int] = {}
    retries = 0
    execution = Histogram()
    recent = 0
    for receipt in receipts:
        tallies[receipt.status] += 1
        retries += receipt.retries
        key = str(receipt.attempt)
        attempts[key] = attempts.get(key, 0) + 1
        if receipt.status != "exhausted":
            execution.observe(receipt.seconds)
        if receipt.created_at and now - receipt.created_at <= (
            throughput_window
        ):
            recent += 1
    finished = sum(tallies.values())
    failure_rate = (
        (tallies["failed"] + tallies["exhausted"]) / finished
        if finished
        else None
    )
    retry_rate = retries / finished if finished else None
    throughput = (
        recent / (throughput_window / 60.0) if finished else None
    )

    queue_wait = Histogram()
    for wait in queue_wait_samples(events):
        queue_wait.observe(wait)
    lease_age = Histogram()
    for age in lease_age_samples(events):
        lease_age.observe(age)

    workers = _worker_statuses(events, now, stale_after)
    live = sum(1 for worker in workers if worker.state == "live")
    open_jobs = len(active) + _pending_count(queue)
    if open_jobs == 0:
        eta: Optional[float] = 0.0
    elif execution.count:
        eta = open_jobs * execution.mean / max(live, 1)
    else:
        eta = None

    return QueueStatus(
        root=str(queue.root),
        generated_at=now,
        pending=_pending_count(queue),
        active=active,
        workers=workers,
        receipts=tallies,
        retries=retries,
        attempts=dict(sorted(attempts.items())),
        failure_rate=failure_rate,
        retry_rate=retry_rate,
        throughput_per_minute=throughput,
        eta_seconds=eta,
        queue_wait=queue_wait,
        execution=execution,
        lease_age=lease_age,
        events=len(events),
    )


def _pending_count(queue: "JobQueue") -> int:
    return len(queue.pending_ids())


def _active_leases(queue: "JobQueue", now: float) -> List[LeaseStatus]:
    leases: List[LeaseStatus] = []
    for path in sorted(queue.active_dir.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            continue  # completed or mid-publish while we scanned
        leased_at = record.get("leased_at")
        expires_at = record.get("lease_expires_at")
        leases.append(
            LeaseStatus(
                job_id=str(record.get("id", path.stem)),
                kind=str(record.get("kind", "?")),
                worker=str(record.get("leased_by") or "?"),
                age_seconds=(
                    max(0.0, now - leased_at)
                    if isinstance(leased_at, (int, float))
                    else None
                ),
                expires_in_seconds=(
                    expires_at - now
                    if isinstance(expires_at, (int, float))
                    else None
                ),
                attempt=int(record.get("attempt", 0)),
            )
        )
    return leases


def _worker_statuses(
    events: List[Dict[str, Any]], now: float, stale_after: float
) -> List[WorkerStatus]:
    last_seen: Dict[str, float] = {}
    executed: Dict[str, int] = {}
    exited: Dict[str, bool] = {}
    for event in events:
        name = event.get("event")
        if name not in (
            "worker.started", "worker.heartbeat", "worker.exited"
        ):
            continue
        worker = event["worker"]
        last_seen[worker] = event["ts"]
        exited[worker] = name == "worker.exited"
        if "executed" in event:
            executed[worker] = int(event["executed"])
    statuses = []
    for worker in sorted(last_seen):
        since = max(0.0, now - last_seen[worker])
        if exited[worker]:
            state = "exited"
        elif since <= stale_after:
            state = "live"
        else:
            state = "stale"
        statuses.append(
            WorkerStatus(
                worker=worker,
                state=state,
                seconds_since_seen=since,
                executed=executed.get(worker, 0),
            )
        )
    return statuses


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1%}"


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 120:
        return f"{value / 60:.1f}m"
    return f"{value:.2f}s"


def _histogram_line(label: str, histogram: Histogram) -> str:
    if not histogram.count:
        return f"{label:<12} (no samples)"
    quantiles = histogram.quantiles()
    return (
        f"{label:<12} n={histogram.count:<5} "
        f"mean={_fmt_seconds(histogram.mean):<8} "
        f"p50={_fmt_seconds(quantiles['p50']):<8} "
        f"p95={_fmt_seconds(quantiles['p95']):<8} "
        f"p99={_fmt_seconds(quantiles['p99'])}"
    )


def render_status(status: QueueStatus) -> str:
    """The ``repro top`` dashboard body, one frame."""
    lines = [
        f"queue: {status.root}   "
        f"events: {status.events}   "
        f"{'DRAINED' if status.drained else 'running'}",
        (
            f"pending {status.pending} | active {len(status.active)} | "
            f"ok {status.receipts['ok']} | "
            f"failed {status.receipts['failed']} | "
            f"exhausted {status.receipts['exhausted']} | "
            f"retries {status.retries}"
        ),
        (
            f"failure rate {_fmt_rate(status.failure_rate)} | "
            f"retry rate {_fmt_rate(status.retry_rate)} | "
            f"throughput "
            + (
                "-"
                if status.throughput_per_minute is None
                else f"{status.throughput_per_minute:.1f}/min"
            )
            + f" | eta {_fmt_seconds(status.eta_seconds)}"
        ),
        "",
        _histogram_line("queue wait", status.queue_wait),
        _histogram_line("execution", status.execution),
        _histogram_line("lease age", status.lease_age),
    ]
    if status.workers:
        lines.append("")
        lines.append(f"{'worker':<12} {'state':<7} {'seen':>8} {'jobs':>5}")
        for worker in status.workers:
            lines.append(
                f"{worker.worker:<12} {worker.state:<7} "
                f"{_fmt_seconds(worker.seconds_since_seen):>8} "
                f"{worker.executed:>5}"
            )
    if status.active:
        lines.append("")
        lines.append(
            f"{'lease':<14} {'kind':<10} {'worker':<12} "
            f"{'age':>8} {'expires':>8} {'att':>3}"
        )
        for lease in status.active:
            lines.append(
                f"{lease.job_id[:12]:<14} {lease.kind:<10} "
                f"{lease.worker:<12} "
                f"{_fmt_seconds(lease.age_seconds):>8} "
                f"{_fmt_seconds(lease.expires_in_seconds):>8} "
                f"{lease.attempt:>3}"
            )
    return "\n".join(lines)
