"""Append-only run ledger: the cross-run index over manifests.

One manifest describes one run; the ledger is what makes *sequences*
of runs observable. Every ``repro ledger log`` appends one JSONL
record — run id, config fingerprint, git describe, stage wall times,
cache statistics, chosen k per clustering, error tables, bias tables,
matcher coverage/confidence summaries, and the run's metric counters
plus histogram quantile summaries — so
any two runs of the same semantic configuration can be compared long
after their full manifests have moved or been pruned.

The ledger is deliberately plain JSONL:

* appends are truly atomic — one ``os.write`` through ``O_APPEND``
  (see :mod:`repro.runtime.locking`), fsynced, under an advisory file
  lock so concurrent workers can neither interleave bytes within a
  line nor race the duplicate-run-id check;
* it is greppable and diff-able without tooling;
* unknown records (future schema versions) are skipped, not fatal.

``baseline_for`` implements the ledger's one policy decision: the
baseline of a run is the **most recent earlier entry with the same
config fingerprint** — comparing runs whose configurations differ
would report configuration changes as drift.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import FileFormatError
from repro.observability.manifest import load_manifest, upgrade_manifest
from repro.runtime.locking import append_line, file_lock

LEDGER_SCHEMA = "repro.ledger/v1"

#: Default ledger location: ``REPRO_LEDGER`` or a file in the cwd.
DEFAULT_LEDGER = "repro-ledger.jsonl"

PathLike = Union[str, Path]


def default_ledger_path() -> Path:
    """The ledger the CLI uses absent ``--ledger``: env or cwd."""
    return Path(os.environ.get("REPRO_LEDGER") or DEFAULT_LEDGER)


@dataclass(frozen=True)
class LedgerEntry:
    """One indexed run: the manifest fields cross-run comparison needs."""

    run_id: str
    created_at: float
    config_fingerprint: Optional[str]
    git_describe: str
    command: List[str] = field(default_factory=list)
    total_seconds: float = 0.0
    stages: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)
    clusterings: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    errors: Dict[str, Dict[str, float]] = field(default_factory=dict)
    bias: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    matching: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Optional[float]]] = field(
        default_factory=dict
    )
    manifest_path: Optional[str] = None

    def to_record(self) -> Dict[str, Any]:
        return {
            "schema": LEDGER_SCHEMA,
            "run_id": self.run_id,
            "created_at": self.created_at,
            "config_fingerprint": self.config_fingerprint,
            "git_describe": self.git_describe,
            "command": list(self.command),
            "total_seconds": self.total_seconds,
            "stages": dict(self.stages),
            "cache": dict(self.cache),
            "clusterings": dict(self.clusterings),
            "errors": dict(self.errors),
            "bias": dict(self.bias),
            "matching": dict(self.matching),
            "counters": dict(self.counters),
            "histograms": dict(self.histograms),
            "manifest_path": self.manifest_path,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "LedgerEntry":
        return cls(
            run_id=record["run_id"],
            created_at=float(record.get("created_at", 0.0)),
            config_fingerprint=record.get("config_fingerprint"),
            git_describe=record.get("git_describe", "unknown"),
            command=list(record.get("command") or []),
            total_seconds=float(record.get("total_seconds", 0.0)),
            stages=dict(record.get("stages") or {}),
            cache=dict(record.get("cache") or {}),
            clusterings=dict(record.get("clusterings") or {}),
            errors=dict(record.get("errors") or {}),
            bias=dict(record.get("bias") or {}),
            matching=dict(record.get("matching") or {}),
            counters=dict(record.get("counters") or {}),
            histograms=dict(record.get("histograms") or {}),
            manifest_path=record.get("manifest_path"),
        )


def _histogram_summary(summary: Mapping[str, Any]) -> Dict[str, Any]:
    """Reduce one manifest histogram to count/mean + p50/p95/p99."""
    # Rehydrate through the metrics layer so quantile math lives in
    # exactly one place.
    from repro.observability.metrics import Histogram

    instrument = Histogram()
    instrument.count = int(summary.get("count", 0))
    instrument.total = float(summary.get("sum", 0.0))
    instrument.min = summary.get("min")
    instrument.max = summary.get("max")
    instrument.buckets = dict(summary.get("buckets") or {})
    return {
        "count": instrument.count,
        "mean": instrument.mean,
        **instrument.quantiles(),
    }


def _flatten_matching(row: Mapping[str, Any]) -> Dict[str, float]:
    """One manifest matching row as flat numbers for the differ.

    The scalar fields pass through; the nested per-pair table is
    flattened to ``coverage[a|b]`` entries so the drift sentinel can
    watch each binary pair independently.
    """
    flat: Dict[str, float] = {
        key: float(value)
        for key, value in row.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    for pair, info in (row.get("pairs") or {}).items():
        if isinstance(info, dict) and isinstance(
            info.get("coverage"), (int, float)
        ):
            flat[f"coverage[{pair}]"] = float(info["coverage"])
    return flat


def _flatten_cache(block: Mapping[str, Any]) -> Dict[str, float]:
    """One manifest cache block as flat numbers for the differ.

    The aggregate counters pass through; the nested per-kind rows and
    the content-keyed reuse summaries flatten to ``<kind>.<counter>``,
    ``sim.<counter>``, and ``clustering.<counter>`` keys so the drift
    sentinel can gate on (for example) ``sim.reuse_ratio`` or
    ``clustering.reuse_ratio`` like any other numeric field.
    """
    flat: Dict[str, float] = {
        key: float(value)
        for key, value in block.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    for kind, row in (block.get("kinds") or {}).items():
        if not isinstance(row, dict):
            continue
        for key, value in row.items():
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                flat[f"{kind}.{key}"] = float(value)
    # Summaries flatten after the kind rows, so where the "clustering"
    # summary shares key names with the "clustering" kind row, the
    # summary (metric-counter-derived, --via-jobs-receipt-inclusive)
    # values win.
    for summary in ("sim", "clustering"):
        for key, value in (block.get(summary) or {}).items():
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                flat[f"{summary}.{key}"] = float(value)
    return flat


def entry_from_manifest(
    manifest: Mapping[str, Any],
    manifest_path: Optional[PathLike] = None,
) -> LedgerEntry:
    """Index one (v2, or upgradable v1) manifest as a ledger entry."""
    manifest = upgrade_manifest(dict(manifest))
    metrics_block = manifest.get("metrics") or {}
    histograms = {
        name: _histogram_summary(summary)
        for name, summary in (metrics_block.get("histograms") or {}).items()
        if isinstance(summary, dict)
    }
    return LedgerEntry(
        run_id=manifest["run_id"],
        created_at=float(manifest.get("created_at", 0.0)),
        config_fingerprint=manifest.get("config_fingerprint"),
        git_describe=manifest.get("git_describe", "unknown"),
        command=list(manifest.get("command") or []),
        total_seconds=float(manifest.get("total_seconds", 0.0)),
        stages={
            stage["name"]: float(stage["seconds"])
            for stage in manifest.get("stages") or []
        },
        cache=_flatten_cache(manifest.get("cache") or {}),
        clusterings={
            name: {
                key: entry[key]
                for key in ("k", "n_points")
                if key in entry
            }
            for name, entry in (manifest.get("clusterings") or {}).items()
        },
        errors={
            name: dict(table)
            for name, table in (manifest.get("errors") or {}).items()
        },
        bias={
            name: {
                cluster: dict(row) for cluster, row in table.items()
            }
            for name, table in (manifest.get("bias") or {}).items()
        },
        matching={
            name: _flatten_matching(row)
            for name, row in (manifest.get("matching") or {}).items()
            if isinstance(row, dict)
        },
        counters=dict(metrics_block.get("counters") or {}),
        histograms=histograms,
        manifest_path=(
            str(Path(manifest_path).resolve())
            if manifest_path is not None
            else None
        ),
    )


class RunLedger:
    """One append-only JSONL ledger file."""

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self.path = Path(path) if path is not None else default_ledger_path()

    def log_manifest(
        self,
        manifest: Mapping[str, Any],
        manifest_path: Optional[PathLike] = None,
    ) -> LedgerEntry:
        """Append one manifest's index record; returns the entry.

        Re-logging a run id already present is refused — the ledger is
        append-only and one run is one record. The duplicate check and
        the append are one critical section under the ledger's advisory
        lock, so two concurrent ``log`` calls for the same run id
        cannot both pass the check; the append itself is a single
        fsynced ``O_APPEND`` write, so concurrent writers cannot
        interleave bytes within each other's lines.
        """
        entry = entry_from_manifest(manifest, manifest_path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry.to_record(), sort_keys=True)
        with file_lock(self.path):
            if any(
                existing.run_id == entry.run_id
                for existing in self.entries()
            ):
                raise FileFormatError(
                    f"{self.path}: run {entry.run_id} is already logged"
                )
            append_line(self.path, line)
        return entry

    def log_path(self, manifest_path: PathLike) -> LedgerEntry:
        """Load, upgrade, validate, and log a manifest file."""
        return self.log_manifest(
            load_manifest(manifest_path), manifest_path=manifest_path
        )

    def entries(self) -> List[LedgerEntry]:
        """All readable entries, oldest first (file order)."""
        if not self.path.exists():
            return []
        entries: List[LedgerEntry] = []
        for line_number, line in enumerate(
            self.path.read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise FileFormatError(
                    f"{self.path}:{line_number}: corrupt ledger line: {exc}"
                ) from exc
            if (
                not isinstance(record, dict)
                or record.get("schema") != LEDGER_SCHEMA
                or not isinstance(record.get("run_id"), str)
            ):
                # Skip records written by a different (future) schema
                # instead of failing the whole ledger.
                continue
            entries.append(LedgerEntry.from_record(record))
        return entries

    def entry(self, run_id: str) -> LedgerEntry:
        """Look one run up by id; raises if absent."""
        for entry in self.entries():
            if entry.run_id == run_id:
                return entry
        raise FileFormatError(f"{self.path}: no ledger entry for {run_id!r}")

    def baseline_for(
        self,
        config_fingerprint: Optional[str],
        exclude_run_id: Optional[str] = None,
    ) -> Optional[LedgerEntry]:
        """The most recent earlier run with the same config fingerprint.

        ``exclude_run_id`` keeps a just-logged run from being its own
        baseline. Runs with no fingerprint never match anything.
        """
        if config_fingerprint is None:
            return None
        baseline: Optional[LedgerEntry] = None
        for entry in self.entries():
            if entry.run_id == exclude_run_id:
                continue
            if entry.config_fingerprint == config_fingerprint:
                baseline = entry  # file order == log order; keep latest
        return baseline


def render_entries(entries: List[LedgerEntry]) -> str:
    """The ``repro ledger list`` table."""
    if not entries:
        return "(ledger is empty)"
    lines = [
        f"{'run_id':<14} {'config':<14} {'git':<18} {'total':>9} "
        f"{'errors':>7} command",
        "-" * 78,
    ]
    for entry in entries:
        fingerprint = (entry.config_fingerprint or "-")[:12]
        command = " ".join(entry.command) or "-"
        lines.append(
            f"{entry.run_id:<14} {fingerprint:<14} "
            f"{entry.git_describe[:18]:<18} "
            f"{entry.total_seconds:>8.2f}s "
            f"{sum(len(t) for t in entry.errors.values()):>7} {command}"
        )
    return "\n".join(lines)
