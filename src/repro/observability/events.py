"""The fleet event journal: crash-safe structured JSONL events.

While a run-level manifest describes a run *after* it finishes, the
event journal describes the job service *while it runs*: every queue
transition (submit, claim, reclaim, exhaustion, receipt), every worker
lifecycle edge (start, heartbeat, exit, per-attempt start), and every
sweep wave appends one ``repro.events/v1`` JSON line to
``<queue>/events.jsonl``. Appends go through
:func:`repro.runtime.locking.append_line` — one ``O_APPEND`` write
plus fsync per event — so concurrent submitters, workers, and
reclaimers can share the journal with no daemon and no torn lines, and
a SIGKILLed worker's journal is valid up to its last completed write.

Emission follows the span-trace pattern for zero-cost disablement:
the :class:`~repro.jobs.queue.JobQueue` holds either an
:class:`EventJournal` or ``None``, and every emit site is one
attribute read plus an ``is None`` test away from a no-op. With events
disabled (the default) no journal file is ever created and queue
behavior is bit-identical to a build without this module.

Every event carries the schema tag, the event name, the emitting
process id, a wall-clock timestamp (``ts``, for cross-process deltas
such as queue waits) and a monotonic timestamp (``mono``, meaningful
only within one process), plus event-specific fields: job id, kind,
worker id, attempt, lease expiry, config fingerprint. The
:mod:`repro.observability.status` folder and ``repro top`` /
``repro report sweep`` read the journal back through
:func:`read_events`; :func:`validate_event` is the single schema
authority CI asserts every line against.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.errors import FileFormatError
from repro.runtime.locking import append_line

EVENT_SCHEMA = "repro.events/v1"

#: Environment toggle: any non-empty value enables journaling for
#: queues constructed without an explicit ``events=`` argument.
EVENTS_ENV = "REPRO_EVENTS"

#: Every event name the schema admits, by emitting layer.
QUEUE_EVENTS = (
    "job.submitted",   # queue.submit actually queued a record
    "job.claimed",     # claim-by-rename succeeded; lease stamped
    "job.reclaimed",   # expired lease requeued with a bumped attempt
    "job.exhausted",   # reclaim burned the last allowed attempt
    "job.receipt",     # the winning terminal receipt was published
)
WORKER_EVENTS = (
    "worker.started",
    "worker.heartbeat",
    "worker.exited",
    "job.started",     # one execution attempt began on a worker
)
SWEEP_EVENTS = (
    "sweep.started",
    "sweep.wave",
    "sweep.finished",
)
EVENT_TYPES = frozenset(QUEUE_EVENTS + WORKER_EVENTS + SWEEP_EVENTS)

#: Events that must name the job they concern.
JOB_EVENTS = frozenset(
    name for name in EVENT_TYPES if name.startswith("job.")
)
#: Events that must name the worker that emitted them.
WORKER_SCOPED_EVENTS = frozenset(WORKER_EVENTS)

PathLike = Union[str, Path]


def events_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve the journal toggle: explicit argument beats the env."""
    if explicit is not None:
        return bool(explicit)
    return bool(os.environ.get(EVENTS_ENV))


class EventJournal:
    """One append-only JSONL event stream (usually a queue's)."""

    __slots__ = ("path",)

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the record that was written.

        ``None``-valued fields are dropped so emit sites can pass
        optional context unconditionally. The write is a single
        ``O_APPEND`` ``os.write`` + fsync, so concurrent emitters
        never interleave within a line and a crash never leaves a
        torn record behind.
        """
        if event not in EVENT_TYPES:
            raise FileFormatError(
                f"unknown event type {event!r}; known: "
                f"{', '.join(sorted(EVENT_TYPES))}"
            )
        record: Dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "event": event,
            "ts": time.time(),
            "mono": time.monotonic(),
            "pid": os.getpid(),
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        validate_event(record)
        append_line(self.path, json.dumps(record, sort_keys=True))
        return record


def validate_event(record: Dict[str, Any]) -> Dict[str, Any]:
    """Check one journal record against ``repro.events/v1``.

    Raises :class:`~repro.errors.FileFormatError` naming the first
    problem; returns the record unchanged when it conforms. This is
    the single schema authority — tests and CI validate every journal
    line through it.
    """

    def _fail(message: str) -> None:
        raise FileFormatError(f"{EVENT_SCHEMA}: {message}: {record!r}")

    if record.get("schema") != EVENT_SCHEMA:
        _fail(f"schema is {record.get('schema')!r}")
    event = record.get("event")
    if event not in EVENT_TYPES:
        _fail(f"unknown event {event!r}")
    for key in ("ts", "mono"):
        value = record.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(f"{key} must be a number, got {value!r}")
    pid = record.get("pid")
    if not isinstance(pid, int) or isinstance(pid, bool) or pid < 0:
        _fail(f"pid must be a non-negative int, got {pid!r}")
    if event in JOB_EVENTS:
        job_id = record.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            _fail("job event without a job_id")
    if event in WORKER_SCOPED_EVENTS:
        worker = record.get("worker")
        if not isinstance(worker, str) or not worker:
            _fail("worker event without a worker id")
    attempt = record.get("attempt")
    if attempt is not None and (
        not isinstance(attempt, int) or isinstance(attempt, bool)
    ):
        _fail(f"attempt must be an int, got {attempt!r}")
    return record


def read_events(path: PathLike) -> List[Dict[str, Any]]:
    """Parse and validate a journal; foreign-schema lines are skipped.

    Returns the events in file (= emission-commit) order. A missing
    journal reads as empty — a queue that never had events enabled is
    simply a queue with no history. Corrupt JSON or a schema-invalid
    ``repro.events`` record raises with the offending line number.
    """
    journal = Path(path)
    try:
        text = journal.read_text()
    except FileNotFoundError:
        return []
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise FileFormatError(
                f"{journal}:{lineno}: corrupt journal line: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise FileFormatError(
                f"{journal}:{lineno}: journal line is not an object"
            )
        if record.get("schema") != EVENT_SCHEMA:
            continue  # a foreign writer's line; not ours to judge
        try:
            events.append(validate_event(record))
        except FileFormatError as exc:
            raise FileFormatError(f"{journal}:{lineno}: {exc}") from exc
    return events


def events_for_job(
    events: Iterable[Dict[str, Any]], job_id: str
) -> List[Dict[str, Any]]:
    """One job's events, preserving journal order."""
    return [event for event in events if event.get("job_id") == job_id]


def queue_wait_samples(
    events: Iterable[Dict[str, Any]]
) -> List[float]:
    """Per-claim queue waits: seconds from (re)queueing to claim.

    Each ``job.claimed`` is paired with the latest earlier
    ``job.submitted``/``job.reclaimed`` for the same job, using wall
    timestamps (the two events usually come from different
    processes). Claims with no visible queueing event — a journal
    enabled mid-flight — contribute nothing.
    """
    queued_at: Dict[str, float] = {}
    waits: List[float] = []
    for event in events:
        name = event.get("event")
        job_id = event.get("job_id")
        if name in ("job.submitted", "job.reclaimed"):
            queued_at[job_id] = event["ts"]
        elif name == "job.claimed" and job_id in queued_at:
            waits.append(max(0.0, event["ts"] - queued_at.pop(job_id)))
    return waits


def lease_age_samples(
    events: Iterable[Dict[str, Any]]
) -> List[float]:
    """Per-lease lifetimes: seconds from claim to the lease's end.

    A lease ends at the job's receipt, or at the reclaim/exhaustion
    that took it over. Receipts for leases the journal never saw
    claimed (journal enabled mid-flight) contribute nothing.
    """
    claimed_at: Dict[str, float] = {}
    ages: List[float] = []
    for event in events:
        name = event.get("event")
        job_id = event.get("job_id")
        if name == "job.claimed":
            claimed_at[job_id] = event["ts"]
        elif name in ("job.receipt", "job.reclaimed", "job.exhausted"):
            if job_id in claimed_at:
                ages.append(max(0.0, event["ts"] - claimed_at.pop(job_id)))
    return ages
