"""Pretty-printing manifests for ``repro inspect``."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def render_manifest(manifest: Mapping[str, Any]) -> str:
    """Human-readable summary: stage timings, cache, clusterings."""
    lines: List[str] = []
    command = " ".join(manifest.get("command") or []) or "(unknown command)"
    lines.append(f"run: {command}")
    lines.append(
        f"git {manifest.get('git_describe', 'unknown')} | "
        f"python {manifest.get('python', '?')} | "
        f"config {str(manifest.get('config_fingerprint'))[:12]}"
    )
    total = float(manifest.get("total_seconds", 0.0))
    lines.append(f"total wall time: {_format_seconds(total)}")

    stages = manifest.get("stages") or []
    if stages:
        lines.append("")
        lines.append(f"{'stage':<24} {'seconds':>10} {'share':>7}")
        lines.append("-" * 43)
        accounted = 0.0
        for stage in stages:
            seconds = float(stage["seconds"])
            accounted += seconds
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"{stage['name']:<24} {seconds:>10.4f} {share:>7.1%}"
            )
        lines.append("-" * 43)
        share = accounted / total if total > 0 else 0.0
        lines.append(f"{'(accounted)':<24} {accounted:>10.4f} {share:>7.1%}")

    cache = manifest.get("cache") or {}
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    lines.append("")
    if lookups:
        lines.append(
            f"cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"({cache.get('hit_rate', 0.0):.1%} hit rate), "
            f"{cache.get('bytes_read', 0):,} B read, "
            f"{cache.get('bytes_written', 0):,} B written"
        )
    else:
        lines.append("cache: no lookups (cache disabled or unused)")

    clusterings: Dict[str, Any] = manifest.get("clusterings") or {}
    if clusterings:
        lines.append("")
        lines.append("clusterings:")
        for name in sorted(clusterings):
            entry = clusterings[name]
            scores = entry.get("bic_scores") or []
            lines.append(
                f"  {name}: k={entry.get('k')} "
                f"({len(scores)} BIC evaluations)"
            )

    errors: Dict[str, Any] = manifest.get("errors") or {}
    if errors:
        lines.append("")
        lines.append("errors:")
        for name in sorted(errors):
            cells = ", ".join(
                f"{key}={value:.4f}"
                for key, value in sorted(errors[name].items())
            )
            lines.append(f"  {name}: {cells}")
    return "\n".join(lines)
