"""Pretty-printing manifests for ``repro inspect``.

Renders any schema-valid manifest, including degenerate ones: a run
with no stages, no clusterings, or no error tables prints an explicit
"(none recorded)" line instead of an empty or broken table. Histogram
metrics are summarized with approximate p50/p95/p99 quantiles read
from their log-scale buckets.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _format_quantile(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.4g}"


def render_manifest(manifest: Mapping[str, Any]) -> str:
    """Human-readable summary: stage timings, cache, clusterings."""
    lines: List[str] = []
    command = " ".join(manifest.get("command") or []) or "(unknown command)"
    lines.append(f"run: {command}")
    lines.append(
        f"run id {manifest.get('run_id', 'unknown')} | "
        f"git {manifest.get('git_describe', 'unknown')} | "
        f"python {manifest.get('python', '?')} | "
        f"config {str(manifest.get('config_fingerprint'))[:12]}"
    )
    total = float(manifest.get("total_seconds", 0.0))
    lines.append(f"total wall time: {_format_seconds(total)}")

    stages = manifest.get("stages") or []
    lines.append("")
    if stages:
        lines.append(f"{'stage':<24} {'seconds':>10} {'share':>7}")
        lines.append("-" * 43)
        accounted = 0.0
        for stage in stages:
            seconds = float(stage["seconds"])
            accounted += seconds
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"{stage['name']:<24} {seconds:>10.4f} {share:>7.1%}"
            )
        lines.append("-" * 43)
        share = accounted / total if total > 0 else 0.0
        lines.append(f"{'(accounted)':<24} {accounted:>10.4f} {share:>7.1%}")
    else:
        lines.append("stages: (none recorded)")

    cache = manifest.get("cache") or {}
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    lines.append("")
    if lookups:
        lines.append(
            f"cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"({cache.get('hit_rate', 0.0):.1%} hit rate), "
            f"{cache.get('bytes_read', 0):,} B read, "
            f"{cache.get('bytes_written', 0):,} B written"
        )
    else:
        lines.append("cache: no lookups (cache disabled or unused)")
    kinds: Dict[str, Any] = cache.get("kinds") or {}
    for kind in sorted(kinds):
        row = kinds[kind]
        kind_lookups = row.get("hits", 0) + row.get("misses", 0)
        if not kind_lookups:
            continue
        lines.append(
            f"  {kind}: {row.get('hits', 0)} hits / "
            f"{row.get('misses', 0)} misses "
            f"({row.get('hit_rate', 0.0):.1%} hit rate), "
            f"{row.get('stale_evictions', 0)} stale evicted"
        )
    sim = cache.get("sim") or {}
    sim_lookups = sim.get("hits", 0) + sim.get("misses", 0)
    if sim_lookups:
        lines.append(
            f"sim-result reuse: {sim.get('hits', 0)} of "
            f"{sim_lookups} region lookups "
            f"({sim.get('reuse_ratio', 0.0):.1%})"
        )
    clustering = cache.get("clustering") or {}
    clustering_lookups = (
        clustering.get("hits", 0) + clustering.get("misses", 0)
    )
    if clustering_lookups:
        lines.append(
            f"clustering reuse: {clustering.get('hits', 0)} of "
            f"{clustering_lookups} clustering lookups "
            f"({clustering.get('reuse_ratio', 0.0):.1%})"
        )

    clusterings: Dict[str, Any] = manifest.get("clusterings") or {}
    lines.append("")
    if clusterings:
        lines.append("clusterings:")
        for name in sorted(clusterings):
            entry = clusterings[name]
            scores = entry.get("bic_scores") or []
            lines.append(
                f"  {name}: k={entry.get('k')} "
                f"({len(scores)} BIC evaluations)"
            )
    else:
        lines.append("clusterings: (none recorded)")

    errors: Dict[str, Any] = manifest.get("errors") or {}
    lines.append("")
    if errors:
        lines.append("errors:")
        for name in sorted(errors):
            cells = ", ".join(
                f"{key}={value:.4f}"
                for key, value in sorted(errors[name].items())
            )
            lines.append(f"  {name}: {cells}")
    else:
        lines.append("errors: (none recorded)")

    matching: Dict[str, Any] = manifest.get("matching") or {}
    if matching:
        lines.append("")
        lines.append("matching (cross-binary marker matcher):")
        for name in sorted(matching):
            row = matching[name]
            lines.append(
                f"  {name}: threshold="
                f"{float(row.get('threshold', 1.0)):.2f}, "
                f"min confidence="
                f"{float(row.get('min_confidence', 1.0)):.2f}, "
                f"fuzzy {int(row.get('fuzzy_procedures', 0))} proc / "
                f"{int(row.get('fuzzy_loops', 0))} loop, "
                f"{int(row.get('low_confidence_dropped', 0))} dropped, "
                f"min pair coverage="
                f"{float(row.get('min_pair_coverage', 1.0)):.1%}"
            )
            pairs = row.get("pairs") or {}
            for pair in sorted(pairs):
                info = pairs[pair]
                lines.append(
                    f"    {pair}: coverage="
                    f"{float(info.get('coverage', 0.0)):.1%} "
                    f"({info.get('matched_a')}/{info.get('candidates_a')} "
                    f"vs {info.get('matched_b')}/"
                    f"{info.get('candidates_b')})"
                )

    bias: Dict[str, Any] = manifest.get("bias") or {}
    if bias:
        lines.append("")
        lines.append("bias tables (per binary, per cluster):")
        for name in sorted(bias):
            lines.append(f"  {name}:")
            table = bias[name]
            for cluster in sorted(table, key=_cluster_order):
                row = table[cluster]
                cells = ", ".join(
                    f"{key}={value:.4f}"
                    for key, value in sorted(row.items())
                )
                lines.append(f"    cluster {cluster}: {cells}")

    histogram_lines = _render_histograms(manifest)
    if histogram_lines:
        lines.append("")
        lines.extend(histogram_lines)
    return "\n".join(lines)


def _cluster_order(key: str):
    """Numeric cluster ids sort numerically, anything else after."""
    try:
        return (0, int(key))
    except (TypeError, ValueError):
        return (1, str(key))


def _render_histograms(manifest: Mapping[str, Any]) -> List[str]:
    """Quantile table for every non-empty histogram metric."""
    from repro.observability.metrics import Histogram

    metrics_block = manifest.get("metrics") or {}
    histograms = metrics_block.get("histograms") or {}
    rows: List[str] = []
    for name in sorted(histograms):
        summary = histograms[name]
        if not isinstance(summary, dict) or not summary.get("count"):
            continue
        instrument = Histogram()
        instrument.count = int(summary.get("count", 0))
        instrument.total = float(summary.get("sum", 0.0))
        instrument.min = summary.get("min")
        instrument.max = summary.get("max")
        instrument.buckets = dict(summary.get("buckets") or {})
        quantiles = instrument.quantiles()
        rows.append(
            f"  {name:<36} {instrument.count:>8} {instrument.mean:>9.4g} "
            f"{_format_quantile(quantiles['p50']):>9} "
            f"{_format_quantile(quantiles['p95']):>9} "
            f"{_format_quantile(quantiles['p99']):>9}"
        )
    if not rows:
        return []
    header = (
        f"  {'histogram':<36} {'count':>8} {'mean':>9} "
        f"{'p50':>9} {'p95':>9} {'p99':>9}"
    )
    return ["histograms:", header, "  " + "-" * 84] + rows
