"""Named counters, gauges, and histograms.

All metrics live in a process-local :class:`Registry`; the module-level
:func:`counter`/:func:`gauge`/:func:`histogram` accessors route through
the currently active registry so instrumented code never holds a
reference. Metrics are always on — recording is a dict lookup plus an
add, cheap enough for hot paths — and are reset at the start of each
:func:`repro.observability.session.observe` session.

Cross-process aggregation: :func:`repro.runtime.parallel.parallel_map`
wraps each pool task in :func:`scoped_registry`, ships the resulting
:meth:`Registry.snapshot` back with the task result, and merges it into
the parent registry. Snapshots are plain JSON-able dicts, so they
pickle across process boundaries and serialize into the manifest
unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Summary statistics (count/sum/min/max) of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class Registry:
    """One process's (or one scoped task's) metric instruments."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy, stable under JSON and pickle round-trips."""
        return {
            "counters": {
                name: instrument.value
                for name, instrument in sorted(self.counters.items())
            },
            "gauges": {
                name: instrument.value
                for name, instrument in sorted(self.gauges.items())
            },
            "histograms": {
                name: instrument.to_dict()
                for name, instrument in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot (e.g. a worker task's delta) into this."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            instrument = self.histogram(name)
            count = summary.get("count", 0)
            if not count:
                continue
            instrument.count += count
            instrument.total += summary.get("sum", 0.0)
            for extreme, pick in (("min", min), ("max", max)):
                value = summary.get(extreme)
                if value is None:
                    continue
                current = getattr(instrument, extreme)
                setattr(
                    instrument,
                    extreme,
                    value if current is None else pick(current, value),
                )

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_registry = Registry()


def registry() -> Registry:
    """The currently active registry."""
    return _registry


def counter(name: str) -> Counter:
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    return _registry.histogram(name)


def snapshot() -> Dict[str, Any]:
    return _registry.snapshot()


def merge(snap: Dict[str, Any]) -> None:
    _registry.merge(snap)


def reset() -> None:
    _registry.reset()


@contextmanager
def scoped_registry() -> Iterator[Registry]:
    """Route all metric recording into a fresh registry for the block.

    Pool workers wrap each task in this so the task's metrics can be
    snapshotted and shipped back to the parent as a delta (workers are
    reused across tasks, so absolute worker totals would double-count).
    """
    global _registry
    saved = _registry
    fresh = Registry()
    _registry = fresh
    try:
        yield fresh
    finally:
        _registry = saved
