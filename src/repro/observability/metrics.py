"""Named counters, gauges, and histograms.

All metrics live in a process-local :class:`Registry`; the module-level
:func:`counter`/:func:`gauge`/:func:`histogram` accessors route through
the currently active registry so instrumented code never holds a
reference. Metrics are always on — recording is a dict lookup plus an
add, cheap enough for hot paths — and are reset at the start of each
:func:`repro.observability.session.observe` session.

Cross-process aggregation: :func:`repro.runtime.parallel.parallel_map`
wraps each pool task in :func:`scoped_registry`, ships the resulting
:meth:`Registry.snapshot` back with the task result, and merges it into
the parent registry. Snapshots are plain JSON-able dicts, so they
pickle across process boundaries and serialize into the manifest
unchanged.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Log-scale bucket index bounds. Bucket ``i`` covers ``(2**(i-1),
#: 2**i]``; indices are clamped so pathological values cannot mint
#: unbounded bucket keys. Non-positive observations land in the
#: dedicated ``"zero"`` bucket.
_BUCKET_MIN = -64
_BUCKET_MAX = 128
_ZERO_BUCKET = "zero"


def _bucket_key(value: float) -> str:
    """The log2 bucket a value falls in, as a JSON-able string key."""
    if value <= 0.0 or math.isnan(value):
        return _ZERO_BUCKET
    if math.isinf(value):
        return str(_BUCKET_MAX)
    index = math.ceil(math.log2(value))
    # log2(2**i) can land a hair under i in floating point; nudge the
    # boundary case so exact powers of two stay in their own bucket.
    if 2.0 ** (index - 1) >= value:
        index -= 1
    return str(max(_BUCKET_MIN, min(_BUCKET_MAX, index)))


def _bucket_sort_key(key: str) -> Tuple[int, int]:
    """Ascending value order: the zero bucket first, then by exponent."""
    if key == _ZERO_BUCKET:
        return (0, 0)
    return (1, int(key))


class Histogram:
    """Summary statistics plus mergeable log-scale buckets.

    Observations are counted into power-of-two buckets (bucket ``i``
    covers ``(2**(i-1), 2**i]``, with one extra bucket for values
    ``<= 0``), so snapshots merged across processes keep an exact,
    order-insensitive distribution from which approximate quantiles
    (p50/p95/p99, within a 2x bucket width) can be read back.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[str, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        key = _bucket_key(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Approximate q-quantile from the bucket counts.

        Returns the geometric midpoint of the bucket containing the
        target rank, clamped to the observed ``[min, max]`` range (so
        p0/p100 are exact). ``None`` when nothing was observed. Merged
        legacy (v1) snapshots may lack bucket counts for part of the
        population; the unbucketed remainder is treated as unknown and
        the quantile falls back to the mean.
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        bucketed = sum(self.buckets.values())
        if bucketed < self.count:
            return self._clamp(self.mean)
        rank = q * self.count
        cumulative = 0
        for key in sorted(self.buckets, key=_bucket_sort_key):
            cumulative += self.buckets[key]
            if cumulative >= rank:
                if key == _ZERO_BUCKET:
                    return self._clamp(0.0)
                index = int(key)
                # Geometric midpoint of (2**(i-1), 2**i].
                return self._clamp(2.0 ** (index - 0.5))
        return self.max

    def quantiles(self) -> Dict[str, Optional[float]]:
        """The standard p50/p95/p99 summary used by inspect and diffs."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def _clamp(self, value: float) -> float:
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(sorted(
                self.buckets.items(),
                key=lambda item: _bucket_sort_key(item[0]),
            )),
        }


class Registry:
    """One process's (or one scoped task's) metric instruments."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy, stable under JSON and pickle round-trips."""
        return {
            "counters": {
                name: instrument.value
                for name, instrument in sorted(self.counters.items())
            },
            "gauges": {
                name: instrument.value
                for name, instrument in sorted(self.gauges.items())
            },
            "histograms": {
                name: instrument.to_dict()
                for name, instrument in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot (e.g. a worker task's delta) into this.

        Counter and histogram merging is commutative and associative
        (sums and bucket counts are additive, extremes are min/max), so
        those totals are independent of merge order. Gauges are
        last-write-wins, so callers merging several snapshots MUST
        apply them in a deterministic order — ``parallel_map`` merges
        in task-index order for exactly this reason.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            instrument = self.histogram(name)
            count = summary.get("count", 0)
            if not count:
                continue
            instrument.count += count
            instrument.total += summary.get("sum", 0.0)
            # Legacy (v1) snapshots carry no buckets; their population
            # merges into the summary stats only, and quantiles then
            # degrade gracefully (see Histogram.quantile).
            for key, bucket_count in (summary.get("buckets") or {}).items():
                instrument.buckets[key] = (
                    instrument.buckets.get(key, 0) + bucket_count
                )
            for extreme, pick in (("min", min), ("max", max)):
                value = summary.get(extreme)
                if value is None:
                    continue
                current = getattr(instrument, extreme)
                setattr(
                    instrument,
                    extreme,
                    value if current is None else pick(current, value),
                )

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_registry = Registry()


def registry() -> Registry:
    """The currently active registry."""
    return _registry


def counter(name: str) -> Counter:
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    return _registry.histogram(name)


def snapshot() -> Dict[str, Any]:
    return _registry.snapshot()


def merge(snap: Dict[str, Any]) -> None:
    _registry.merge(snap)


def reset() -> None:
    _registry.reset()


@contextmanager
def scoped_registry() -> Iterator[Registry]:
    """Route all metric recording into a fresh registry for the block.

    Pool workers wrap each task in this so the task's metrics can be
    snapshotted and shipped back to the parent as a delta (workers are
    reused across tasks, so absolute worker totals would double-count).
    """
    global _registry
    saved = _registry
    fresh = Registry()
    _registry = fresh
    try:
        yield fresh
    finally:
        _registry = saved
