"""Binary representation produced by the compiler.

A :class:`Binary` is what the execution engine runs and what the
cross-binary matcher inspects. It contains:

* :class:`LoweredBlock` — static basic blocks with per-execution
  instruction counts and concrete memory :class:`AccessSpec` lists;
* a lowered statement tree per :class:`ProcedureCode`
  (:class:`LBlock` / :class:`LLoop` / :class:`LCall`);
* :class:`LoopMeta` per loop (debug line, origin procedure for inlined
  code — the latter is ground truth for tests, *not* visible to the
  matcher, mirroring how inlining clobbers real debug info);
* a symbol table (procedure names that survived optimization).

Basic block identity is per-binary: the same source construct gets
different block ids in different binaries, exactly as with real
compilers. Cross-binary correspondence is only recoverable through
symbols, debug lines, and execution counts — which is the paper's whole
problem statement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple, Union

from repro.errors import CompilationError
from repro.programs.behaviors import AccessKind
from repro.programs.ir import SourceLocation


class BlockKind(enum.Enum):
    """Role of a basic block in the lowered code."""

    PROC_ENTRY = "proc_entry"
    CALL = "call"
    LOOP_ENTRY = "loop_entry"
    LOOP_BRANCH = "loop_branch"
    COMPUTE = "compute"


@dataclass(frozen=True)
class AccessSpec:
    """Concrete memory access pattern of one block execution.

    ``stream_id`` identifies the data region's cursor state shared
    across blocks touching the same data. ``base`` and ``footprint`` are
    the region's placement (already scaled for the target's pointer
    width by the compiler).
    """

    stream_id: int
    kind: AccessKind
    base: int
    footprint: int
    stride: int
    refs_per_exec: int
    read_fraction: float

    def __post_init__(self) -> None:
        if self.footprint <= 0:
            raise CompilationError("access footprint must be positive")
        if self.refs_per_exec < 0:
            raise CompilationError("refs_per_exec must be non-negative")


@dataclass(frozen=True)
class LoweredBlock:
    """A static basic block of the binary."""

    block_id: int
    kind: BlockKind
    instructions: int
    base_cpi: float
    accesses: Tuple[AccessSpec, ...] = ()
    location: Optional[SourceLocation] = None
    source_name: str = ""

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise CompilationError(
                f"block {self.block_id} ({self.source_name!r}): instructions "
                f"must be positive, got {self.instructions}"
            )
        if self.base_cpi <= 0:
            raise CompilationError(
                f"block {self.block_id}: base_cpi must be positive"
            )


@dataclass(frozen=True)
class LBlock:
    """Lowered statement: execute one basic block once."""

    block_id: int


@dataclass(frozen=True)
class LLoop:
    """Lowered statement: a counted loop.

    Semantics per entry: execute ``entry_block`` once, then for each of
    the resolved iterations execute the body statements followed by
    ``branch_block``. ``trips`` is the *stored* trip count: unrolling
    divides it (and fattens the body), so the branch executes fewer
    times than the source loop iterated — which is what breaks
    count-based matching for unrolled loops.
    """

    loop_id: int
    trips: int
    input_scaled: bool
    entry_block: int
    branch_block: int
    body: Tuple["LStatement", ...]

    def __post_init__(self) -> None:
        if self.trips < 1:
            raise CompilationError(f"loop {self.loop_id}: trips must be >= 1")
        if not self.body:
            raise CompilationError(f"loop {self.loop_id}: empty body")


@dataclass(frozen=True)
class LCall:
    """Lowered statement: call a procedure (with call-overhead block)."""

    callee: str
    call_block: int


LStatement = Union[LBlock, LLoop, LCall]


@dataclass(frozen=True)
class LoopMeta:
    """Static metadata for one loop of the binary.

    ``location`` is what the debug info records — clobbered to the call
    site for inlined loops. ``origin_procedure`` is the ground-truth
    source procedure, available to tests but never to the matcher.
    ``unroll_factor`` > 1 marks unrolled loops (tests only).
    """

    loop_id: int
    location: Optional[SourceLocation]
    source_name: str
    origin_procedure: Optional[str] = None
    unroll_factor: int = 1
    split_index: int = 0


@dataclass(frozen=True)
class ProcedureCode:
    """Lowered code of one procedure that survived optimization."""

    name: str
    entry_block: int
    body: Tuple[LStatement, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Binary:
    """A compiled program for one target."""

    program_name: str
    target: "Target"  # type: ignore[name-defined]  # noqa: F821
    entry: str
    procedures: Mapping[str, ProcedureCode]
    blocks: Mapping[int, LoweredBlock]
    loops: Mapping[int, LoopMeta]
    symbols: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.entry not in self.procedures:
            raise CompilationError(
                f"binary {self.name}: entry {self.entry!r} missing"
            )
        for name in self.symbols:
            if name not in self.procedures:
                raise CompilationError(
                    f"binary {self.name}: symbol {name!r} has no code"
                )

    @property
    def name(self) -> str:
        """Display name, e.g. ``gcc/32u``."""
        label = getattr(self.target, "label", str(self.target))
        return f"{self.program_name}/{label}"

    def block(self, block_id: int) -> LoweredBlock:
        try:
            return self.blocks[block_id]
        except KeyError:
            raise CompilationError(
                f"binary {self.name}: unknown block id {block_id}"
            ) from None

    def loop(self, loop_id: int) -> LoopMeta:
        try:
            return self.loops[loop_id]
        except KeyError:
            raise CompilationError(
                f"binary {self.name}: unknown loop id {loop_id}"
            ) from None

    def static_block_count(self) -> int:
        return len(self.blocks)

    def iter_loops_of(self, proc_name: str) -> Tuple[LLoop, ...]:
        """All LLoop statements (recursively) in a procedure's body."""
        found = []

        def visit(body: Tuple[LStatement, ...]) -> None:
            for stmt in body:
                if isinstance(stmt, LLoop):
                    found.append(stmt)
                    visit(stmt.body)

        visit(self.procedures[proc_name].body)
        return tuple(found)


def validate_binary(binary: Binary) -> None:
    """Structural validation: every referenced block/loop/callee exists.

    Raises :class:`~repro.errors.CompilationError` on the first problem.
    The compiler calls this on everything it emits; tests call it on
    hand-built binaries.
    """

    def check_block(block_id: int, context: str) -> None:
        if block_id not in binary.blocks:
            raise CompilationError(
                f"binary {binary.name}: {context} references missing "
                f"block {block_id}"
            )

    def visit(body: Tuple[LStatement, ...], proc: str) -> None:
        for stmt in body:
            if isinstance(stmt, LBlock):
                check_block(stmt.block_id, f"procedure {proc!r}")
            elif isinstance(stmt, LLoop):
                if stmt.loop_id not in binary.loops:
                    raise CompilationError(
                        f"binary {binary.name}: loop {stmt.loop_id} in "
                        f"{proc!r} has no metadata"
                    )
                check_block(stmt.entry_block, f"loop {stmt.loop_id}")
                check_block(stmt.branch_block, f"loop {stmt.loop_id}")
                visit(stmt.body, proc)
            elif isinstance(stmt, LCall):
                check_block(stmt.call_block, f"call in {proc!r}")
                if stmt.callee not in binary.procedures:
                    raise CompilationError(
                        f"binary {binary.name}: {proc!r} calls missing "
                        f"procedure {stmt.callee!r}"
                    )

    for name, proc in binary.procedures.items():
        check_block(proc.entry_block, f"procedure {name!r} entry")
        visit(proc.body, name)
