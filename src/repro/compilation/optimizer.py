"""O2 optimizer passes over the finalized program IR.

Four passes run, in order:

1. **Inlining** — small, leaf, ``inlinable`` procedures are inlined at
   every call site. The inlined statements' debug locations are
   *clobbered to the call site's line* (what real toolchains do after
   inlining plus scheduling) and the callee's symbol disappears. Ground
   truth is preserved in ``origin_procedure`` for tests only.
2. **Loop splitting** (distribution) — splittable straight-line multi-
   kernel loops become two loops *with the same source line* and the
   same trip counts, which makes line-based matching ambiguous.
3. **Loop unrolling** — unrollable straight-line loops with divisible
   trip counts get their body fattened and their trip count divided, so
   the loop-*branch* execution count no longer matches the unoptimized
   binaries (the loop-*entry* count still does — this is exactly why
   the paper tracks both, Section 3.2.1).
4. **Code motion** — adjacent independent kernels are reordered, so
   block layout differs between binaries without changing any counts.

All passes are deterministic. Inlining-eligibility and the transforms
are functions of the IR alone, so the 32-bit and 64-bit optimized
binaries make the same decisions (as one compiler version would).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import CompilationError
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    SourceLocation,
    Statement,
    iter_statements,
)

#: Maximum static statement count of a procedure the inliner will inline.
INLINE_SIZE_LIMIT = 8

#: Unroll factors tried in preference order.
UNROLL_FACTORS = (4, 2)


@dataclass(frozen=True)
class OptimizationReport:
    """What the optimizer did (ground truth for tests and ablations)."""

    inlined_procedures: Tuple[str, ...] = ()
    split_loops: Tuple[str, ...] = ()
    unrolled_loops: Tuple[Tuple[str, int], ...] = ()
    moved_kernels: int = 0


def _is_leaf(proc: Procedure) -> bool:
    return not any(isinstance(s, Call) for s in iter_statements(proc.body))


def _static_size(proc: Procedure) -> int:
    return sum(1 for _ in iter_statements(proc.body))


def _inline_eligible(proc: Procedure) -> bool:
    return (
        proc.inlinable
        and _is_leaf(proc)
        and _static_size(proc) <= INLINE_SIZE_LIMIT
    )


def _clobber(
    stmt: Statement, location: Optional[SourceLocation], origin: str, prefix: str
) -> Statement:
    """Deep-copy an inlined statement: call-site location, origin mark."""
    if isinstance(stmt, Loop):
        body = tuple(
            _clobber(inner, location, origin, prefix) for inner in stmt.body
        )
        return replace(
            stmt,
            name=f"{prefix}__{stmt.name}",
            location=location,
            origin_procedure=origin,
            body=body,
        )
    return replace(
        stmt,
        name=f"{prefix}__{stmt.name}",
        location=location,
        origin_procedure=origin,
    )


def _inline_pass(
    program: Program,
) -> Tuple[Dict[str, Procedure], Tuple[str, ...]]:
    eligible = {
        name
        for name, proc in program.procedures.items()
        if name != program.entry and _inline_eligible(proc)
    }

    inlined_somewhere = set()

    def rewrite_body(body: Tuple[Statement, ...]) -> Tuple[Statement, ...]:
        out: List[Statement] = []
        for stmt in body:
            if isinstance(stmt, Call) and stmt.callee in eligible:
                callee = program.procedures[stmt.callee]
                inlined_somewhere.add(stmt.callee)
                for inner in callee.body:
                    out.append(
                        _clobber(inner, stmt.location, stmt.callee, stmt.name)
                    )
            elif isinstance(stmt, Loop):
                out.append(replace(stmt, body=rewrite_body(stmt.body)))
            else:
                out.append(stmt)
        return tuple(out)

    procedures: Dict[str, Procedure] = {}
    for name, proc in program.procedures.items():
        if name in eligible:
            continue  # fully inlined; symbol and code disappear
        procedures[name] = replace(proc, body=rewrite_body(proc.body))
    return procedures, tuple(sorted(inlined_somewhere))


def _straight_line(loop: Loop) -> bool:
    return all(isinstance(s, Compute) for s in loop.body)


def _split_pass(
    procedures: Dict[str, Procedure],
) -> Tuple[Dict[str, Procedure], Tuple[str, ...]]:
    split_names: List[str] = []

    def rewrite_body(body: Tuple[Statement, ...]) -> Tuple[Statement, ...]:
        out: List[Statement] = []
        for stmt in body:
            if (
                isinstance(stmt, Loop)
                and stmt.splittable
                and _straight_line(stmt)
                and len(stmt.body) >= 2
            ):
                split_names.append(stmt.name)
                half = len(stmt.body) // 2
                out.append(
                    replace(
                        stmt,
                        name=f"{stmt.name}__a",
                        body=stmt.body[:half],
                        split_index=1,
                    )
                )
                out.append(
                    replace(
                        stmt,
                        name=f"{stmt.name}__b",
                        body=stmt.body[half:],
                        split_index=2,
                    )
                )
            elif isinstance(stmt, Loop):
                out.append(replace(stmt, body=rewrite_body(stmt.body)))
            else:
                out.append(stmt)
        return tuple(out)

    rewritten = {
        name: replace(proc, body=rewrite_body(proc.body))
        for name, proc in procedures.items()
    }
    return rewritten, tuple(split_names)


def _unroll_one(loop: Loop, factor: int) -> Loop:
    body = []
    for stmt in loop.body:
        assert isinstance(stmt, Compute)
        behavior = stmt.behavior
        if behavior is not None:
            behavior = replace(
                behavior, refs_per_exec=behavior.refs_per_exec * factor
            )
        body.append(
            replace(
                stmt,
                instructions=stmt.instructions * factor,
                behavior=behavior,
            )
        )
    return replace(
        loop,
        trips=loop.trips // factor,
        body=tuple(body),
        unroll_factor=factor,
    )


def _unroll_pass(
    procedures: Dict[str, Procedure],
) -> Tuple[Dict[str, Procedure], Tuple[Tuple[str, int], ...]]:
    unrolled: List[Tuple[str, int]] = []

    def rewrite_body(body: Tuple[Statement, ...]) -> Tuple[Statement, ...]:
        out: List[Statement] = []
        for stmt in body:
            if (
                isinstance(stmt, Loop)
                and stmt.unrollable
                and not stmt.input_scaled
                and _straight_line(stmt)
            ):
                factor = next(
                    (f for f in UNROLL_FACTORS
                     if stmt.trips % f == 0 and stmt.trips // f >= 2),
                    None,
                )
                if factor is None:
                    out.append(stmt)
                else:
                    unrolled.append((stmt.name, factor))
                    out.append(_unroll_one(stmt, factor))
            elif isinstance(stmt, Loop):
                out.append(replace(stmt, body=rewrite_body(stmt.body)))
            else:
                out.append(stmt)
        return tuple(out)

    rewritten = {
        name: replace(proc, body=rewrite_body(proc.body))
        for name, proc in procedures.items()
    }
    return rewritten, tuple(unrolled)


def _code_motion_pass(
    procedures: Dict[str, Procedure],
) -> Tuple[Dict[str, Procedure], int]:
    """Reverse each maximal run of >= 2 adjacent Compute statements.

    Deterministic stand-in for instruction scheduling: block *order*
    changes without any count or location change.
    """
    moved = 0

    def rewrite_body(body: Tuple[Statement, ...]) -> Tuple[Statement, ...]:
        nonlocal moved
        out: List[Statement] = []
        run: List[Compute] = []

        def flush() -> None:
            nonlocal moved
            if len(run) >= 2:
                moved += len(run)
                out.extend(reversed(run))
            else:
                out.extend(run)
            run.clear()

        for stmt in body:
            if isinstance(stmt, Compute):
                run.append(stmt)
            else:
                flush()
                if isinstance(stmt, Loop):
                    out.append(replace(stmt, body=rewrite_body(stmt.body)))
                else:
                    out.append(stmt)
        flush()
        return tuple(out)

    rewritten = {
        name: replace(proc, body=rewrite_body(proc.body))
        for name, proc in procedures.items()
    }
    return rewritten, moved


def optimize_ir(
    program: Program,
    inline: bool = True,
    split: bool = True,
    unroll: bool = True,
    code_motion: bool = True,
) -> Tuple[Program, OptimizationReport]:
    """Run the O2 passes over a finalized program.

    The pass toggles exist for the ablation benchmarks; the compiler
    always runs all four at O2. Returns the transformed program plus an
    :class:`OptimizationReport` of what changed.
    """
    if not program.finalized:
        raise CompilationError(
            f"program {program.name!r} must be finalized before optimization"
        )
    procedures = dict(program.procedures)
    inlined: Tuple[str, ...] = ()
    split_loops: Tuple[str, ...] = ()
    unrolled: Tuple[Tuple[str, int], ...] = ()
    moved = 0
    if inline:
        procedures, inlined = _inline_pass(
            replace(program, procedures=procedures)
        )
    if split:
        procedures, split_loops = _split_pass(procedures)
    if unroll:
        procedures, unrolled = _unroll_pass(procedures)
    if code_motion:
        procedures, moved = _code_motion_pass(procedures)
    optimized = replace(program, procedures=procedures)
    report = OptimizationReport(
        inlined_procedures=inlined,
        split_loops=split_loops,
        unrolled_loops=unrolled,
        moved_kernels=moved,
    )
    return optimized, report
