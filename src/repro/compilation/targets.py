"""Compilation targets: ISA and optimization level.

The paper's four binaries per program are 32-bit/64-bit x
unoptimized/optimized (Intel compiler 9.0, ``-g``). A :class:`Target`
pairs an :class:`ISA` with an :class:`OptLevel`; :data:`STANDARD_TARGETS`
lists the paper's four configurations with the paper's own labels
(``32u``, ``32o``, ``64u``, ``64o``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class ISA(enum.Enum):
    """Instruction set architecture of a binary."""

    X86_32 = "x86_32"
    X86_64 = "x86_64"

    @property
    def pointer_bytes(self) -> int:
        """Pointer width in bytes; drives data-footprint scaling."""
        return 4 if self is ISA.X86_32 else 8

    @property
    def short_label(self) -> str:
        return "32" if self is ISA.X86_32 else "64"


class OptLevel(enum.Enum):
    """Compiler optimization level."""

    O0 = "O0"
    O2 = "O2"

    @property
    def short_label(self) -> str:
        """The paper's u/o suffix: u = unoptimized, o = optimized."""
        return "u" if self is OptLevel.O0 else "o"


@dataclass(frozen=True)
class Target:
    """One compilation configuration (ISA + optimization level)."""

    isa: ISA
    opt: OptLevel

    @property
    def label(self) -> str:
        """The paper's label, e.g. ``32u`` or ``64o``."""
        return f"{self.isa.short_label}{self.opt.short_label}"

    @property
    def optimized(self) -> bool:
        return self.opt is OptLevel.O2

    def __str__(self) -> str:
        return self.label


TARGET_32U = Target(ISA.X86_32, OptLevel.O0)
TARGET_32O = Target(ISA.X86_32, OptLevel.O2)
TARGET_64U = Target(ISA.X86_64, OptLevel.O0)
TARGET_64O = Target(ISA.X86_64, OptLevel.O2)

#: The paper's four binaries per program, in its customary order.
STANDARD_TARGETS: Tuple[Target, ...] = (
    TARGET_32U,
    TARGET_32O,
    TARGET_64U,
    TARGET_64O,
)


def target_by_label(label: str) -> Target:
    """Look up a target by the paper's label (``32u``/``32o``/``64u``/``64o``)."""
    for target in STANDARD_TARGETS:
        if target.label == label:
            return target
    labels = ", ".join(t.label for t in STANDARD_TARGETS)
    raise ValueError(f"unknown target label {label!r}; known: {labels}")
