"""Compiler substrate: lowering the program IR to target binaries.

The paper compiles every SPEC program four ways (32/64-bit x Optimized/
Unoptimized, Intel compilers, ``-g``). This package provides the
equivalent: :func:`compile_program` lowers a
:class:`~repro.programs.ir.Program` to a
:class:`~repro.compilation.binary.Binary` for a
:class:`~repro.compilation.targets.Target`, applying real optimizer
passes at O2 (inlining with symbol removal and debug-line clobbering,
loop unrolling, loop splitting, code motion) and per-target instruction
scaling, pointer-width footprint scaling, and stack-traffic injection at
O0. These transformations are exactly what creates - and sometimes
destroys - the mappable points the paper's technique depends on.
"""

from repro.compilation.binary import (
    AccessSpec,
    Binary,
    BlockKind,
    LBlock,
    LCall,
    LLoop,
    LoopMeta,
    LoweredBlock,
    ProcedureCode,
)
from repro.compilation.compiler import compile_program, compile_standard_binaries
from repro.compilation.optimizer import OptimizationReport, optimize_ir
from repro.compilation.targets import (
    ISA,
    STANDARD_TARGETS,
    OptLevel,
    Target,
)

__all__ = [
    "AccessSpec",
    "Binary",
    "BlockKind",
    "LBlock",
    "LCall",
    "LLoop",
    "LoopMeta",
    "LoweredBlock",
    "ProcedureCode",
    "compile_program",
    "compile_standard_binaries",
    "OptimizationReport",
    "optimize_ir",
    "ISA",
    "STANDARD_TARGETS",
    "OptLevel",
    "Target",
]
