"""The compiler facade: program + target -> binary.

``compile_program`` runs the optimizer at O2 and lowers the result;
``compile_standard_binaries`` produces the paper's four binaries for a
program. Pass toggles are exposed for the ablation benchmarks (e.g.
disabling inlining to measure its effect on mappable coverage).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.compilation.binary import Binary
from repro.compilation.lowering import lower_program
from repro.compilation.optimizer import OptimizationReport, optimize_ir
from repro.compilation.targets import STANDARD_TARGETS, Target
from repro.programs.ir import Program, finalize_program


def compile_program(
    program: Program,
    target: Target,
    inline: bool = True,
    split: bool = True,
    unroll: bool = True,
    code_motion: bool = True,
) -> Tuple[Binary, Optional[OptimizationReport]]:
    """Compile a program for one target.

    Returns the binary and, for optimized targets, the optimizer's
    :class:`OptimizationReport` (``None`` at O0).
    """
    program = finalize_program(program)
    report: Optional[OptimizationReport] = None
    if target.optimized:
        program, report = optimize_ir(
            program,
            inline=inline,
            split=split,
            unroll=unroll,
            code_motion=code_motion,
        )
    return lower_program(program, target), report


def compile_standard_binaries(
    program: Program,
    targets: Tuple[Target, ...] = STANDARD_TARGETS,
    inline: bool = True,
    split: bool = True,
    unroll: bool = True,
    code_motion: bool = True,
) -> Dict[Target, Binary]:
    """Compile the paper's four standard binaries (or a custom set)."""
    binaries: Dict[Target, Binary] = {}
    for target in targets:
        binary, _ = compile_program(
            program,
            target,
            inline=inline,
            split=split,
            unroll=unroll,
            code_motion=code_motion,
        )
        binaries[target] = binary
    return binaries
