"""IR-to-binary lowering with per-target cost modelling.

Lowering turns each (possibly optimizer-transformed) procedure body into
a tree of lowered statements over concrete basic blocks:

* every :class:`~repro.programs.ir.Compute` becomes a ``COMPUTE`` block
  whose instruction count is the source work scaled by deterministic
  per-kernel, per-target factors (unoptimized code executes 1.9-3.2x
  the instructions; 64-bit code usually slightly fewer, except
  pointer-heavy kernels);
* loops gain ``LOOP_ENTRY`` and ``LOOP_BRANCH`` overhead blocks, calls
  gain a ``CALL`` block, procedures a ``PROC_ENTRY`` block — all larger
  at O0;
* memory behaviours become concrete :class:`AccessSpec`\\ s: footprints
  are scaled by the target pointer width and placed in a deterministic
  address-space layout; O0 kernels additionally emit hot stack traffic.

The per-kernel scale factors are the crux of the reproduction: they
re-weight every binary's basic block vectors differently, which is what
lets per-binary SimPoint arrive at inconsistent clusterings (the paper's
Section 5.2) while leaving the *source-level* execution counts — and
hence the mappable points — untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compilation.binary import (
    AccessSpec,
    Binary,
    BlockKind,
    LBlock,
    LCall,
    LLoop,
    LoopMeta,
    LoweredBlock,
    LStatement,
    ProcedureCode,
    validate_binary,
)
from repro.compilation.targets import ISA, OptLevel, Target
from repro.errors import CompilationError
from repro.programs.behaviors import AccessKind, MemoryBehavior
from repro.programs.ir import (
    Call,
    Compute,
    Loop,
    Procedure,
    Program,
    Statement,
)

#: Address-space layout constants (bytes).
DATA_REGION_BASE = 0x1000_0000
DATA_REGION_ALIGN = 4096
DATA_REGION_GAP = 64 * 1024
STACK_REGION_BASE = 0x7000_0000
STACK_FOOTPRINT = 4096

#: Overhead-block instruction counts, per optimization level.
_OVERHEAD_INSTRUCTIONS = {
    OptLevel.O2: {
        BlockKind.PROC_ENTRY: 4,
        BlockKind.CALL: 3,
        BlockKind.LOOP_ENTRY: 2,
        BlockKind.LOOP_BRANCH: 2,
    },
    OptLevel.O0: {
        BlockKind.PROC_ENTRY: 12,
        BlockKind.CALL: 8,
        BlockKind.LOOP_ENTRY: 6,
        BlockKind.LOOP_BRANCH: 5,
    },
}

#: Extra stack references each O0 kernel execution performs (spill traffic).
O0_STACK_REFS = 2


@dataclass(frozen=True)
class KernelScaling:
    """Deterministic per-kernel instruction scale factors."""

    o0_mult: float
    o2_mult: float
    x64_mult: float


def kernel_scaling(program_name: str, compute: Compute) -> KernelScaling:
    """Per-kernel scale factors, seeded by program and kernel name.

    Pointer-heavy kernels tend to get *slightly more* instructions in
    64-bit mode (REX prefixes, wider immediates); compute kernels get
    fewer (more registers). Unoptimized code runs 1.9-3.2x the
    instructions of the source-level work estimate.
    """
    rng = random.Random(f"{program_name}:{compute.name}:cost")
    o0_mult = rng.uniform(1.9, 3.2)
    o2_mult = rng.uniform(0.88, 0.98)
    pointer_heavy = (
        compute.behavior is not None and compute.behavior.pointer_fraction > 0.3
    )
    if pointer_heavy:
        x64_mult = rng.uniform(0.95, 1.08)
    else:
        x64_mult = rng.uniform(0.82, 0.97)
    return KernelScaling(o0_mult=o0_mult, o2_mult=o2_mult, x64_mult=x64_mult)


def scaled_instructions(
    program_name: str, compute: Compute, target: Target
) -> int:
    """The kernel's per-execution instruction count on ``target``."""
    scale = kernel_scaling(program_name, compute)
    opt_mult = scale.o2_mult if target.optimized else scale.o0_mult
    isa_mult = scale.x64_mult if target.isa is ISA.X86_64 else 1.0
    return max(4, int(round(compute.instructions * opt_mult * isa_mult)))


def base_cpi(program_name: str, block_name: str, target: Target) -> float:
    """Per-block base (non-memory) CPI on an in-order core.

    Optimized code is denser, so each instruction carries more dependent
    work and stalls slightly more per instruction; 32-bit code pays a
    small register-pressure tax. A deterministic per-block jitter keeps
    blocks from being artificially identical.
    """
    opt_base = 1.15 if target.optimized else 0.92
    isa_mult = 1.05 if target.isa is ISA.X86_32 else 1.0
    rng = random.Random(f"{program_name}:{block_name}:cpi")
    jitter = rng.uniform(-0.08, 0.08)
    return max(0.5, opt_base * isa_mult + jitter)


class _Layout:
    """Deterministic address-space layout for data streams."""

    def __init__(self, target: Target) -> None:
        self._pointer_bytes = target.isa.pointer_bytes
        self._next = DATA_REGION_BASE
        self._bases: Dict[int, Tuple[int, int]] = {}  # stream -> (base, fp)

    def place(self, stream_id: int, behavior: MemoryBehavior) -> Tuple[int, int]:
        """Base address and scaled footprint for a data stream.

        Streams shared by several kernels keep one region; the footprint
        recorded is the largest requested.
        """
        footprint = behavior.scaled_footprint(self._pointer_bytes)
        if stream_id in self._bases:
            base, old = self._bases[stream_id]
            if footprint > old:
                self._bases[stream_id] = (base, footprint)
            return self._bases[stream_id]
        base = self._next
        self._bases[stream_id] = (base, footprint)
        advance = footprint + DATA_REGION_GAP
        advance += (-advance) % DATA_REGION_ALIGN
        self._next += advance
        return base, footprint


class _Lowerer:
    def __init__(self, program: Program, target: Target) -> None:
        self._program = program
        self._target = target
        self._blocks: Dict[int, LoweredBlock] = {}
        self._loops: Dict[int, LoopMeta] = {}
        self._next_block = 0
        self._next_loop = 0
        self._layout = _Layout(target)
        max_stream = -1
        for proc in program.procedures.values():
            for stmt in _walk(proc.body):
                if isinstance(stmt, Compute) and stmt.stream_id is not None:
                    max_stream = max(max_stream, stmt.stream_id)
        self._next_stack_stream = max_stream + 1
        self._next_stack_base = STACK_REGION_BASE

    def _new_block(
        self,
        kind: BlockKind,
        instructions: int,
        source_name: str,
        location,
        accesses: Tuple[AccessSpec, ...] = (),
    ) -> int:
        block_id = self._next_block
        self._next_block += 1
        self._blocks[block_id] = LoweredBlock(
            block_id=block_id,
            kind=kind,
            instructions=instructions,
            base_cpi=base_cpi(self._program.name, source_name, self._target),
            accesses=accesses,
            location=location,
            source_name=source_name,
        )
        return block_id

    def _overhead(self, kind: BlockKind) -> int:
        return _OVERHEAD_INSTRUCTIONS[self._target.opt][kind]

    def _stack_spec(self, proc_name: str, stack_streams: Dict[str, AccessSpec]) -> AccessSpec:
        if proc_name not in stack_streams:
            stream_id = self._next_stack_stream
            self._next_stack_stream += 1
            base = self._next_stack_base
            self._next_stack_base += STACK_FOOTPRINT * 2
            stack_streams[proc_name] = AccessSpec(
                stream_id=stream_id,
                kind=AccessKind.STACK,
                base=base,
                footprint=STACK_FOOTPRINT,
                stride=8,
                refs_per_exec=O0_STACK_REFS,
                read_fraction=0.6,
            )
        return stack_streams[proc_name]

    def _compute_accesses(
        self, compute: Compute, proc_name: str, stack_streams: Dict[str, AccessSpec]
    ) -> Tuple[AccessSpec, ...]:
        specs: List[AccessSpec] = []
        behavior = compute.behavior
        if behavior is not None and behavior.refs_per_exec > 0:
            if compute.stream_id is None:
                raise CompilationError(
                    f"compute {compute.name!r} has a behavior but no stream id; "
                    f"was the program finalized?"
                )
            base, footprint = self._layout.place(compute.stream_id, behavior)
            specs.append(
                AccessSpec(
                    stream_id=compute.stream_id,
                    kind=behavior.kind,
                    base=base,
                    footprint=footprint,
                    stride=behavior.stride,
                    refs_per_exec=behavior.refs_per_exec,
                    read_fraction=behavior.read_fraction,
                )
            )
        if self._target.opt is OptLevel.O0:
            specs.append(self._stack_spec(proc_name, stack_streams))
        return tuple(specs)

    def _lower_body(
        self,
        body: Tuple[Statement, ...],
        proc_name: str,
        stack_streams: Dict[str, AccessSpec],
    ) -> Tuple[LStatement, ...]:
        out: List[LStatement] = []
        for stmt in body:
            if isinstance(stmt, Compute):
                block_id = self._new_block(
                    BlockKind.COMPUTE,
                    scaled_instructions(self._program.name, stmt, self._target),
                    stmt.name,
                    stmt.location,
                    self._compute_accesses(stmt, proc_name, stack_streams),
                )
                out.append(LBlock(block_id))
            elif isinstance(stmt, Loop):
                entry = self._new_block(
                    BlockKind.LOOP_ENTRY,
                    self._overhead(BlockKind.LOOP_ENTRY),
                    f"{stmt.name}.entry",
                    stmt.location,
                )
                branch = self._new_block(
                    BlockKind.LOOP_BRANCH,
                    self._overhead(BlockKind.LOOP_BRANCH),
                    f"{stmt.name}.branch",
                    stmt.location,
                )
                loop_id = self._next_loop
                self._next_loop += 1
                self._loops[loop_id] = LoopMeta(
                    loop_id=loop_id,
                    location=stmt.location,
                    source_name=stmt.name,
                    origin_procedure=stmt.origin_procedure,
                    unroll_factor=stmt.unroll_factor,
                    split_index=stmt.split_index,
                )
                inner = self._lower_body(stmt.body, proc_name, stack_streams)
                out.append(
                    LLoop(
                        loop_id=loop_id,
                        trips=stmt.trips,
                        input_scaled=stmt.input_scaled,
                        entry_block=entry,
                        branch_block=branch,
                        body=inner,
                    )
                )
            elif isinstance(stmt, Call):
                call_block = self._new_block(
                    BlockKind.CALL,
                    self._overhead(BlockKind.CALL),
                    stmt.name,
                    stmt.location,
                )
                out.append(LCall(callee=stmt.callee, call_block=call_block))
            else:  # pragma: no cover
                raise CompilationError(
                    f"cannot lower statement type {type(stmt).__name__}"
                )
        return tuple(out)

    def lower(self) -> Binary:
        procedures: Dict[str, ProcedureCode] = {}
        stack_streams: Dict[str, AccessSpec] = {}
        for name, proc in self._program.procedures.items():
            entry = self._new_block(
                BlockKind.PROC_ENTRY,
                self._overhead(BlockKind.PROC_ENTRY),
                f"{name}.entry",
                proc.location,
            )
            body = self._lower_body(proc.body, name, stack_streams)
            procedures[name] = ProcedureCode(
                name=name,
                entry_block=entry,
                body=body,
                location=proc.location,
            )
        binary = Binary(
            program_name=self._program.name,
            target=self._target,
            entry=self._program.entry,
            procedures=procedures,
            blocks=self._blocks,
            loops=self._loops,
            symbols=frozenset(procedures),
        )
        validate_binary(binary)
        return binary


def _walk(body: Tuple[Statement, ...]):
    for stmt in body:
        yield stmt
        if isinstance(stmt, Loop):
            yield from _walk(stmt.body)


def lower_program(program: Program, target: Target) -> Binary:
    """Lower a finalized (optionally optimizer-transformed) program."""
    if not program.finalized:
        raise CompilationError(
            f"program {program.name!r} must be finalized before lowering"
        )
    return _Lowerer(program, target).lower()
