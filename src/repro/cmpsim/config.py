"""Memory-system configuration (the paper's Table 1).

A single-core processor with a three-level non-inclusive data-cache
hierarchy; all caches use 64-byte lines, LRU replacement, and
write-back policy.

========  ========  =============  =========  ===========
Level     Capacity  Associativity  Line size  Hit latency
========  ========  =============  =========  ===========
FLC(L1D)  32 KB     2-way          64 B       3 cycles
MLC(L2D)  512 KB    8-way          64 B       14 cycles
LLC(L3D)  1024 KB   16-way         64 B       35 cycles
DRAM      --        --             --         250 cycles
========  ========  =============  =========  ===========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level's geometry and latency."""

    name: str
    capacity: int  # bytes
    associativity: int
    line_size: int = 64
    hit_latency: int = 1
    writeback: bool = True

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise SimulationError(
                f"cache {self.name}: geometry must be positive"
            )
        if self.capacity % (self.associativity * self.line_size) != 0:
            raise SimulationError(
                f"cache {self.name}: capacity {self.capacity} not divisible "
                f"into {self.associativity}-way sets of "
                f"{self.line_size}-byte lines"
            )
        if self.hit_latency < 0:
            raise SimulationError(f"cache {self.name}: negative latency")

    @property
    def n_sets(self) -> int:
        return self.capacity // (self.associativity * self.line_size)


@dataclass(frozen=True)
class MemoryConfig:
    """Whole memory system: cache levels (nearest first) plus DRAM.

    ``next_line_prefetch`` enables a simple next-line prefetcher: every
    L1 demand miss also pulls the following line into the outer levels.
    The paper's configuration has no prefetcher; the option exists for
    the design-space-exploration example, which needs more than one
    architecture to compare.
    """

    levels: Tuple[CacheLevelConfig, ...]
    dram_latency: int = 250
    next_line_prefetch: bool = False

    def __post_init__(self) -> None:
        if not self.levels:
            raise SimulationError("memory config needs at least one cache")
        line_sizes = {level.line_size for level in self.levels}
        if len(line_sizes) != 1:
            raise SimulationError(
                f"all cache levels must share a line size, got {line_sizes}"
            )
        if self.dram_latency <= 0:
            raise SimulationError("dram_latency must be positive")

    @property
    def line_size(self) -> int:
        return self.levels[0].line_size


KB = 1024

#: The paper's Table 1 configuration.
TABLE1_CONFIG = MemoryConfig(
    levels=(
        CacheLevelConfig("FLC(L1D)", 32 * KB, 2, 64, hit_latency=3),
        CacheLevelConfig("MLC(L2D)", 512 * KB, 8, 64, hit_latency=14),
        CacheLevelConfig("LLC(L3D)", 1024 * KB, 16, 64, hit_latency=35),
    ),
    dram_latency=250,
)

#: Design-space variant: a 4 MB last-level cache (slightly slower hit).
BIG_LLC_CONFIG = MemoryConfig(
    levels=(
        CacheLevelConfig("FLC(L1D)", 32 * KB, 2, 64, hit_latency=3),
        CacheLevelConfig("MLC(L2D)", 512 * KB, 8, 64, hit_latency=14),
        CacheLevelConfig("LLC(L3D)", 4096 * KB, 16, 64, hit_latency=40),
    ),
    dram_latency=250,
)

#: Design-space variant: Table 1 plus a next-line prefetcher.
PREFETCH_CONFIG = MemoryConfig(
    levels=TABLE1_CONFIG.levels,
    dram_latency=250,
    next_line_prefetch=True,
)
