"""Three-level non-inclusive cache hierarchy with DRAM backing.

Demand accesses probe L1 -> L2 -> L3 -> DRAM, allocating the line in
every probed level on the way back (levels then age independently, so
contents diverge over time — non-inclusive). Dirty victims are written
back to the next level down (installed there without a demand-access
charge); an L3 dirty victim counts as a DRAM writeback.

The hierarchy reports, per access, the level that serviced it, from
which the CPU model derives the stall penalty.

:meth:`MemoryHierarchy.access_many` replays a whole batch through the
levels one level at a time, bit-identically to the scalar loop. Each
level's work is a single op stream (demand accesses, victim fills,
prefetch installs); replaying it produces the demand misses and dirty
victims, from which the next level's stream is assembled. The scalar
interleaving is reproduced exactly by ordering the next level's ops
with ``lexsort`` on ``(source op index, priority)`` where a source
op's victim fill has priority 0, its demand continuation priority 1,
and its prefetch priority 2 — in the scalar path a miss writes its
victim back before probing the next level, and a next-line prefetch
fires only after the triggering access finishes its whole chain.
Prefetch ops propagate through every outer level unconditionally
(matching the scalar install loop) and are dropped at DRAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cmpsim.cache import (
    OP_ACCESS,
    OP_FILL,
    OP_PREFETCH,
    SetAssociativeCache,
)
from repro.cmpsim.config import MemoryConfig, TABLE1_CONFIG
from repro.observability import metrics

_EMPTY = np.empty(0, dtype=np.int64)


class AccessResult(enum.IntEnum):
    """Which level serviced a demand access (index into the hierarchy).

    :meth:`MemoryHierarchy.access` returns these as plain ints (the
    simulator's hot loop indexes penalty tables with them); the enum
    exists for readable comparisons in tests and reports.
    """

    L1 = 0
    L2 = 1
    L3 = 2
    DRAM = 3


@dataclass(frozen=True)
class HierarchyStats:
    """Immutable snapshot of the hierarchy's demand-access statistics."""

    level_accesses: Tuple[int, ...]
    level_hits: Tuple[int, ...]
    level_misses: Tuple[int, ...]
    level_writebacks: Tuple[int, ...]
    dram_reads: int
    dram_writebacks: int
    prefetches: int


class MemoryHierarchy:
    """The paper's Table 1 memory system (configurable)."""

    def __init__(self, config: MemoryConfig = TABLE1_CONFIG) -> None:
        self.config = config
        self.caches: Tuple[SetAssociativeCache, ...] = tuple(
            SetAssociativeCache(level) for level in config.levels
        )
        self.dram_reads = 0
        self.dram_writebacks = 0
        self.prefetches = 0
        self._prefetch_enabled = config.next_line_prefetch

    def access(self, line: int, write: bool) -> int:
        """Perform one demand access; returns the servicing level (0-3).

        Missed levels allocate the line on the way (levels then age
        independently — non-inclusive); compare the result against
        :class:`AccessResult` for readability. With next-line
        prefetching enabled, an L1 miss also pulls ``line + 1`` into
        the outer levels (no demand-access charge).
        """
        serviced = len(self.caches)
        for depth, cache in enumerate(self.caches):
            hit, victim = cache.access(line, write)
            if victim is not None:
                self._writeback(depth + 1, victim)
            if hit:
                serviced = depth
                break
        else:
            self.dram_reads += 1
        if serviced > 0 and self._prefetch_enabled:
            self._prefetch(line + 1)
        return serviced

    def access_many(self, lines: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Replay a batch of demand accesses; returns servicing levels.

        Bit-identical in state and statistics to calling
        :meth:`access` once per reference in order; the returned
        int64 array holds each reference's servicing level (0-3).
        """
        op_lines = np.asarray(lines, dtype=np.int64)
        op_flags = np.asarray(writes, dtype=np.bool_)
        n = op_lines.size
        metrics.counter("cmpsim.hierarchy_batched_refs").inc(n)
        serviced = np.zeros(n, dtype=np.int64)
        op_kinds: Optional[np.ndarray] = None  # None == all demand
        op_refs = np.arange(n, dtype=np.int64)
        n_levels = len(self.caches)
        for depth, cache in enumerate(self.caches):
            if op_lines.size == 0:
                break
            miss, victims = cache._replay(op_lines, op_flags, op_kinds)
            if miss.size:
                serviced[op_refs[miss]] = depth + 1
            if depth + 1 == n_levels:
                self.dram_reads += int(miss.size)
                self.dram_writebacks += len(victims)
                break
            if depth == 0:
                if self._prefetch_enabled and miss.size:
                    self.prefetches += int(miss.size)
                    pf_keys = miss
                    pf_lines = op_lines[miss] + 1
                else:
                    pf_keys = pf_lines = _EMPTY
            elif op_kinds is not None:
                pf_keys = np.flatnonzero(op_kinds == OP_PREFETCH)
                pf_lines = op_lines[pf_keys]
            else:
                pf_keys = pf_lines = _EMPTY
            if not victims and pf_keys.size == 0:
                # Pure continuation stream: already in order.
                op_lines = op_lines[miss]
                op_flags = op_flags[miss]
                op_refs = op_refs[miss]
                op_kinds = None
                continue
            if victims:
                v_pos = np.array([p for p, _ in victims], dtype=np.int64)
                v_line = np.array([l for _, l in victims], dtype=np.int64)
            else:
                v_pos = v_line = _EMPTY
            n_v = v_pos.size
            n_m = miss.size
            n_p = pf_keys.size
            keys = np.concatenate([v_pos, miss, pf_keys])
            prio = np.concatenate(
                [
                    np.zeros(n_v, dtype=np.int64),
                    np.ones(n_m, dtype=np.int64),
                    np.full(n_p, 2, dtype=np.int64),
                ]
            )
            order = np.lexsort((prio, keys))
            op_lines = np.concatenate(
                [v_line, op_lines[miss], pf_lines]
            )[order]
            op_flags = np.concatenate(
                [
                    np.ones(n_v, dtype=np.bool_),
                    op_flags[miss],
                    np.zeros(n_p, dtype=np.bool_),
                ]
            )[order]
            op_kinds = np.concatenate(
                [
                    np.full(n_v, OP_FILL, dtype=np.int64),
                    np.full(n_m, OP_ACCESS, dtype=np.int64),
                    np.full(n_p, OP_PREFETCH, dtype=np.int64),
                ]
            )[order]
            op_refs = np.concatenate(
                [
                    np.full(n_v, -1, dtype=np.int64),
                    op_refs[miss],
                    np.full(n_p, -1, dtype=np.int64),
                ]
            )[order]
        return serviced

    def _prefetch(self, line: int, count: bool = True) -> None:
        """Install a prefetched line into the outer cache levels."""
        if count:
            self.prefetches += 1
        for depth in range(1, len(self.caches)):
            cache = self.caches[depth]
            if cache.contains(line):
                continue
            victim = cache.fill(line, dirty=False, count=count)
            if victim is not None:
                self._writeback(depth + 1, victim, count=count)

    def _writeback(self, depth: int, line: int, count: bool = True) -> None:
        """Install a dirty victim in the next level down (or DRAM)."""
        if depth >= len(self.caches):
            if count:
                self.dram_writebacks += 1
            return
        victim = self.caches[depth].fill(line, dirty=True, count=count)
        if victim is not None:
            self._writeback(depth + 1, victim, count=count)

    def warm_access(self, line: int, write: bool) -> None:
        """Update cache state as :meth:`access` would, without touching
        any statistics (functional warmup between detailed regions)."""
        serviced = len(self.caches)
        for depth, cache in enumerate(self.caches):
            hit, victim = cache.access(line, write, count=False)
            if victim is not None:
                self._writeback(depth + 1, victim, count=False)
            if hit:
                serviced = depth
                break
        if serviced > 0 and self._prefetch_enabled:
            self._prefetch(line + 1, count=False)

    def snapshot(self) -> HierarchyStats:
        """Freeze the current statistics into a :class:`HierarchyStats`."""
        return HierarchyStats(
            level_accesses=tuple(c.stats.accesses for c in self.caches),
            level_hits=tuple(c.stats.hits for c in self.caches),
            level_misses=tuple(c.stats.misses for c in self.caches),
            level_writebacks=tuple(
                c.stats.writebacks_out for c in self.caches
            ),
            dram_reads=self.dram_reads,
            dram_writebacks=self.dram_writebacks,
            prefetches=self.prefetches,
        )

    def reset(self) -> None:
        """Cold caches and zeroed statistics."""
        for cache in self.caches:
            cache.reset()
        self.dram_reads = 0
        self.dram_writebacks = 0
        self.prefetches = 0
