"""Three-level non-inclusive cache hierarchy with DRAM backing.

Demand accesses probe L1 -> L2 -> L3 -> DRAM, allocating the line in
every probed level on the way back (levels then age independently, so
contents diverge over time — non-inclusive). Dirty victims are written
back to the next level down (installed there without a demand-access
charge); an L3 dirty victim counts as a DRAM writeback.

The hierarchy reports, per access, the level that serviced it, from
which the CPU model derives the stall penalty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.cmpsim.cache import SetAssociativeCache
from repro.cmpsim.config import MemoryConfig, TABLE1_CONFIG


class AccessResult(enum.IntEnum):
    """Which level serviced a demand access (index into the hierarchy).

    :meth:`MemoryHierarchy.access` returns these as plain ints (the
    simulator's hot loop indexes penalty tables with them); the enum
    exists for readable comparisons in tests and reports.
    """

    L1 = 0
    L2 = 1
    L3 = 2
    DRAM = 3


class MemoryHierarchy:
    """The paper's Table 1 memory system (configurable)."""

    def __init__(self, config: MemoryConfig = TABLE1_CONFIG) -> None:
        self.config = config
        self.caches: Tuple[SetAssociativeCache, ...] = tuple(
            SetAssociativeCache(level) for level in config.levels
        )
        self.dram_reads = 0
        self.dram_writebacks = 0
        self.prefetches = 0
        self._prefetch_enabled = config.next_line_prefetch

    def access(self, line: int, write: bool) -> int:
        """Perform one demand access; returns the servicing level (0-3).

        Missed levels allocate the line on the way (levels then age
        independently — non-inclusive); compare the result against
        :class:`AccessResult` for readability. With next-line
        prefetching enabled, an L1 miss also pulls ``line + 1`` into
        the outer levels (no demand-access charge).
        """
        serviced = len(self.caches)
        for depth, cache in enumerate(self.caches):
            hit, victim = cache.access(line, write)
            if victim is not None:
                self._writeback(depth + 1, victim)
            if hit:
                serviced = depth
                break
        else:
            self.dram_reads += 1
        if serviced > 0 and self._prefetch_enabled:
            self._prefetch(line + 1)
        return serviced

    def _prefetch(self, line: int) -> None:
        """Install a prefetched line into the outer cache levels."""
        self.prefetches += 1
        for depth in range(1, len(self.caches)):
            cache = self.caches[depth]
            if cache.contains(line):
                continue
            victim = cache.fill(line, dirty=False)
            if victim is not None:
                self._writeback(depth + 1, victim)

    def _writeback(self, depth: int, line: int) -> None:
        """Install a dirty victim in the next level down (or DRAM)."""
        if depth >= len(self.caches):
            self.dram_writebacks += 1
            return
        victim = self.caches[depth].fill(line, dirty=True)
        if victim is not None:
            self._writeback(depth + 1, victim)

    def warm_access(self, line: int, write: bool) -> None:
        """Access without caring about the result (functional warmup)."""
        self.access(line, write)

    def reset(self) -> None:
        """Cold caches and zeroed statistics."""
        for cache in self.caches:
            cache.reset()
        self.dram_reads = 0
        self.dram_writebacks = 0
        self.prefetches = 0
