"""The CMP$im-style simulator: full runs, interval trackers, regions.

:class:`CMPSim` drives a binary through the execution engine while
simulating the Table 1 memory hierarchy and accounting cycles with the
in-order CPI model. Two kinds of run are supported:

* :meth:`CMPSim.run_full` — simulate the entire execution, optionally
  attributing instructions/cycles to interval structures via trackers:
  :class:`FLITracker` (fixed-length cuts at exact instruction counts)
  and :class:`VLITracker` (cuts at mapped marker coordinates). One full
  run therefore yields the whole-program "true" statistics *and* the
  per-interval statistics both SimPoint variants need.
* :meth:`CMPSim.run_regions` — PinPoints-style sampled simulation:
  fast-forward between chosen regions (with the caches either kept warm
  functionally or left untouched, for the warmup ablation) and collect
  detailed statistics only inside the regions.

Marker anchor blocks are always overhead blocks (procedure entries,
loop entries, loop branches) and overhead blocks never touch memory, so
their per-execution cycles within a chunk are uniform — which makes the
trackers' bulk-chunk boundary arithmetic exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cmpsim.config import MemoryConfig, TABLE1_CONFIG
from repro.cmpsim.cpu import CPIModel
from repro.cmpsim.hierarchy import MemoryHierarchy
from repro.cmpsim.memory import AddressStreamState, advance_stream, generate_refs
from repro.compilation.binary import Binary, LLoop
from repro.core.markers import ExecutionCoordinate, MarkerTable
from repro.errors import SimulationError
from repro.execution.engine import ExecutionEngine
from repro.execution.events import ExecutionConsumer, iteration_profile
from repro.programs.inputs import ProgramInput, REF_INPUT


@dataclass
class IntervalStats:
    """Detailed statistics attributed to one interval or region.

    ``dram_accesses`` counts demand accesses serviced by DRAM, so any
    "architecture metric of interest" (the paper's step 6 lists "CPI,
    miss rate, etc.") can be estimated from the same sampled run.
    """

    instructions: int = 0
    cycles: float = 0.0
    dram_accesses: float = 0.0

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            raise SimulationError("empty interval has no CPI")
        return self.cycles / self.instructions

    @property
    def dram_mpki(self) -> float:
        """DRAM accesses per thousand instructions."""
        if self.instructions == 0:
            raise SimulationError("empty interval has no MPKI")
        return 1000.0 * self.dram_accesses / self.instructions


class FLITracker:
    """Attributes cycles to fixed-length intervals (exact cuts).

    A chunk whose instructions straddle a boundary is split with its
    cycles prorated by instruction share — the same convention real
    interval profilers use when a basic block straddles an interval
    boundary.
    """

    def __init__(self, interval_size: int) -> None:
        if interval_size <= 0:
            raise SimulationError("interval_size must be positive")
        self._size = interval_size
        self._cur = IntervalStats()
        self.intervals: List[IntervalStats] = []
        self.total_instructions = 0
        self.total_cycles = 0.0
        self.total_dram = 0.0

    def on_chunk(
        self,
        block_id: int,
        execs: int,
        instructions: int,
        cycles: float,
        dram: float = 0.0,
    ) -> None:
        self.total_instructions += instructions
        self.total_cycles += cycles
        self.total_dram += dram
        if instructions <= 0:
            # A chunk may carry cycles/DRAM traffic without committing
            # instructions; conserve them in the open interval instead
            # of silently dropping them.
            self._cur.cycles += cycles
            self._cur.dram_accesses += dram
            return
        remaining_instr = instructions
        remaining_cycles = cycles
        remaining_dram = dram
        while remaining_instr > 0:
            space = self._size - self._cur.instructions
            if remaining_instr < space:
                self._cur.instructions += remaining_instr
                self._cur.cycles += remaining_cycles
                self._cur.dram_accesses += remaining_dram
                return
            fraction = space / remaining_instr
            share = remaining_cycles * fraction
            dram_share = remaining_dram * fraction
            self._cur.instructions += space
            self._cur.cycles += share
            self._cur.dram_accesses += dram_share
            remaining_instr -= space
            remaining_cycles -= share
            remaining_dram -= dram_share
            self.intervals.append(self._cur)
            self._cur = IntervalStats()

    def finish(self) -> None:
        if (
            self._cur.instructions > 0
            or self._cur.cycles != 0.0
            or self._cur.dram_accesses != 0.0
        ):
            self.intervals.append(self._cur)
            self._cur = IntervalStats()
        tracked = sum(interval.cycles for interval in self.intervals)
        if not math.isclose(
            tracked, self.total_cycles, rel_tol=1e-9, abs_tol=1e-6
        ):
            raise SimulationError(
                f"FLI tracker lost cycles: saw {self.total_cycles}, "
                f"attributed {tracked}"
            )


class VLITracker:
    """Attributes cycles to mapped variable-length intervals.

    ``boundaries`` are the interior interval boundaries (execution
    coordinates) from the primary binary's VLI profile; the tracker
    closes an interval exactly when the expected coordinate fires in
    *this* binary's execution.
    """

    def __init__(
        self,
        table: MarkerTable,
        boundaries: Sequence[ExecutionCoordinate],
    ) -> None:
        self._block_to_marker = table.block_to_marker()
        self._boundaries: Tuple[ExecutionCoordinate, ...] = tuple(boundaries)
        self._next = 0
        self._marker_counts: Dict[int, int] = {}
        self._cur = IntervalStats()
        self.intervals: List[IntervalStats] = []
        self.binary_name = table.binary_name

    def _close(self) -> None:
        self.intervals.append(self._cur)
        self._cur = IntervalStats()
        self._next += 1

    def on_chunk(
        self,
        block_id: int,
        execs: int,
        instructions: int,
        cycles: float,
        dram: float = 0.0,
    ) -> None:
        marker_id = self._block_to_marker.get(block_id)
        if marker_id is None:
            self._cur.instructions += instructions
            self._cur.cycles += cycles
            self._cur.dram_accesses += dram
            return
        # Marker anchors are overhead blocks: uniform per execution and
        # free of memory traffic (dram is always 0 here).
        per_instr = instructions // execs
        per_cycles = cycles / execs
        count = self._marker_counts.get(marker_id, 0)
        remaining = execs
        while remaining > 0:
            take = remaining
            if self._next < len(self._boundaries):
                expected_marker, expected_count = self._boundaries[self._next]
                if (
                    expected_marker == marker_id
                    and count < expected_count <= count + remaining
                ):
                    take = expected_count - count
            self._cur.instructions += per_instr * take
            self._cur.cycles += per_cycles * take
            count += take
            remaining -= take
            if self._next < len(self._boundaries):
                expected_marker, expected_count = self._boundaries[self._next]
                if expected_marker == marker_id and expected_count == count:
                    self._close()
        self._marker_counts[marker_id] = count

    def finish(self) -> None:
        if self._next != len(self._boundaries):
            raise SimulationError(
                f"{self.binary_name}: boundary "
                f"{self._boundaries[self._next]} never fired during "
                f"detailed simulation"
            )
        self.intervals.append(self._cur)
        self._cur = IntervalStats()


@dataclass(frozen=True)
class SimulationStats:
    """Whole-run statistics of one detailed simulation."""

    instructions: int
    cycles: float
    memory_refs: int
    level_accesses: Tuple[int, ...]
    level_misses: Tuple[int, ...]
    dram_reads: int
    dram_writebacks: int

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            raise SimulationError("empty run has no CPI")
        return self.cycles / self.instructions


@dataclass(frozen=True)
class FullRunResult:
    """A full detailed run plus whatever the trackers accumulated."""

    stats: SimulationStats


@dataclass(frozen=True)
class RegionSpec:
    """One simulation region in execution coordinates.

    ``start`` ``None`` means program start; ``end`` ``None`` means
    program exit. Regions must be disjoint and given in execution
    order (mapped simulation points from disjoint intervals are).
    """

    label: int
    start: Optional[ExecutionCoordinate]
    end: Optional[ExecutionCoordinate]


@dataclass(frozen=True)
class RegionResult:
    """Per-region detailed statistics from a sampled simulation."""

    regions: Mapping[int, IntervalStats]
    fast_forward_instructions: int

    def region(self, label: int) -> IntervalStats:
        try:
            return self.regions[label]
        except KeyError:
            raise SimulationError(f"no region labelled {label}") from None


def regions_from_mapped_points(points) -> List[RegionSpec]:
    """Execution-ordered region specs for mapped simulation points.

    ``points`` are :class:`~repro.core.mapping.MappedSimulationPoint`
    objects (ordered by cluster id); region simulation requires
    execution order, which is the primary binary's interval order.
    Region labels are the cluster ids.
    """
    ordered = sorted(points, key=lambda point: point.interval_index)
    return [
        RegionSpec(label=point.cluster, start=point.start, end=point.end)
        for point in ordered
    ]


@dataclass(frozen=True)
class _BlockInfo:
    instructions: int
    base_cycles: float
    specs: Tuple


class _DetailedConsumer(ExecutionConsumer):
    """Full detailed simulation with tracker attribution."""

    def __init__(
        self,
        binary: Binary,
        hierarchy: MemoryHierarchy,
        cpi_model: CPIModel,
        trackers: Sequence,
    ) -> None:
        self._binary = binary
        self._hierarchy = hierarchy
        self._penalties = cpi_model.penalties
        self._trackers = tuple(trackers)
        self._streams = AddressStreamState()
        self.instructions = 0
        self.cycles = 0.0
        self.memory_refs = 0
        n_blocks = max(binary.blocks) + 1 if binary.blocks else 0
        self._info: List[Optional[_BlockInfo]] = [None] * n_blocks
        for block_id, block in binary.blocks.items():
            self._info[block_id] = _BlockInfo(
                instructions=block.instructions,
                base_cycles=block.instructions * block.base_cpi,
                specs=block.accesses,
            )

    def _exec_with_refs(self, block_id: int, info: _BlockInfo) -> None:
        penalty = 0
        access = self._hierarchy.access
        penalties = self._penalties
        refs = 0
        dram = 0
        for spec in info.specs:
            for line, write in generate_refs(spec, self._streams):
                level = access(line, write)
                penalty += penalties[level]
                if level == 3:
                    dram += 1
                refs += 1
        cycles = info.base_cycles + penalty
        self.memory_refs += refs
        self.instructions += info.instructions
        self.cycles += cycles
        for tracker in self._trackers:
            tracker.on_chunk(block_id, 1, info.instructions, cycles, dram)

    def on_block(self, block_id: int, execs: int = 1) -> None:
        info = self._info[block_id]
        if info.specs:
            for _ in range(execs):
                self._exec_with_refs(block_id, info)
            return
        instructions = info.instructions * execs
        cycles = info.base_cycles * execs
        self.instructions += instructions
        self.cycles += cycles
        for tracker in self._trackers:
            tracker.on_chunk(block_id, execs, instructions, cycles)

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        profile = iteration_profile(self._binary, loop)
        body = [
            (block_id, self._info[block_id])
            for block_id in profile.body_blocks
        ]
        branch_id = profile.branch_block
        branch = self._info[branch_id]
        trackers = self._trackers
        exec_with_refs = self._exec_with_refs
        for _ in range(iterations):
            for block_id, info in body:
                if info.specs:
                    exec_with_refs(block_id, info)
                else:
                    self.instructions += info.instructions
                    self.cycles += info.base_cycles
                    for tracker in trackers:
                        tracker.on_chunk(
                            block_id, 1, info.instructions, info.base_cycles
                        )
            self.instructions += branch.instructions
            self.cycles += branch.base_cycles
            for tracker in trackers:
                tracker.on_chunk(
                    branch_id, 1, branch.instructions, branch.base_cycles
                )

    def finish(self) -> None:
        for tracker in self._trackers:
            tracker.finish()


class _RegionConsumer(ExecutionConsumer):
    """Sampled simulation: detail inside regions, fast-forward outside.

    In ``warm`` mode, fast-forwarding still performs every cache access
    (functional warming), so region statistics match a full run's. In
    cold mode, the caches are untouched outside regions (address
    cursors still advance deterministically) and every region starts
    with whatever the caches held when the previous region ended.
    """

    def __init__(
        self,
        binary: Binary,
        hierarchy: MemoryHierarchy,
        cpi_model: CPIModel,
        table: MarkerTable,
        regions: Sequence[RegionSpec],
        warm: bool,
    ) -> None:
        self._binary = binary
        self._hierarchy = hierarchy
        self._penalties = cpi_model.penalties
        self._streams = AddressStreamState()
        self._warm = warm
        self._block_to_marker = table.block_to_marker()
        self._marker_counts: Dict[int, int] = {}
        self.results: Dict[int, IntervalStats] = {}
        self.fast_forward_instructions = 0

        self._events: List[Tuple[ExecutionCoordinate, bool, int]] = []
        self._active: Optional[int] = None
        for index, region in enumerate(regions):
            if region.label in self.results:
                raise SimulationError(
                    f"duplicate region label {region.label}"
                )
            self.results[region.label] = IntervalStats()
            if region.start is None:
                if index != 0:
                    raise SimulationError(
                        "only the first region may start at program start"
                    )
                self._active = region.label
            else:
                self._events.append((region.start, True, region.label))
            if region.end is not None:
                self._events.append((region.end, False, region.label))
            elif index != len(regions) - 1:
                raise SimulationError(
                    "only the last region may run to program exit"
                )
        self._next_event = 0

    def _handle_marker(self, marker_id: int, count: int) -> None:
        while self._next_event < len(self._events):
            (marker, expected), starting, label = self._events[self._next_event]
            if marker != marker_id or expected != count:
                return
            self._active = label if starting else None
            self._next_event += 1

    def _exec_block(self, block_id: int) -> None:
        block = self._binary.blocks[block_id]
        active = self._active
        detailed = active is not None
        if block.accesses:
            if detailed or self._warm:
                penalty = 0
                refs = 0
                access = self._hierarchy.access
                penalties = self._penalties
                for spec in block.accesses:
                    for line, write in generate_refs(spec, self._streams):
                        penalty += penalties[access(line, write)]
                        refs += 1
            else:
                for spec in block.accesses:
                    advance_stream(spec, self._streams, 1)
                penalty = 0
        else:
            penalty = 0
        if detailed:
            stats = self.results[active]
            stats.instructions += block.instructions
            stats.cycles += block.instructions * block.base_cpi + penalty
        else:
            self.fast_forward_instructions += block.instructions
        marker_id = self._block_to_marker.get(block_id)
        if marker_id is not None:
            count = self._marker_counts.get(marker_id, 0) + 1
            self._marker_counts[marker_id] = count
            self._handle_marker(marker_id, count)

    def on_block(self, block_id: int, execs: int = 1) -> None:
        for _ in range(execs):
            self._exec_block(block_id)

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        profile = iteration_profile(self._binary, loop)
        for _ in range(iterations):
            for block_id in profile.body_blocks:
                self._exec_block(block_id)
            self._exec_block(profile.branch_block)

    def finish(self) -> None:
        if self._next_event != len(self._events):
            coord = self._events[self._next_event][0]
            raise SimulationError(
                f"{self._binary.name}: region boundary {coord} never fired"
            )


class CMPSim:
    """The simulator facade for one binary."""

    def __init__(
        self,
        binary: Binary,
        config: MemoryConfig = TABLE1_CONFIG,
        program_input: ProgramInput = REF_INPUT,
    ) -> None:
        self._binary = binary
        self._config = config
        self._input = program_input
        self._cpi_model = CPIModel.from_config(config)

    @property
    def binary(self) -> Binary:
        return self._binary

    def run_full(self, trackers: Sequence = ()) -> FullRunResult:
        """Simulate the whole execution; trackers see every chunk."""
        hierarchy = MemoryHierarchy(self._config)
        consumer = _DetailedConsumer(
            self._binary, hierarchy, self._cpi_model, trackers
        )
        ExecutionEngine(self._binary, self._input).run(consumer)
        stats = SimulationStats(
            instructions=consumer.instructions,
            cycles=consumer.cycles,
            memory_refs=consumer.memory_refs,
            level_accesses=tuple(
                cache.stats.accesses for cache in hierarchy.caches
            ),
            level_misses=tuple(
                cache.stats.misses for cache in hierarchy.caches
            ),
            dram_reads=hierarchy.dram_reads,
            dram_writebacks=hierarchy.dram_writebacks,
        )
        return FullRunResult(stats=stats)

    def run_regions(
        self,
        regions: Sequence[RegionSpec],
        table: MarkerTable,
        warm: bool = True,
    ) -> RegionResult:
        """Sampled simulation of the given regions (PinPoints-style)."""
        if not regions:
            raise SimulationError("run_regions needs at least one region")
        hierarchy = MemoryHierarchy(self._config)
        consumer = _RegionConsumer(
            self._binary, hierarchy, self._cpi_model, table, regions, warm
        )
        ExecutionEngine(self._binary, self._input).run(consumer)
        return RegionResult(
            regions=consumer.results,
            fast_forward_instructions=consumer.fast_forward_instructions,
        )
