"""The CMP$im-style simulator: full runs, interval trackers, regions.

:class:`CMPSim` drives a binary through the execution engine while
simulating the Table 1 memory hierarchy and accounting cycles with the
in-order CPI model. Two kinds of run are supported:

* :meth:`CMPSim.run_full` — simulate the entire execution, optionally
  attributing instructions/cycles to interval structures via trackers:
  :class:`FLITracker` (fixed-length cuts at exact instruction counts)
  and :class:`VLITracker` (cuts at mapped marker coordinates). One full
  run therefore yields the whole-program "true" statistics *and* the
  per-interval statistics both SimPoint variants need.
* :meth:`CMPSim.run_regions` — PinPoints-style sampled simulation:
  fast-forward between chosen regions (with the caches either kept warm
  functionally or left untouched, for the warmup ablation) and collect
  detailed statistics only inside the regions.

Marker anchor blocks are always overhead blocks (procedure entries,
loop entries, loop branches) and overhead blocks never touch memory, so
their per-execution cycles within a chunk are uniform — which makes the
trackers' bulk-chunk boundary arithmetic exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cmpsim.config import MemoryConfig, TABLE1_CONFIG
from repro.cmpsim.cpu import CPIModel
from repro.cmpsim.hierarchy import HierarchyStats, MemoryHierarchy
from repro.cmpsim.memory import (
    AddressStreamState,
    BulkAccessPattern,
    advance_stream,
    bulk_pattern,
    generate_refs,
)
from repro.observability import metrics
from repro.compilation.binary import Binary, LLoop
from repro.core.markers import ExecutionCoordinate, MarkerTable
from repro.errors import SimulationError
from repro.execution.engine import ExecutionEngine
from repro.execution.events import ExecutionConsumer, iteration_profile
from repro.programs.inputs import ProgramInput, REF_INPUT


@dataclass
class IntervalStats:
    """Detailed statistics attributed to one interval or region.

    ``dram_accesses`` counts demand accesses serviced by DRAM, so any
    "architecture metric of interest" (the paper's step 6 lists "CPI,
    miss rate, etc.") can be estimated from the same sampled run.
    """

    instructions: int = 0
    cycles: float = 0.0
    dram_accesses: float = 0.0

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            raise SimulationError("empty interval has no CPI")
        return self.cycles / self.instructions

    @property
    def dram_mpki(self) -> float:
        """DRAM accesses per thousand instructions."""
        if self.instructions == 0:
            raise SimulationError("empty interval has no MPKI")
        return 1000.0 * self.dram_accesses / self.instructions


class FLITracker:
    """Attributes cycles to fixed-length intervals (exact cuts).

    A chunk whose instructions straddle a boundary is split with its
    cycles prorated by instruction share — the same convention real
    interval profilers use when a basic block straddles an interval
    boundary.
    """

    def __init__(self, interval_size: int) -> None:
        if interval_size <= 0:
            raise SimulationError("interval_size must be positive")
        self._size = interval_size
        self._cur = IntervalStats()
        self.intervals: List[IntervalStats] = []
        self.total_instructions = 0
        self.total_cycles = 0.0
        self.total_dram = 0.0

    def on_chunk(
        self,
        block_id: int,
        execs: int,
        instructions: int,
        cycles: float,
        dram: float = 0.0,
    ) -> None:
        self.total_instructions += instructions
        self.total_cycles += cycles
        self.total_dram += dram
        if instructions <= 0:
            # A chunk may carry cycles/DRAM traffic without committing
            # instructions; conserve them in the open interval instead
            # of silently dropping them.
            self._cur.cycles += cycles
            self._cur.dram_accesses += dram
            return
        remaining_instr = instructions
        remaining_cycles = cycles
        remaining_dram = dram
        while remaining_instr > 0:
            space = self._size - self._cur.instructions
            if remaining_instr < space:
                self._cur.instructions += remaining_instr
                self._cur.cycles += remaining_cycles
                self._cur.dram_accesses += remaining_dram
                return
            fraction = space / remaining_instr
            share = remaining_cycles * fraction
            dram_share = remaining_dram * fraction
            self._cur.instructions += space
            self._cur.cycles += share
            self._cur.dram_accesses += dram_share
            remaining_instr -= space
            remaining_cycles -= share
            remaining_dram -= dram_share
            self.intervals.append(self._cur)
            self._cur = IntervalStats()

    def finish(self) -> None:
        if (
            self._cur.instructions > 0
            or self._cur.cycles != 0.0
            or self._cur.dram_accesses != 0.0
        ):
            self.intervals.append(self._cur)
            self._cur = IntervalStats()
        tracked = sum(interval.cycles for interval in self.intervals)
        if not math.isclose(
            tracked, self.total_cycles, rel_tol=1e-9, abs_tol=1e-6
        ):
            raise SimulationError(
                f"FLI tracker lost cycles: saw {self.total_cycles}, "
                f"attributed {tracked}"
            )


class VLITracker:
    """Attributes cycles to mapped variable-length intervals.

    ``boundaries`` are the interior interval boundaries (execution
    coordinates) from the primary binary's VLI profile; the tracker
    closes an interval exactly when the expected coordinate fires in
    *this* binary's execution.
    """

    def __init__(
        self,
        table: MarkerTable,
        boundaries: Sequence[ExecutionCoordinate],
    ) -> None:
        self._block_to_marker = table.block_to_marker()
        self._boundaries: Tuple[ExecutionCoordinate, ...] = tuple(boundaries)
        self._next = 0
        self._marker_counts: Dict[int, int] = {}
        self._cur = IntervalStats()
        self.intervals: List[IntervalStats] = []
        self.binary_name = table.binary_name

    def _close(self) -> None:
        self.intervals.append(self._cur)
        self._cur = IntervalStats()
        self._next += 1

    def on_chunk(
        self,
        block_id: int,
        execs: int,
        instructions: int,
        cycles: float,
        dram: float = 0.0,
    ) -> None:
        marker_id = self._block_to_marker.get(block_id)
        if marker_id is None:
            self._cur.instructions += instructions
            self._cur.cycles += cycles
            self._cur.dram_accesses += dram
            return
        # Marker anchors are overhead blocks: uniform per execution and
        # free of memory traffic (dram is always 0 here).
        per_instr = instructions // execs
        per_cycles = cycles / execs
        count = self._marker_counts.get(marker_id, 0)
        remaining = execs
        while remaining > 0:
            take = remaining
            if self._next < len(self._boundaries):
                expected_marker, expected_count = self._boundaries[self._next]
                if (
                    expected_marker == marker_id
                    and count < expected_count <= count + remaining
                ):
                    take = expected_count - count
            self._cur.instructions += per_instr * take
            self._cur.cycles += per_cycles * take
            count += take
            remaining -= take
            if self._next < len(self._boundaries):
                expected_marker, expected_count = self._boundaries[self._next]
                if expected_marker == marker_id and expected_count == count:
                    self._close()
        self._marker_counts[marker_id] = count

    def finish(self) -> None:
        if self._next != len(self._boundaries):
            raise SimulationError(
                f"{self.binary_name}: boundary "
                f"{self._boundaries[self._next]} never fired during "
                f"detailed simulation"
            )
        self.intervals.append(self._cur)
        self._cur = IntervalStats()


@dataclass(frozen=True)
class SimulationStats:
    """Whole-run statistics of one detailed simulation."""

    instructions: int
    cycles: float
    memory_refs: int
    level_accesses: Tuple[int, ...]
    level_misses: Tuple[int, ...]
    dram_reads: int
    dram_writebacks: int

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            raise SimulationError("empty run has no CPI")
        return self.cycles / self.instructions


@dataclass(frozen=True)
class FullRunResult:
    """A full detailed run plus whatever the trackers accumulated."""

    stats: SimulationStats
    hierarchy: Optional[HierarchyStats] = None


@dataclass(frozen=True)
class RegionSpec:
    """One simulation region in execution coordinates.

    ``start`` ``None`` means program start; ``end`` ``None`` means
    program exit. Regions must be disjoint and given in execution
    order (mapped simulation points from disjoint intervals are).
    """

    label: int
    start: Optional[ExecutionCoordinate]
    end: Optional[ExecutionCoordinate]


@dataclass(frozen=True)
class RegionResult:
    """Per-region detailed statistics from a sampled simulation."""

    regions: Mapping[int, IntervalStats]
    fast_forward_instructions: int
    hierarchy: Optional[HierarchyStats] = None

    def region(self, label: int) -> IntervalStats:
        try:
            return self.regions[label]
        except KeyError:
            raise SimulationError(f"no region labelled {label}") from None


def regions_from_mapped_points(points) -> List[RegionSpec]:
    """Execution-ordered region specs for mapped simulation points.

    ``points`` are :class:`~repro.core.mapping.MappedSimulationPoint`
    objects (ordered by cluster id); region simulation requires
    execution order, which is the primary binary's interval order.
    Region labels are the cluster ids.
    """
    ordered = sorted(points, key=lambda point: point.interval_index)
    return [
        RegionSpec(label=point.cluster, start=point.start, end=point.end)
        for point in ordered
    ]


@dataclass(frozen=True)
class _BlockInfo:
    instructions: int
    base_cycles: float
    specs: Tuple


#: Spans below this many total references are expanded into per-block
#: queue items instead of one bulk-generated span — the numpy fixed
#: costs dominate on tiny spans. Both paths are bit-identical, so the
#: threshold is pure tuning.
_MIN_BULK_REFS = 64

#: Deferred references are flushed through the hierarchy once this
#: many accumulate — large enough that every cache level's replay runs
#: vectorized, small enough to keep the working set in cache.
_FLUSH_REFS = 65536

#: Memory guard: flush once this many accounting items queue up even
#: if few references did (reference-free stretches of execution).
_FLUSH_ITEMS = 262144

#: Queue item tags (first tuple element).
_ITEM_PLAIN = 0  # (tag, block_id, execs, instructions, cycles)
_ITEM_BLOCK = 1  # (tag, block_id, instructions, base_cycles, start, end)
_ITEM_SPAN = 2  # (tag, plan, iterations, start)
_ITEM_LOOP = 3  # (tag, chunks, iterations) — reference-free loop


@dataclass(frozen=True)
class _SpanChunk:
    """One block execution inside a loop iteration's chunk sequence."""

    block_id: int
    instructions: int
    base_cycles: float
    col_start: int  # reference columns [col_start, col_end) of this
    col_end: int  # block within one iteration's reference row
    has_specs: bool


@dataclass(frozen=True)
class _SpanPlan:
    """Compiled batch recipe for one loop's iteration span.

    ``pattern`` is ``None`` for loops whose iterations touch no
    memory; they queue as reference-free loop items.
    """

    chunks: Tuple[_SpanChunk, ...]
    pattern: Optional[BulkAccessPattern]
    refs_per_iter: int
    instr_per_iter: int


class _DetailedConsumer(ExecutionConsumer):
    """Full detailed simulation with tracker attribution.

    In batched mode nothing touches the hierarchy per event. Reference
    generation still happens in event order (it owns the address
    cursors), but the generated arrays are *queued* alongside ordered
    accounting items and flushed through
    :meth:`MemoryHierarchy.access_many` once ``_FLUSH_REFS``
    references accumulate — batches then span many loops and straddle
    block events, which is what lets every cache level replay
    vectorized. At flush the item queue is drained in original event
    order, so float cycle accumulation and tracker ``on_chunk`` calls
    happen in exactly the scalar sequence: results stay bit-identical
    to ``batched=False``.
    """

    def __init__(
        self,
        binary: Binary,
        hierarchy: MemoryHierarchy,
        cpi_model: CPIModel,
        trackers: Sequence,
        batched: bool = True,
    ) -> None:
        self._binary = binary
        self._hierarchy = hierarchy
        self._penalties = cpi_model.penalties
        self._trackers = tuple(trackers)
        self._streams = AddressStreamState()
        self._batched = batched
        self._pen_np = np.array(cpi_model.penalties, dtype=np.int64)
        self._span_cache: Dict[int, _SpanPlan] = {}
        self.instructions = 0
        self.cycles = 0.0
        self.memory_refs = 0
        self._pending_lines: List[np.ndarray] = []
        self._pending_writes: List[np.ndarray] = []
        self._pending_refs = 0
        self._items: List[Tuple] = []
        n_blocks = max(binary.blocks) + 1 if binary.blocks else 0
        self._info: List[Optional[_BlockInfo]] = [None] * n_blocks
        for block_id, block in binary.blocks.items():
            self._info[block_id] = _BlockInfo(
                instructions=block.instructions,
                base_cycles=block.instructions * block.base_cpi,
                specs=block.accesses,
            )

    def _exec_with_refs(self, block_id: int, info: _BlockInfo) -> None:
        penalty = 0
        access = self._hierarchy.access
        penalties = self._penalties
        refs = 0
        dram = 0
        for spec in info.specs:
            for line, write in generate_refs(spec, self._streams):
                level = access(line, write)
                penalty += penalties[level]
                if level == 3:
                    dram += 1
                refs += 1
        cycles = info.base_cycles + penalty
        self.memory_refs += refs
        self.instructions += info.instructions
        self.cycles += cycles
        for tracker in self._trackers:
            tracker.on_chunk(block_id, 1, info.instructions, cycles, dram)

    def _queue_block(self, block_id: int, info: _BlockInfo) -> None:
        """Queue one reference-bearing block execution (batched mode)."""
        lines: List[int] = []
        writes: List[bool] = []
        for spec in info.specs:
            for line, write in generate_refs(spec, self._streams):
                lines.append(line)
                writes.append(write)
        start = self._pending_refs
        self._pending_lines.append(np.array(lines, dtype=np.int64))
        self._pending_writes.append(np.array(writes, dtype=np.bool_))
        self._pending_refs = start + len(lines)
        self.memory_refs += len(lines)
        self.instructions += info.instructions
        self._items.append(
            (
                _ITEM_BLOCK,
                block_id,
                info.instructions,
                info.base_cycles,
                start,
                self._pending_refs,
            )
        )

    def on_block(self, block_id: int, execs: int = 1) -> None:
        info = self._info[block_id]
        if info.specs:
            if self._batched:
                for _ in range(execs):
                    self._queue_block(block_id, info)
                self._maybe_flush()
            else:
                for _ in range(execs):
                    self._exec_with_refs(block_id, info)
            return
        instructions = info.instructions * execs
        cycles = info.base_cycles * execs
        self.instructions += instructions
        if self._batched:
            self._items.append(
                (_ITEM_PLAIN, block_id, execs, instructions, cycles)
            )
            if len(self._items) >= _FLUSH_ITEMS:
                self._flush()
            return
        self.cycles += cycles
        for tracker in self._trackers:
            tracker.on_chunk(block_id, execs, instructions, cycles)

    def _span_plan(self, loop: LLoop) -> _SpanPlan:
        """Compile (and cache) the batch recipe for one loop.

        Loops whose iterations touch no memory get ``pattern=None``.
        The branch block is a chunk with no reference columns,
        matching the scalar span loop which never generates references
        for it.
        """
        try:
            return self._span_cache[loop.loop_id]
        except KeyError:
            pass
        profile = iteration_profile(self._binary, loop)
        specs: List = []
        chunks: List[_SpanChunk] = []
        col = 0
        instr = 0
        for block_id in profile.body_blocks:
            info = self._info[block_id]
            start = col
            if info.specs:
                for spec in info.specs:
                    specs.append(spec)
                    col += spec.refs_per_exec
            chunks.append(
                _SpanChunk(
                    block_id=block_id,
                    instructions=info.instructions,
                    base_cycles=info.base_cycles,
                    col_start=start,
                    col_end=col,
                    has_specs=bool(info.specs),
                )
            )
            instr += info.instructions
        branch = self._info[profile.branch_block]
        chunks.append(
            _SpanChunk(
                block_id=profile.branch_block,
                instructions=branch.instructions,
                base_cycles=branch.base_cycles,
                col_start=col,
                col_end=col,
                has_specs=False,
            )
        )
        instr += branch.instructions
        plan = _SpanPlan(
            chunks=tuple(chunks),
            pattern=bulk_pattern(tuple(specs)) if col > 0 else None,
            refs_per_iter=col,
            instr_per_iter=instr,
        )
        self._span_cache[loop.loop_id] = plan
        return plan

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        if not self._batched:
            self._scalar_span(loop, iterations)
            return
        plan = self._span_plan(loop)
        if plan.pattern is None:
            self.instructions += plan.instr_per_iter * iterations
            self._items.append((_ITEM_LOOP, plan.chunks, iterations))
        elif iterations * plan.refs_per_iter >= _MIN_BULK_REFS:
            metrics.counter("cmpsim.bulk_spans").inc()
            lines, writes = plan.pattern.generate(
                self._streams, iterations
            )
            metrics.counter("cmpsim.bulk_refs").inc(int(lines.size))
            start = self._pending_refs
            self._pending_lines.append(lines)
            self._pending_writes.append(writes)
            self._pending_refs = start + int(lines.size)
            self.memory_refs += int(lines.size)
            self.instructions += plan.instr_per_iter * iterations
            self._items.append((_ITEM_SPAN, plan, iterations, start))
        else:
            # Tiny span: expand to per-block items (numpy fixed costs
            # dominate bulk generation at this size).
            metrics.counter("cmpsim.scalar_spans").inc()
            for _ in range(iterations):
                for chunk in plan.chunks:
                    if chunk.has_specs:
                        self._queue_block(
                            chunk.block_id, self._info[chunk.block_id]
                        )
                    else:
                        self.instructions += chunk.instructions
                        self._items.append(
                            (
                                _ITEM_PLAIN,
                                chunk.block_id,
                                1,
                                chunk.instructions,
                                chunk.base_cycles,
                            )
                        )
        self._maybe_flush()

    def _scalar_span(self, loop: LLoop, iterations: int) -> None:
        """Reference-at-a-time span execution (the oracle path)."""
        metrics.counter("cmpsim.scalar_spans").inc()
        profile = iteration_profile(self._binary, loop)
        body = [
            (block_id, self._info[block_id])
            for block_id in profile.body_blocks
        ]
        branch_id = profile.branch_block
        branch = self._info[branch_id]
        trackers = self._trackers
        exec_with_refs = self._exec_with_refs
        for _ in range(iterations):
            for block_id, info in body:
                if info.specs:
                    exec_with_refs(block_id, info)
                else:
                    self.instructions += info.instructions
                    self.cycles += info.base_cycles
                    for tracker in trackers:
                        tracker.on_chunk(
                            block_id, 1, info.instructions, info.base_cycles
                        )
            self.instructions += branch.instructions
            self.cycles += branch.base_cycles
            for tracker in trackers:
                tracker.on_chunk(
                    branch_id, 1, branch.instructions, branch.base_cycles
                )

    def _maybe_flush(self) -> None:
        if (
            self._pending_refs >= _FLUSH_REFS
            or len(self._items) >= _FLUSH_ITEMS
        ):
            self._flush()

    def _span_cycles(
        self, plan: _SpanPlan, iterations: int, pen_slice: np.ndarray
    ) -> np.ndarray:
        """Per-(iteration, chunk) cycle matrix from a penalty slice."""
        pen2d = pen_slice.reshape(iterations, plan.refs_per_iter)
        cyc = np.empty((iterations, len(plan.chunks)), dtype=np.float64)
        for index, chunk in enumerate(plan.chunks):
            if chunk.col_end > chunk.col_start:
                cyc[:, index] = chunk.base_cycles + pen2d[
                    :, chunk.col_start : chunk.col_end
                ].sum(axis=1)
            else:
                cyc[:, index] = chunk.base_cycles
        return cyc

    def _flush(self) -> None:
        """Replay all queued references and drain accounting in order.

        Instructions and reference counts were added at queue time
        (integer sums are order-free); float cycle accumulation and
        tracker calls replay here in exact event order.
        """
        items = self._items
        if not items:
            return
        metrics.counter("cmpsim.detailed_flushes").inc()
        # Flush sizes expose the deferred-replay batching behavior:
        # shrinking reference batches (or item-guard-triggered flushes)
        # mean the vectorized path is degrading toward scalar replay.
        metrics.histogram("cmpsim.flush_refs").observe(self._pending_refs)
        metrics.histogram("cmpsim.flush_items").observe(len(items))
        pen_all = dram_all = None
        if self._pending_refs:
            if len(self._pending_lines) == 1:
                lines = self._pending_lines[0]
                writes = self._pending_writes[0]
            else:
                lines = np.concatenate(self._pending_lines)
                writes = np.concatenate(self._pending_writes)
            serviced = self._hierarchy.access_many(lines, writes)
            pen_all = self._pen_np[serviced]
            dram_all = serviced == 3
        self._pending_lines = []
        self._pending_writes = []
        self._pending_refs = 0
        self._items = []
        if self._trackers:
            self._drain_tracked(items, pen_all, dram_all)
        else:
            self._drain_untracked(items, pen_all)

    def _drain_untracked(
        self, items: List[Tuple], pen_all: Optional[np.ndarray]
    ) -> None:
        """Fold all queued cycle values left-to-right in event order.

        ``np.add.accumulate`` folds left-to-right, bit-identical to
        the scalar per-chunk ``cycles +=`` sequence (np.sum is
        pairwise and is NOT).
        """
        parts: List[np.ndarray] = [
            np.array([self.cycles], dtype=np.float64)
        ]
        buf: List[float] = []
        for item in items:
            tag = item[0]
            if tag == _ITEM_SPAN:
                _, plan, iterations, start = item
                end = start + iterations * plan.refs_per_iter
                cyc = self._span_cycles(
                    plan, iterations, pen_all[start:end]
                )
                if buf:
                    parts.append(np.array(buf, dtype=np.float64))
                    buf = []
                parts.append(cyc.reshape(-1))
            elif tag == _ITEM_BLOCK:
                _, _, _, base_cycles, start, end = item
                penalty = int(pen_all[start:end].sum()) if end > start else 0
                buf.append(base_cycles + penalty)
            elif tag == _ITEM_PLAIN:
                buf.append(item[4])
            else:  # _ITEM_LOOP
                _, chunks, iterations = item
                row = np.array(
                    [chunk.base_cycles for chunk in chunks],
                    dtype=np.float64,
                )
                if buf:
                    parts.append(np.array(buf, dtype=np.float64))
                    buf = []
                parts.append(np.tile(row, iterations))
        if buf:
            parts.append(np.array(buf, dtype=np.float64))
        addends = np.concatenate(parts)
        self.cycles = float(np.add.accumulate(addends)[-1])

    def _drain_tracked(
        self,
        items: List[Tuple],
        pen_all: Optional[np.ndarray],
        dram_all: Optional[np.ndarray],
    ) -> None:
        """Replay the exact scalar accounting/on_chunk call sequence
        with Python numbers; only reference generation and the cache
        replay were batched."""
        trackers = self._trackers
        cycles_total = self.cycles
        for item in items:
            tag = item[0]
            if tag == _ITEM_SPAN:
                _, plan, iterations, start = item
                end = start + iterations * plan.refs_per_iter
                cyc_rows = self._span_cycles(
                    plan, iterations, pen_all[start:end]
                ).tolist()
                dram2d = dram_all[start:end].reshape(
                    iterations, plan.refs_per_iter
                )
                dram_rows = {
                    index: dram2d[
                        :, chunk.col_start : chunk.col_end
                    ].sum(axis=1).tolist()
                    for index, chunk in enumerate(plan.chunks)
                    if chunk.col_end > chunk.col_start
                }
                for t in range(iterations):
                    row = cyc_rows[t]
                    for index, chunk in enumerate(plan.chunks):
                        value = row[index]
                        cycles_total += value
                        if chunk.has_specs:
                            hits = (
                                dram_rows[index][t]
                                if index in dram_rows
                                else 0
                            )
                            for tracker in trackers:
                                tracker.on_chunk(
                                    chunk.block_id,
                                    1,
                                    chunk.instructions,
                                    value,
                                    hits,
                                )
                        else:
                            for tracker in trackers:
                                tracker.on_chunk(
                                    chunk.block_id,
                                    1,
                                    chunk.instructions,
                                    value,
                                )
            elif tag == _ITEM_BLOCK:
                _, block_id, instructions, base_cycles, start, end = item
                if end > start:
                    value = base_cycles + int(pen_all[start:end].sum())
                    dram = int(dram_all[start:end].sum())
                else:
                    value = base_cycles
                    dram = 0
                cycles_total += value
                for tracker in trackers:
                    tracker.on_chunk(
                        block_id, 1, instructions, value, dram
                    )
            elif tag == _ITEM_PLAIN:
                _, block_id, execs, instructions, cycles = item
                cycles_total += cycles
                for tracker in trackers:
                    tracker.on_chunk(
                        block_id, execs, instructions, cycles
                    )
            else:  # _ITEM_LOOP
                _, chunks, iterations = item
                for _ in range(iterations):
                    for chunk in chunks:
                        cycles_total += chunk.base_cycles
                        for tracker in trackers:
                            tracker.on_chunk(
                                chunk.block_id,
                                1,
                                chunk.instructions,
                                chunk.base_cycles,
                            )
        self.cycles = cycles_total

    def finish(self) -> None:
        self._flush()
        for tracker in self._trackers:
            tracker.finish()


class _RegionConsumer(ExecutionConsumer):
    """Sampled simulation: detail inside regions, fast-forward outside.

    In ``warm`` mode, fast-forwarding still performs every cache access
    (functional warming), so region statistics match a full run's. In
    cold mode, the caches are untouched outside regions (address
    cursors still advance deterministically) and every region starts
    with whatever the caches held when the previous region ended.
    """

    def __init__(
        self,
        binary: Binary,
        hierarchy: MemoryHierarchy,
        cpi_model: CPIModel,
        table: MarkerTable,
        regions: Sequence[RegionSpec],
        warm: bool,
    ) -> None:
        self._binary = binary
        self._hierarchy = hierarchy
        self._penalties = cpi_model.penalties
        self._streams = AddressStreamState()
        self._warm = warm
        self._block_to_marker = table.block_to_marker()
        self._marker_counts: Dict[int, int] = {}
        self.results: Dict[int, IntervalStats] = {}
        self.fast_forward_instructions = 0

        self._events: List[Tuple[ExecutionCoordinate, bool, int]] = []
        self._active: Optional[int] = None
        for index, region in enumerate(regions):
            if region.label in self.results:
                raise SimulationError(
                    f"duplicate region label {region.label}"
                )
            self.results[region.label] = IntervalStats()
            if region.start is None:
                if index != 0:
                    raise SimulationError(
                        "only the first region may start at program start"
                    )
                self._active = region.label
            else:
                self._events.append((region.start, True, region.label))
            if region.end is not None:
                self._events.append((region.end, False, region.label))
            elif index != len(regions) - 1:
                raise SimulationError(
                    "only the last region may run to program exit"
                )
        self._next_event = 0

    def _handle_marker(self, marker_id: int, count: int) -> None:
        while self._next_event < len(self._events):
            (marker, expected), starting, label = self._events[self._next_event]
            if marker != marker_id or expected != count:
                return
            self._active = label if starting else None
            self._next_event += 1

    def _exec_block(self, block_id: int) -> None:
        block = self._binary.blocks[block_id]
        active = self._active
        detailed = active is not None
        penalty = 0
        dram = 0
        if block.accesses:
            if detailed:
                access = self._hierarchy.access
                penalties = self._penalties
                for spec in block.accesses:
                    for line, write in generate_refs(spec, self._streams):
                        level = access(line, write)
                        penalty += penalties[level]
                        if level == 3:
                            dram += 1
            elif self._warm:
                # Functional warming: identical cache state transitions
                # to a demand access, zero statistics impact.
                warm = self._hierarchy.warm_access
                for spec in block.accesses:
                    for line, write in generate_refs(spec, self._streams):
                        warm(line, write)
            else:
                for spec in block.accesses:
                    advance_stream(spec, self._streams, 1)
        if detailed:
            stats = self.results[active]
            stats.instructions += block.instructions
            stats.cycles += block.instructions * block.base_cpi + penalty
            stats.dram_accesses += dram
        else:
            self.fast_forward_instructions += block.instructions
        marker_id = self._block_to_marker.get(block_id)
        if marker_id is not None:
            count = self._marker_counts.get(marker_id, 0) + 1
            self._marker_counts[marker_id] = count
            self._handle_marker(marker_id, count)

    def on_block(self, block_id: int, execs: int = 1) -> None:
        for _ in range(execs):
            self._exec_block(block_id)

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        profile = iteration_profile(self._binary, loop)
        for _ in range(iterations):
            for block_id in profile.body_blocks:
                self._exec_block(block_id)
            self._exec_block(profile.branch_block)

    def finish(self) -> None:
        if self._next_event != len(self._events):
            coord = self._events[self._next_event][0]
            raise SimulationError(
                f"{self._binary.name}: region boundary {coord} never fired"
            )


class CMPSim:
    """The simulator facade for one binary."""

    def __init__(
        self,
        binary: Binary,
        config: MemoryConfig = TABLE1_CONFIG,
        program_input: ProgramInput = REF_INPUT,
    ) -> None:
        self._binary = binary
        self._config = config
        self._input = program_input
        self._cpi_model = CPIModel.from_config(config)

    @property
    def binary(self) -> Binary:
        return self._binary

    def run_full(
        self, trackers: Sequence = (), batched: bool = True
    ) -> FullRunResult:
        """Simulate the whole execution; trackers see every chunk.

        ``batched=False`` forces the scalar reference-at-a-time path;
        both paths produce bit-identical results (the equivalence tests
        enforce this), so the flag exists for oracle checks and
        benchmarking.
        """
        hierarchy = MemoryHierarchy(self._config)
        consumer = _DetailedConsumer(
            self._binary, hierarchy, self._cpi_model, trackers, batched
        )
        ExecutionEngine(self._binary, self._input).run(consumer)
        stats = SimulationStats(
            instructions=consumer.instructions,
            cycles=consumer.cycles,
            memory_refs=consumer.memory_refs,
            level_accesses=tuple(
                cache.stats.accesses for cache in hierarchy.caches
            ),
            level_misses=tuple(
                cache.stats.misses for cache in hierarchy.caches
            ),
            dram_reads=hierarchy.dram_reads,
            dram_writebacks=hierarchy.dram_writebacks,
        )
        return FullRunResult(stats=stats, hierarchy=hierarchy.snapshot())

    def run_regions(
        self,
        regions: Sequence[RegionSpec],
        table: MarkerTable,
        warm: bool = True,
    ) -> RegionResult:
        """Sampled simulation of the given regions (PinPoints-style)."""
        if not regions:
            raise SimulationError("run_regions needs at least one region")
        hierarchy = MemoryHierarchy(self._config)
        consumer = _RegionConsumer(
            self._binary, hierarchy, self._cpi_model, table, regions, warm
        )
        ExecutionEngine(self._binary, self._input).run(consumer)
        return RegionResult(
            regions=consumer.results,
            fast_forward_instructions=consumer.fast_forward_instructions,
            hierarchy=hierarchy.snapshot(),
        )
