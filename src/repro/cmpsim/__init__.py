"""CMP$im-like detailed simulator.

The paper evaluates with CMP$im, a Pin-based simulator modelling an
in-order core with a three-level non-inclusive cache hierarchy
(Table 1). This package reimplements that substrate:

* :mod:`repro.cmpsim.config` — the paper's Table 1 configuration;
* :mod:`repro.cmpsim.cache` — set-associative LRU write-back caches;
* :mod:`repro.cmpsim.hierarchy` — the three-level hierarchy plus DRAM;
* :mod:`repro.cmpsim.memory` — deterministic per-block address streams;
* :mod:`repro.cmpsim.cpu` — the in-order CPI accounting model;
* :mod:`repro.cmpsim.simulator` — full-program runs with per-interval
  cycle trackers, and PinPoints-style region simulation with
  functional fast-forward.
"""

from repro.cmpsim.config import (
    BIG_LLC_CONFIG,
    CacheLevelConfig,
    MemoryConfig,
    PREFETCH_CONFIG,
    TABLE1_CONFIG,
)
from repro.cmpsim.cache import CacheStats, SetAssociativeCache
from repro.cmpsim.hierarchy import AccessResult, HierarchyStats, MemoryHierarchy
from repro.cmpsim.memory import (
    AddressStreamState,
    BulkAccessPattern,
    advance_stream,
    bulk_pattern,
    generate_refs,
    generate_refs_bulk,
)
from repro.cmpsim.cpu import CPIModel
from repro.cmpsim.simulator import (
    CMPSim,
    FLITracker,
    FullRunResult,
    IntervalStats,
    RegionResult,
    RegionSpec,
    VLITracker,
    regions_from_mapped_points,
)
from repro.cmpsim.simcache import (
    SIMRESULT_KIND,
    TrackedRun,
    cached_full_run,
    cached_region_run,
)

__all__ = [
    "BIG_LLC_CONFIG",
    "PREFETCH_CONFIG",
    "CacheLevelConfig",
    "MemoryConfig",
    "TABLE1_CONFIG",
    "CacheStats",
    "SetAssociativeCache",
    "AccessResult",
    "HierarchyStats",
    "MemoryHierarchy",
    "AddressStreamState",
    "BulkAccessPattern",
    "advance_stream",
    "bulk_pattern",
    "generate_refs",
    "generate_refs_bulk",
    "CPIModel",
    "CMPSim",
    "FLITracker",
    "FullRunResult",
    "IntervalStats",
    "RegionResult",
    "RegionSpec",
    "VLITracker",
    "regions_from_mapped_points",
    "SIMRESULT_KIND",
    "TrackedRun",
    "cached_full_run",
    "cached_region_run",
]
