"""Deterministic per-block address-stream generation.

Each :class:`~repro.compilation.binary.AccessSpec` owns a cursor keyed
by its stream id; executing the block advances the cursor and yields
``refs_per_exec`` ``(line, is_write)`` references:

* ``STREAM``/``STACK`` — fixed-stride sweep wrapping at the footprint;
* ``BLOCKED`` — stride-1 sweeps inside an 8 KB window that is re-swept
  several times before moving on (tiled reuse);
* ``RANDOM``/``POINTER_CHASE`` — an LCG draw over the footprint per
  reference.

Writes are interleaved deterministically at ``1 - read_fraction`` of
references via an integer accumulator. :func:`advance_stream` advances
a stream's state *as if* ``n`` executions happened, in O(log n) — used
by the cold fast-forward mode of region simulation, where addresses
must stay deterministic even though the caches are not touched.

Batched generation: :class:`BulkAccessPattern` compiles an ordered
tuple of specs (one loop iteration's reference pattern) into closed
forms and materializes whole iteration spans as numpy arrays —
bit-identical to, and leaving the stream state exactly as, the
equivalent sequence of :func:`generate_refs` calls. Every per-kind
recurrence has a closed form over the round index ``t`` and the
in-round reference index:

* cursor kinds (``STREAM``/``STACK``/``BLOCKED``) are affine in both
  indices (``cursor0 + offset + advance * t``);
* the LCG kinds use the affine-composition identity
  ``lcg^n(x) = A^n x + C * (A^{n-1} + ... + 1)`` — per-round states
  come from a vectorized prefix scan of ``A^R`` powers (uint64
  arithmetic wraps exactly like the scalar ``& MASK``), per-reference
  states from precompiled coefficient vectors;
* write flags satisfy ``flag_i == ((acc0 + i * wnum) % 1024) < wnum``
  because each scalar step reduces the accumulator by at most one
  denominator.

Streams shared by several specs (named streams; the O0 per-procedure
stack stream) are handled by grouping the compiled pattern per stream
and giving every occurrence its in-round cursor/draw/accumulator
offset, so interleaved occurrences reproduce the scalar interleaving
exactly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compilation.binary import AccessSpec
from repro.programs.behaviors import AccessKind

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = (1 << 64) - 1

#: BLOCKED kind: window geometry.
_WINDOW = 8 * 1024
_WINDOW_SWEEPS = 4

#: Write accumulator denominator (per-mille style, power of two).
_WDENOM = 1024


class AddressStreamState:
    """Mutable cursor state for every data stream of one run."""

    __slots__ = ("cursors", "lcg", "write_acc")

    def __init__(self) -> None:
        self.cursors: Dict[int, int] = {}
        self.lcg: Dict[int, int] = {}
        self.write_acc: Dict[int, int] = {}

    def cursor(self, stream_id: int) -> int:
        return self.cursors.get(stream_id, 0)

    def lcg_state(self, stream_id: int) -> int:
        return self.lcg.get(stream_id, (stream_id * 2654435761 + 1) & _LCG_MASK)


def _write_flags(
    state: AddressStreamState, spec: AccessSpec, n: int
) -> List[bool]:
    """Deterministic write pattern for the next ``n`` references."""
    wnum = int(round((1.0 - spec.read_fraction) * _WDENOM))
    acc = state.write_acc.get(spec.stream_id, 0)
    flags = []
    for _ in range(n):
        acc += wnum
        if acc >= _WDENOM:
            acc -= _WDENOM
            flags.append(True)
        else:
            flags.append(False)
    state.write_acc[spec.stream_id] = acc
    return flags


def generate_refs(
    spec: AccessSpec, state: AddressStreamState
) -> List[Tuple[int, bool]]:
    """References for ONE execution of a block's access spec."""
    n = spec.refs_per_exec
    if n == 0:
        return []
    flags = _write_flags(state, spec, n)
    refs: List[Tuple[int, bool]] = []
    kind = spec.kind
    if kind is AccessKind.STREAM or kind is AccessKind.STACK:
        cursor = state.cursors.get(spec.stream_id, 0)
        base = spec.base
        footprint = spec.footprint
        stride = spec.stride
        for i in range(n):
            addr = base + (cursor % footprint)
            refs.append((addr >> 6, flags[i]))
            cursor += stride
        state.cursors[spec.stream_id] = cursor
    elif kind is AccessKind.BLOCKED:
        cursor = state.cursors.get(spec.stream_id, 0)
        window = min(_WINDOW, spec.footprint)
        span = window * _WINDOW_SWEEPS
        for i in range(n):
            window_index = cursor // span
            offset = (cursor % span) % window
            addr = spec.base + (window_index * window + offset) % spec.footprint
            refs.append((addr >> 6, flags[i]))
            cursor += spec.stride
        state.cursors[spec.stream_id] = cursor
    else:  # RANDOM, POINTER_CHASE
        lcg = state.lcg.get(
            spec.stream_id, (spec.stream_id * 2654435761 + 1) & _LCG_MASK
        )
        base = spec.base
        footprint = spec.footprint
        for i in range(n):
            lcg = (lcg * _LCG_A + _LCG_C) & _LCG_MASK
            addr = base + (lcg >> 16) % footprint
            refs.append((addr >> 6, flags[i]))
        state.lcg[spec.stream_id] = lcg
    return refs


def _lcg_jump(state: int, steps: int) -> int:
    """Advance an LCG by ``steps`` in O(log steps) (affine composition)."""
    mult, add = 1, 0
    cur_mult, cur_add = _LCG_A, _LCG_C
    while steps > 0:
        if steps & 1:
            mult = (mult * cur_mult) & _LCG_MASK
            add = (add * cur_mult + cur_add) & _LCG_MASK
        cur_add = (cur_add * cur_mult + cur_add) & _LCG_MASK
        cur_mult = (cur_mult * cur_mult) & _LCG_MASK
        steps >>= 1
    return (state * mult + add) & _LCG_MASK


def advance_stream(
    spec: AccessSpec, state: AddressStreamState, execs: int
) -> None:
    """Advance a stream's state as if ``execs`` executions happened.

    Keeps cold fast-forward deterministic: after advancing, the next
    generated references are identical to those after ``execs`` real
    :func:`generate_refs` calls.
    """
    n = spec.refs_per_exec * execs
    if n == 0:
        return
    wnum = int(round((1.0 - spec.read_fraction) * _WDENOM))
    acc = state.write_acc.get(spec.stream_id, 0)
    state.write_acc[spec.stream_id] = (acc + wnum * n) % _WDENOM
    kind = spec.kind
    if kind in (AccessKind.STREAM, AccessKind.STACK, AccessKind.BLOCKED):
        cursor = state.cursors.get(spec.stream_id, 0)
        state.cursors[spec.stream_id] = cursor + spec.stride * n
    else:
        lcg = state.lcg.get(
            spec.stream_id, (spec.stream_id * 2654435761 + 1) & _LCG_MASK
        )
        state.lcg[spec.stream_id] = _lcg_jump(lcg, n)


def _affine_power(steps: int) -> Tuple[int, int]:
    """Coefficients ``(mult, add)`` of the LCG iterated ``steps`` times."""
    mult, add = 1, 0
    cur_mult, cur_add = _LCG_A, _LCG_C
    while steps > 0:
        if steps & 1:
            mult = (mult * cur_mult) & _LCG_MASK
            add = (add * cur_mult + cur_add) & _LCG_MASK
        cur_add = (cur_add * cur_mult + cur_add) & _LCG_MASK
        cur_mult = (cur_mult * cur_mult) & _LCG_MASK
        steps >>= 1
    return mult, add


def _wnum(spec: AccessSpec) -> int:
    return int(round((1.0 - spec.read_fraction) * _WDENOM))


class _CursorClass:
    """Per-column closed-form constants of one cursor kind."""

    __slots__ = ("cols", "stream", "const", "adv", "base", "fp")

    def __init__(self, columns) -> None:
        # columns: (col, stream_index, const, adv, base, footprint)
        self.cols = np.array([c[0] for c in columns], dtype=np.intp)
        self.stream = np.array([c[1] for c in columns], dtype=np.intp)
        self.const = np.array([c[2] for c in columns], dtype=np.int64)
        self.adv = np.array([c[3] for c in columns], dtype=np.int64)
        self.base = np.array([c[4] for c in columns], dtype=np.int64)
        self.fp = np.array([c[5] for c in columns], dtype=np.int64)


class BulkAccessPattern:
    """Closed-form batch generator for an ordered tuple of access specs.

    One *round* executes every spec once, in order — a loop iteration's
    reference pattern. :meth:`generate` materializes ``rounds``
    consecutive rounds as flat numpy arrays in exactly the order the
    scalar ``generate_refs`` loop would produce them, and leaves the
    :class:`AddressStreamState` exactly as that loop would.
    """

    def __init__(self, specs: Sequence[AccessSpec]) -> None:
        specs = tuple(s for s in specs if s.refs_per_exec > 0)
        self._specs = specs
        self.refs_per_round = sum(s.refs_per_exec for s in specs)

        # Per-stream in-round bookkeeping, in occurrence order.
        cursor_pre: Dict[int, int] = {}  # cursor advance before occurrence
        lcg_pre: Dict[int, int] = {}  # LCG draws before occurrence
        write_pre: Dict[int, int] = {}  # accumulator bump before occurrence

        stream_order: List[int] = []  # streams with any occurrence
        cursor_streams: List[int] = []  # streams with cursor occurrences
        lcg_stream_occs: Dict[int, List] = {}

        lin_columns: List[Tuple] = []
        blk_columns: List[Tuple] = []
        w_const: List[int] = []
        w_step_by_stream: Dict[int, int] = {}
        w_num: List[int] = []
        w_stream: List[int] = []

        col = 0
        for spec in specs:
            sid = spec.stream_id
            rpe = spec.refs_per_exec
            if sid not in w_step_by_stream:
                w_step_by_stream[sid] = 0
                stream_order.append(sid)
            wnum = _wnum(spec)
            pre_w = write_pre.get(sid, 0)
            sindex = stream_order.index(sid)
            for j in range(rpe):
                w_const.append(pre_w + wnum * (j + 1))
                w_num.append(wnum)
                w_stream.append(sindex)
            write_pre[sid] = pre_w + wnum * rpe
            w_step_by_stream[sid] += wnum * rpe

            kind = spec.kind
            if kind in (AccessKind.STREAM, AccessKind.STACK, AccessKind.BLOCKED):
                if sid not in cursor_pre:
                    cursor_pre[sid] = 0
                    cursor_streams.append(sid)
                pre_c = cursor_pre[sid]
                cindex = cursor_streams.index(sid)
                target = blk_columns if kind is AccessKind.BLOCKED else lin_columns
                for j in range(rpe):
                    target.append((
                        col + j,
                        cindex,
                        pre_c + spec.stride * j,
                        None,  # advance filled in once totals are known
                        spec.base,
                        spec.footprint,
                    ))
                cursor_pre[sid] = pre_c + spec.stride * rpe
            else:
                pre_d = lcg_pre.get(sid, 0)
                lcg_pre[sid] = pre_d + rpe
                pre_mult, pre_add = _affine_power(pre_d)
                mult, add = 1, 0
                coeff_mult: List[int] = []
                coeff_add: List[int] = []
                for _ in range(rpe):
                    mult = (mult * _LCG_A) & _LCG_MASK
                    add = (add * _LCG_A + _LCG_C) & _LCG_MASK
                    coeff_mult.append(mult)
                    coeff_add.append(add)
                lcg_stream_occs.setdefault(sid, []).append((
                    col,
                    rpe,
                    np.uint64(pre_mult),
                    np.uint64(pre_add),
                    pre_d == 0,
                    np.array(coeff_mult, dtype=np.uint64),
                    np.array(coeff_add, dtype=np.uint64),
                    spec.base,
                    spec.footprint,
                ))
            col += rpe

        # Per-round advances, now that per-stream totals are known.
        self._cursor_streams = tuple(cursor_streams)
        self._cursor_adv = tuple(cursor_pre[sid] for sid in cursor_streams)

        def finish_cursor(columns) -> Optional[_CursorClass]:
            if not columns:
                return None
            filled = [
                (c, s, const, cursor_pre[cursor_streams[s]], base, fp)
                for (c, s, const, _, base, fp) in columns
            ]
            return _CursorClass(filled)

        self._linear = finish_cursor(lin_columns)
        self._blocked = finish_cursor(blk_columns)
        if self._blocked is not None:
            fps = self._blocked.fp
            self._blk_window = np.minimum(fps, _WINDOW)
            self._blk_span = self._blk_window * _WINDOW_SWEEPS

        self._lcg_streams = tuple(
            (
                sid,
                lcg_pre[sid],
                _affine_power(lcg_pre[sid]),
                tuple(occs),
            )
            for sid, occs in lcg_stream_occs.items()
        )

        self._w_streams = tuple(stream_order)
        self._w_round = tuple(w_step_by_stream[sid] for sid in stream_order)
        self._w_const = np.array(w_const, dtype=np.int64)
        self._w_num = np.array(w_num, dtype=np.int64)
        self._w_stream = np.array(w_stream, dtype=np.intp)

    def generate(
        self, state: AddressStreamState, rounds: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """References for ``rounds`` rounds as ``(lines, writes)``.

        Flat arrays of length ``rounds * refs_per_round``, ordered
        exactly as the scalar per-spec ``generate_refs`` loop orders
        them; ``state`` is advanced to the scalar loop's final values.
        """
        cols = self.refs_per_round
        if rounds <= 0 or cols == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.bool_),
            )
        t = np.arange(rounds, dtype=np.int64)
        lines = np.empty((rounds, cols), dtype=np.int64)

        # Write flags: one closed form covers every column.
        acc0 = np.array(
            [state.write_acc.get(sid, 0) for sid in self._w_streams],
            dtype=np.int64,
        )
        w_round = np.array(self._w_round, dtype=np.int64)
        pos = (acc0[self._w_stream] + self._w_const)[None, :]
        pos = pos + (w_round[self._w_stream])[None, :] * t[:, None]
        writes = (pos % _WDENOM) < self._w_num[None, :]

        cursor0: Optional[np.ndarray] = None
        if self._cursor_streams:
            cursor0 = np.array(
                [state.cursors.get(sid, 0) for sid in self._cursor_streams],
                dtype=np.int64,
            )
            adv = np.array(self._cursor_adv, dtype=np.int64)
        if self._linear is not None:
            lin = self._linear
            cur = (cursor0[lin.stream] + lin.const)[None, :]
            cur = cur + (adv[lin.stream])[None, :] * t[:, None]
            addr = lin.base[None, :] + cur % lin.fp[None, :]
            lines[:, lin.cols] = addr >> 6
        if self._blocked is not None:
            blk = self._blocked
            cur = (cursor0[blk.stream] + blk.const)[None, :]
            cur = cur + (adv[blk.stream])[None, :] * t[:, None]
            window = self._blk_window[None, :]
            window_index = cur // self._blk_span[None, :]
            offset = (cur % self._blk_span[None, :]) % window
            addr = blk.base[None, :] + (
                window_index * window + offset
            ) % blk.fp[None, :]
            lines[:, blk.cols] = addr >> 6

        for sid, draws, (round_mult, round_add), occs in self._lcg_streams:
            x0 = state.lcg.get(
                sid, (sid * 2654435761 + 1) & _LCG_MASK
            )
            # State at the start of round t: (A^draws)^t applied to x0,
            # via a prefix scan over powers of the per-round multiplier.
            powers = np.empty(rounds, dtype=np.uint64)
            powers[0] = 1
            sums = np.empty(rounds, dtype=np.uint64)
            sums[0] = 0
            if rounds > 1:
                powers[1:] = np.multiply.accumulate(
                    np.full(rounds - 1, round_mult, dtype=np.uint64)
                )
                sums[1:] = np.add.accumulate(powers[: rounds - 1])
            y = powers * np.uint64(x0) + np.uint64(round_add) * sums
            for (
                col,
                rpe,
                pre_mult,
                pre_add,
                at_round_start,
                coeff_mult,
                coeff_add,
                base,
                footprint,
            ) in occs:
                z = y if at_round_start else y * pre_mult + pre_add
                states = coeff_mult[None, :] * z[:, None] + coeff_add[None, :]
                addr = base + (states >> np.uint64(16)) % footprint
                lines[:, col : col + rpe] = (addr >> np.uint64(6)).astype(
                    np.int64
                )
            state.lcg[sid] = _lcg_jump(x0, draws * rounds)

        for index, sid in enumerate(self._cursor_streams):
            state.cursors[sid] = (
                int(cursor0[index]) + self._cursor_adv[index] * rounds
            )
        for index, sid in enumerate(self._w_streams):
            state.write_acc[sid] = (
                int(acc0[index]) + self._w_round[index] * rounds
            ) % _WDENOM

        return lines.reshape(-1), writes.reshape(-1)


@lru_cache(maxsize=512)
def bulk_pattern(specs: Tuple[AccessSpec, ...]) -> BulkAccessPattern:
    """Compiled (and cached — specs are frozen dataclasses) pattern."""
    return BulkAccessPattern(specs)


def generate_refs_bulk(
    spec: AccessSpec, state: AddressStreamState, n_execs: int
) -> Tuple[np.ndarray, np.ndarray]:
    """References for ``n_execs`` executions of one spec, batched.

    Returns ``(lines, writes)`` numpy arrays of length
    ``spec.refs_per_exec * n_execs``, bit-identical to the references
    from ``n_execs`` scalar :func:`generate_refs` calls, advancing
    ``state`` to the same values.
    """
    return bulk_pattern((spec,)).generate(state, n_execs)
