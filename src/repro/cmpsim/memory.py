"""Deterministic per-block address-stream generation.

Each :class:`~repro.compilation.binary.AccessSpec` owns a cursor keyed
by its stream id; executing the block advances the cursor and yields
``refs_per_exec`` ``(line, is_write)`` references:

* ``STREAM``/``STACK`` — fixed-stride sweep wrapping at the footprint;
* ``BLOCKED`` — stride-1 sweeps inside an 8 KB window that is re-swept
  several times before moving on (tiled reuse);
* ``RANDOM``/``POINTER_CHASE`` — an LCG draw over the footprint per
  reference.

Writes are interleaved deterministically at ``1 - read_fraction`` of
references via an integer accumulator. :func:`advance_stream` advances
a stream's state *as if* ``n`` executions happened, in O(log n) — used
by the cold fast-forward mode of region simulation, where addresses
must stay deterministic even though the caches are not touched.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compilation.binary import AccessSpec
from repro.programs.behaviors import AccessKind

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_LCG_MASK = (1 << 64) - 1

#: BLOCKED kind: window geometry.
_WINDOW = 8 * 1024
_WINDOW_SWEEPS = 4

#: Write accumulator denominator (per-mille style, power of two).
_WDENOM = 1024


class AddressStreamState:
    """Mutable cursor state for every data stream of one run."""

    __slots__ = ("cursors", "lcg", "write_acc")

    def __init__(self) -> None:
        self.cursors: Dict[int, int] = {}
        self.lcg: Dict[int, int] = {}
        self.write_acc: Dict[int, int] = {}

    def cursor(self, stream_id: int) -> int:
        return self.cursors.get(stream_id, 0)

    def lcg_state(self, stream_id: int) -> int:
        return self.lcg.get(stream_id, (stream_id * 2654435761 + 1) & _LCG_MASK)


def _write_flags(
    state: AddressStreamState, spec: AccessSpec, n: int
) -> List[bool]:
    """Deterministic write pattern for the next ``n`` references."""
    wnum = int(round((1.0 - spec.read_fraction) * _WDENOM))
    acc = state.write_acc.get(spec.stream_id, 0)
    flags = []
    for _ in range(n):
        acc += wnum
        if acc >= _WDENOM:
            acc -= _WDENOM
            flags.append(True)
        else:
            flags.append(False)
    state.write_acc[spec.stream_id] = acc
    return flags


def generate_refs(
    spec: AccessSpec, state: AddressStreamState
) -> List[Tuple[int, bool]]:
    """References for ONE execution of a block's access spec."""
    n = spec.refs_per_exec
    if n == 0:
        return []
    flags = _write_flags(state, spec, n)
    refs: List[Tuple[int, bool]] = []
    kind = spec.kind
    if kind is AccessKind.STREAM or kind is AccessKind.STACK:
        cursor = state.cursors.get(spec.stream_id, 0)
        base = spec.base
        footprint = spec.footprint
        stride = spec.stride
        for i in range(n):
            addr = base + (cursor % footprint)
            refs.append((addr >> 6, flags[i]))
            cursor += stride
        state.cursors[spec.stream_id] = cursor
    elif kind is AccessKind.BLOCKED:
        cursor = state.cursors.get(spec.stream_id, 0)
        window = min(_WINDOW, spec.footprint)
        span = window * _WINDOW_SWEEPS
        for i in range(n):
            window_index = cursor // span
            offset = (cursor % span) % window
            addr = spec.base + (window_index * window + offset) % spec.footprint
            refs.append((addr >> 6, flags[i]))
            cursor += spec.stride
        state.cursors[spec.stream_id] = cursor
    else:  # RANDOM, POINTER_CHASE
        lcg = state.lcg.get(
            spec.stream_id, (spec.stream_id * 2654435761 + 1) & _LCG_MASK
        )
        base = spec.base
        footprint = spec.footprint
        for i in range(n):
            lcg = (lcg * _LCG_A + _LCG_C) & _LCG_MASK
            addr = base + (lcg >> 16) % footprint
            refs.append((addr >> 6, flags[i]))
        state.lcg[spec.stream_id] = lcg
    return refs


def _lcg_jump(state: int, steps: int) -> int:
    """Advance an LCG by ``steps`` in O(log steps) (affine composition)."""
    mult, add = 1, 0
    cur_mult, cur_add = _LCG_A, _LCG_C
    while steps > 0:
        if steps & 1:
            mult = (mult * cur_mult) & _LCG_MASK
            add = (add * cur_mult + cur_add) & _LCG_MASK
        cur_add = (cur_add * cur_mult + cur_add) & _LCG_MASK
        cur_mult = (cur_mult * cur_mult) & _LCG_MASK
        steps >>= 1
    return (state * mult + add) & _LCG_MASK


def advance_stream(
    spec: AccessSpec, state: AddressStreamState, execs: int
) -> None:
    """Advance a stream's state as if ``execs`` executions happened.

    Keeps cold fast-forward deterministic: after advancing, the next
    generated references are identical to those after ``execs`` real
    :func:`generate_refs` calls.
    """
    n = spec.refs_per_exec * execs
    if n == 0:
        return
    wnum = int(round((1.0 - spec.read_fraction) * _WDENOM))
    acc = state.write_acc.get(spec.stream_id, 0)
    state.write_acc[spec.stream_id] = (acc + wnum * n) % _WDENOM
    kind = spec.kind
    if kind in (AccessKind.STREAM, AccessKind.STACK, AccessKind.BLOCKED):
        cursor = state.cursors.get(spec.stream_id, 0)
        state.cursors[spec.stream_id] = cursor + spec.stride * n
    else:
        lcg = state.lcg.get(
            spec.stream_id, (spec.stream_id * 2654435761 + 1) & _LCG_MASK
        )
        state.lcg[spec.stream_id] = _lcg_jump(lcg, n)
