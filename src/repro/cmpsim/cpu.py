"""In-order core CPI accounting.

CMP$im models an in-order processor: every memory stall is exposed.
A block execution costs ``instructions x base CPI`` plus, per memory
reference, the hit latency of the level that serviced it beyond the L1
(an L1 hit is considered pipelined into the base CPI; L2/L3/DRAM
services stall the core for their full latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cmpsim.config import MemoryConfig, TABLE1_CONFIG
from repro.errors import SimulationError


@dataclass(frozen=True)
class CPIModel:
    """Stall penalties per servicing level, derived from the config."""

    penalties: Tuple[int, ...]  # indexed by AccessResult (L1..DRAM)

    @classmethod
    def from_config(cls, config: MemoryConfig = TABLE1_CONFIG) -> "CPIModel":
        if len(config.levels) != 3:
            raise SimulationError(
                "the CPI model expects a three-level hierarchy (Table 1)"
            )
        l1, l2, l3 = config.levels
        return cls(
            penalties=(
                0,  # L1 hit: pipelined
                l2.hit_latency,
                l3.hit_latency,
                config.dram_latency,
            )
        )

    def block_cycles(
        self, instructions: int, base_cpi: float, penalty_cycles: int
    ) -> float:
        """Cycles for one block execution."""
        return instructions * base_cpi + penalty_cycles
