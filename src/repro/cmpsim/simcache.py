"""Content-keyed reuse of detailed-simulation results.

Profiling is compiled and cached, so detailed CMP$im simulation is the
dominant repeated cost in sweeps, selector comparisons, and CI drift
runs — even though most of its inputs rarely change between runs. This
module keys detailed results by *content* and stores them as a
dedicated :data:`SIMRESULT_KIND` kind in the
:class:`~repro.runtime.cache.ProfileCache`:

* :func:`cached_full_run` — one entry per tracked full run, keyed by
  (binary content, memory config, program input, tracker parameters).
  This is the unit the experiment runner repeats across sweeps.
* :func:`cached_region_run` — one entry *per region* of a
  PinPoints-style sampled run. Region ``i``'s key covers the region
  list prefix ``regions[0..i]`` plus the warmup policy, because a
  region's detailed statistics depend on the cache state inherited
  from everything simulated or warmed before it — not just its own
  boundaries. A changed region therefore misses (and so does every
  region after it), while the unchanged prefix still hits; one
  simulation pass refills exactly the missing entries.

The execution engine and simulator are deterministic, so a cached
value is bit-identical to recomputing it; the equivalence tests
enforce this. Reuse is on whenever a profile cache is active and can
be vetoed per call (``use_sim_cache=False``), per process
(``--no-sim-cache``), or per environment (``REPRO_NO_SIM_CACHE=1``)
without touching the profiling caches.

Every lookup against :data:`SIMRESULT_KIND` is mirrored into the
``cache.sim.{hits,misses,stale_evictions}`` metric counters (the
manifest's per-run sim-reuse ratio is derived from these), by
measuring the per-kind stat deltas around the cache operations — so
the counters stay correct no matter which helper drove the cache.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from repro.cmpsim.config import MemoryConfig, TABLE1_CONFIG
from repro.cmpsim.simulator import (
    CMPSim,
    FLITracker,
    IntervalStats,
    RegionResult,
    RegionSpec,
    SimulationStats,
    VLITracker,
)
from repro.core.markers import ExecutionCoordinate, MarkerTable
from repro.observability import metrics
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.runtime.cache import ProfileCache
from repro.runtime.config import active_cache, sim_cache_enabled

#: ProfileCache kind under which detailed-simulation results live.
SIMRESULT_KIND = "simresult"

_SIM_COUNTER_KEYS = ("hits", "misses", "stale_evictions")


@dataclass(frozen=True)
class TrackedRun:
    """A full detailed run plus its tracker interval breakdowns.

    This is the cacheable unit of :func:`cached_full_run`: everything
    the experiment runner consumes from one ``run_full`` call, with
    the (stateful, unpicklable-by-contract) tracker objects reduced to
    their interval tuples.
    """

    stats: SimulationStats
    fli_intervals: Tuple[IntervalStats, ...] = ()
    vli_intervals: Tuple[IntervalStats, ...] = ()


def full_run_key(
    binary,
    memory: MemoryConfig,
    program_input: ProgramInput,
    fli_interval_size: Optional[int],
    vli_table: Optional[MarkerTable],
    vli_boundaries: Optional[Sequence[ExecutionCoordinate]],
) -> Tuple:
    """Key material for one tracked full run.

    Covers everything that can influence the result: the binary's
    content (blocks, loops, access specs — the ``Binary`` dataclass
    fingerprints by field), the memory configuration, the program
    input, and the exact tracker parameters.
    """
    return (
        "full-run",
        binary,
        memory,
        program_input,
        fli_interval_size,
        vli_table,
        tuple(vli_boundaries) if vli_boundaries is not None else None,
    )


def region_run_keys(
    binary,
    regions: Sequence[RegionSpec],
    table: MarkerTable,
    warm: bool,
    memory: MemoryConfig,
    program_input: ProgramInput,
) -> Tuple[list, Tuple]:
    """Per-region key material plus the run-tail key.

    Region ``i`` is keyed by the spec prefix ``regions[0..i]``: its
    detailed statistics depend on the cache state left behind by every
    earlier region and fast-forward stretch, so a boundary edit
    invalidates that region and everything after it — never anything
    before. The tail key (covering the whole list) addresses the
    run-level leftovers (fast-forward instruction count and the final
    hierarchy snapshot).
    """
    base = (
        binary,
        memory,
        program_input,
        table,
        bool(warm),
    )
    keys = []
    for index in range(len(regions)):
        prefix = tuple(regions[: index + 1])
        keys.append(("region",) + base + (prefix,))
    tail_key = ("region-tail",) + base + (tuple(regions),)
    return keys, tail_key


@contextmanager
def _mirror_sim_counters(cache: ProfileCache) -> Iterator[None]:
    """Mirror simresult kind-stat deltas into ``cache.sim.*`` counters."""

    def snap() -> Tuple[int, int, int]:
        row = cache.stats.by_kind.get(SIMRESULT_KIND)
        if row is None:
            return (0, 0, 0)
        return (row.hits, row.misses, row.stale_evictions)

    before = snap()
    try:
        yield
    finally:
        after = snap()
        for key, old, new in zip(_SIM_COUNTER_KEYS, before, after):
            if new > old:
                metrics.counter(f"cache.sim.{key}").inc(new - old)


def cached_full_run(
    binary,
    *,
    memory: MemoryConfig = TABLE1_CONFIG,
    program_input: ProgramInput = REF_INPUT,
    fli_interval_size: Optional[int] = None,
    vli_table: Optional[MarkerTable] = None,
    vli_boundaries: Optional[Sequence[ExecutionCoordinate]] = None,
    cache: Optional[ProfileCache] = None,
    use_sim_cache: Optional[bool] = None,
    batched: bool = True,
) -> TrackedRun:
    """A full detailed run with FLI/VLI trackers, cached by content.

    ``batched`` is deliberately *not* part of the key: the batched and
    scalar paths are bit-identical (the equivalence tests enforce it),
    so either may satisfy the other's lookup.
    """

    def compute() -> TrackedRun:
        trackers = []
        fli = (
            FLITracker(fli_interval_size)
            if fli_interval_size is not None
            else None
        )
        if fli is not None:
            trackers.append(fli)
        vli = (
            VLITracker(vli_table, tuple(vli_boundaries or ()))
            if vli_table is not None
            else None
        )
        if vli is not None:
            trackers.append(vli)
        result = CMPSim(binary, memory, program_input).run_full(
            trackers=tuple(trackers), batched=batched
        )
        return TrackedRun(
            stats=result.stats,
            fli_intervals=tuple(fli.intervals) if fli is not None else (),
            vli_intervals=tuple(vli.intervals) if vli is not None else (),
        )

    if cache is None:
        cache = active_cache()
    if cache is None or not sim_cache_enabled(use_sim_cache):
        return compute()
    key = full_run_key(
        binary,
        memory,
        program_input,
        fli_interval_size,
        vli_table,
        vli_boundaries,
    )
    with _mirror_sim_counters(cache):
        return cache.get_or_compute(SIMRESULT_KIND, key, compute)


def cached_region_run(
    binary,
    regions: Sequence[RegionSpec],
    table: MarkerTable,
    warm: bool = True,
    *,
    memory: MemoryConfig = TABLE1_CONFIG,
    program_input: ProgramInput = REF_INPUT,
    cache: Optional[ProfileCache] = None,
    use_sim_cache: Optional[bool] = None,
) -> RegionResult:
    """PinPoints-style region simulation with per-region reuse.

    All regions hit → the result is assembled from the cache with no
    simulation at all. Any region misses → one ordinary
    ``run_regions`` pass re-simulates (the execution prefix must be
    replayed anyway to reconstruct cache state), and only the missing
    entries are written back. Hit regions keep their cached values in
    the assembled result; determinism makes those identical to the
    fresh pass, which the bit-identity tests enforce.
    """
    sim = CMPSim(binary, memory, program_input)
    region_list = list(regions)
    if cache is None:
        cache = active_cache()
    if (
        cache is None
        or not sim_cache_enabled(use_sim_cache)
        or not region_list
    ):
        return sim.run_regions(region_list, table, warm=warm)
    keys, tail_key = region_run_keys(
        binary, region_list, table, warm, memory, program_input
    )
    with _mirror_sim_counters(cache):
        probes = [cache.lookup(SIMRESULT_KIND, key) for key in keys]
    # The tail entry is run-level bookkeeping, not a region: it stays
    # out of the cache.sim.* mirror so those counters read as
    # per-region hit counts.
    tail_found, tail_value = cache.lookup(SIMRESULT_KIND, tail_key)
    if tail_found and all(found for found, _ in probes):
        return RegionResult(
            regions={
                spec.label: value
                for spec, (_, value) in zip(region_list, probes)
            },
            fast_forward_instructions=tail_value[0],
            hierarchy=tail_value[1],
        )
    fresh = sim.run_regions(region_list, table, warm=warm)
    for spec, key, (found, _) in zip(region_list, keys, probes):
        if not found:
            cache.store(SIMRESULT_KIND, key, fresh.region(spec.label))
    if not tail_found:
        cache.store(
            SIMRESULT_KIND,
            tail_key,
            (fresh.fast_forward_instructions, fresh.hierarchy),
        )
    return RegionResult(
        regions={
            spec.label: (value if found else fresh.region(spec.label))
            for spec, (found, value) in zip(region_list, probes)
        },
        fast_forward_instructions=fresh.fast_forward_instructions,
        hierarchy=fresh.hierarchy,
    )
