"""Array-backed set-associative LRU write-back cache.

Lines are identified by integer line ids (byte address divided by line
size). Storage is three flat preallocated arrays of ``n_sets *
associativity`` entries — line tags (``-1`` empty), dirty flags, and
recency stamps from a monotone clock — instead of per-set Python
lists. The stamp order of a set is a bijection of the old MRU-list
order: every access and fill touches the stamp, ``contains`` does not,
so "evict the minimum stamp" is exactly "evict the list tail".
Empty ways keep stamp ``0`` and the clock starts at ``1``, so the
minimum-stamp way is the first empty way while a set is filling and
the true LRU way afterwards — matching the list semantics (append
while not full, evict the tail when full).

A write marks the line dirty; evicting a dirty line reports it so the
hierarchy can write it back to the next level.

Two batch entry points complement the scalar ``access``/``fill``:

* :meth:`SetAssociativeCache.access_many` replays a batch of demand
  accesses in submission order;
* the private ``_replay`` engine additionally understands fill and
  prefetch operations — the per-level op streams
  :meth:`repro.cmpsim.hierarchy.MemoryHierarchy.access_many` builds.

Small batches run through a tight Python loop over the flat arrays.
Large batches run through a vectorized *lane* engine: the batch is
grouped by set index (stable argsort, so each set's substream keeps
its order — the only order that matters, because sets are
independent), each touched set becomes one lane, and numpy processes
one operation per lane per step. Both engines leave bit-identical
state, statistics, and outputs; the scalar path is their oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cmpsim.config import CacheLevelConfig
from repro.observability import metrics

#: ``_replay`` op kinds (also used by the hierarchy's batch pipeline).
OP_ACCESS = 0  # demand access; flag = write
OP_FILL = 1  # install from an upper level; flag = dirty
OP_PREFETCH = 2  # install when absent; no LRU touch when present

#: Batches at least this large use the vectorized lane engine.
_LANE_MIN_OPS = 1024


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks_out: int = 0

    @property
    def accesses(self) -> int:
        return (
            self.read_hits
            + self.read_misses
            + self.write_hits
            + self.write_misses
        )

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class SetAssociativeCache:
    """One cache level with LRU replacement and write-back policy."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self._n_sets = config.n_sets
        self._assoc = config.associativity
        size = self._n_sets * self._assoc
        self._tags: List[int] = [-1] * size
        self._dirty: List[bool] = [False] * size
        self._stamp: List[int] = [0] * size
        self._clock = 1
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Scalar operations
    # ------------------------------------------------------------------

    def access(
        self, line: int, write: bool, count: bool = True
    ) -> Tuple[bool, Optional[int]]:
        """Access a line; returns ``(hit, evicted dirty line or None)``.

        On a miss the line is allocated (fetch-on-write for write
        misses, as a write-back write-allocate cache does); if the set
        is full, the LRU entry is evicted and returned when dirty.
        With ``count=False`` the state transition happens but no
        statistics are recorded (functional warmup).
        """
        assoc = self._assoc
        base = (line % self._n_sets) * assoc
        seg = self._tags[base : base + assoc]
        if line in seg:
            way = base + seg.index(line)
            self._stamp[way] = self._clock
            self._clock += 1
            if write:
                self._dirty[way] = True
                if count:
                    self.stats.write_hits += 1
            elif count:
                self.stats.read_hits += 1
            return True, None
        if count:
            if write:
                self.stats.write_misses += 1
            else:
                self.stats.read_misses += 1
        return False, self._insert(base, line, write, count)

    def fill(self, line: int, dirty: bool, count: bool = True) -> Optional[int]:
        """Install a line without counting a demand access (writebacks
        arriving from an upper level). Returns an evicted dirty line."""
        assoc = self._assoc
        base = (line % self._n_sets) * assoc
        seg = self._tags[base : base + assoc]
        if line in seg:
            way = base + seg.index(line)
            self._stamp[way] = self._clock
            self._clock += 1
            if dirty:
                self._dirty[way] = True
            return None
        return self._insert(base, line, dirty, count)

    def _insert(
        self, base: int, line: int, dirty: bool, count: bool
    ) -> Optional[int]:
        """Install into the empty-or-LRU way; returns an evicted dirty
        line (always returned so state cascades even when uncounted)."""
        stamp = self._stamp
        seg = stamp[base : base + self._assoc]
        way = base + seg.index(min(seg))
        tags = self._tags
        dirty_bits = self._dirty
        victim_line = tags[way]
        victim: Optional[int] = None
        if victim_line >= 0 and dirty_bits[way]:
            if count:
                self.stats.writebacks_out += 1
            victim = victim_line
        tags[way] = line
        dirty_bits[way] = dirty
        stamp[way] = self._clock
        self._clock += 1
        return victim

    def contains(self, line: int) -> bool:
        """Presence check without touching LRU state (tests/inspection)."""
        base = (line % self._n_sets) * self._assoc
        return line in self._tags[base : base + self._assoc]

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(1 for tag in self._tags if tag >= 0)

    def set_lines(self, index: int) -> List[int]:
        """Resident lines of one set, most recently used first."""
        return [line for line, _ in self.set_state(index)]

    def set_state(self, index: int) -> List[Tuple[int, bool]]:
        """``(line, dirty)`` pairs of one set, most recently used first.

        This is the cache's full observable state: way placement and
        raw stamp values are internal bookkeeping the batch engines
        are free to permute, recency *order* and dirty bits are not.
        """
        base = index * self._assoc
        ways = [
            (self._stamp[way], self._tags[way], self._dirty[way])
            for way in range(base, base + self._assoc)
            if self._tags[way] >= 0
        ]
        ways.sort(reverse=True)
        return [(line, dirty) for _, line, dirty in ways]

    def reset(self) -> None:
        """Drop all contents and statistics (cold restart)."""
        size = self._n_sets * self._assoc
        self._tags = [-1] * size
        self._dirty = [False] * size
        self._stamp = [0] * size
        self._clock = 1
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------

    def access_many(
        self, lines: np.ndarray, writes: np.ndarray
    ) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
        """Replay a batch of demand accesses in submission order.

        Returns ``(miss_positions, victims)``: the positions (into the
        batch) of demand misses as an ascending int64 array, and the
        dirty victims as an ascending list of ``(position, line)``
        pairs. State and statistics end bit-identical to the same
        sequence of scalar :meth:`access` calls.
        """
        return self._replay(
            np.asarray(lines, dtype=np.int64),
            np.asarray(writes, dtype=np.bool_),
            None,
        )

    def _replay(
        self,
        lines: np.ndarray,
        flags: np.ndarray,
        kinds: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
        """Replay a mixed op stream (``kinds=None`` means all demand)."""
        if lines.size >= _LANE_MIN_OPS:
            if kinds is None and self._assoc == 2:
                return self._replay_demand_2way(lines, flags)
            return self._replay_lanes(lines, flags, kinds)
        return self._replay_python(
            lines.tolist(),
            flags.tolist(),
            None if kinds is None else kinds.tolist(),
        )

    def _replay_python(
        self,
        lines: List[int],
        flags: List[bool],
        kinds: Optional[List[int]],
    ) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
        """In-order replay through a tight loop over the flat arrays."""
        metrics.counter("cmpsim.cache_python_ops").inc(len(lines))
        tags = self._tags
        dirty = self._dirty
        stamp = self._stamp
        n_sets = self._n_sets
        assoc = self._assoc
        clock = self._clock
        read_hits = read_misses = write_hits = write_misses = 0
        writebacks = 0
        miss: List[int] = []
        victims: List[Tuple[int, int]] = []
        for position in range(len(lines)):
            line = lines[position]
            base = (line % n_sets) * assoc
            end = base + assoc
            seg = tags[base:end]
            kind = OP_ACCESS if kinds is None else kinds[position]
            flag = flags[position]
            if line in seg:
                if kind == OP_PREFETCH:
                    continue  # present: no LRU touch (contains + skip)
                way = base + seg.index(line)
                stamp[way] = clock
                clock += 1
                if flag:
                    dirty[way] = True
                if kind == OP_ACCESS:
                    if flag:
                        write_hits += 1
                    else:
                        read_hits += 1
                continue
            if kind == OP_ACCESS:
                miss.append(position)
                if flag:
                    write_misses += 1
                else:
                    read_misses += 1
                new_dirty = flag
            elif kind == OP_FILL:
                new_dirty = flag
            else:
                new_dirty = False
            seg = stamp[base:end]
            way = base + seg.index(min(seg))
            if tags[way] >= 0 and dirty[way]:
                writebacks += 1
                victims.append((position, tags[way]))
            tags[way] = line
            dirty[way] = new_dirty
            stamp[way] = clock
            clock += 1
        self._clock = clock
        stats = self.stats
        stats.read_hits += read_hits
        stats.read_misses += read_misses
        stats.write_hits += write_hits
        stats.write_misses += write_misses
        stats.writebacks_out += writebacks
        return np.array(miss, dtype=np.int64), victims

    def _replay_demand_2way(
        self, lines: np.ndarray, flags: np.ndarray
    ) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
        """Closed-form replay for pure-demand batches at 2-way.

        Every demand op promotes its line to MRU (hits refresh, misses
        insert), so a 2-way LRU set always holds exactly the last two
        *distinct* lines referenced. After run collapse a set's
        substream ``y`` has no equal neighbours, hence for ``j >= 2``
        the set's contents before op ``j`` are ``{y[j-1], y[j-2]}``
        and ``hit(j) <=> y[j] == y[j-2]`` — no step loop at all. A
        hit chains ``j`` to ``j-2``, so a line's continuous residency
        is a run of equal values at one *parity* of the substream;
        dirty bits at eviction are OR-reductions over those runs. The
        first two ops of each set splice against the pre-batch
        MRU/LRU pair (including inherited dirty bits); the final
        state is ``{y[last], y[last-1]}`` with the parity-run dirty
        bits written back.
        """
        n = lines.size
        metrics.counter("cmpsim.cache_2way_ops").inc(n)
        n_sets = self._n_sets
        set_index = lines % n_sets
        order = np.argsort(set_index, kind="stable")
        s_sets = set_index[order]
        s_lines = lines[order]
        s_flags = flags[order]
        s_pos = order

        # Run collapse (see _replay_lanes): followers are guaranteed
        # MRU hits; heads carry the run's OR-ed flag for state.
        foll_read_hits = 0
        foll_write_hits = 0
        keep = np.empty(n, dtype=np.bool_)
        keep[0] = True
        np.not_equal(s_lines[1:], s_lines[:-1], out=keep[1:])
        if keep.all():
            eff = s_flags.copy()  # mutated by boundary inheritance
        else:
            head_idx = np.flatnonzero(keep)
            eff = np.logical_or.reduceat(s_flags, head_idx)
            foll_flags = s_flags[~keep]
            foll_write_hits = int(foll_flags.sum())
            foll_read_hits = foll_flags.size - foll_write_hits
            s_sets = s_sets[head_idx]
            s_lines = s_lines[head_idx]
            s_flags = s_flags[head_idx]
            s_pos = s_pos[head_idx]
        m = s_lines.size

        uniq, starts, counts = np.unique(
            s_sets, return_index=True, return_counts=True
        )
        col = np.arange(m, dtype=np.int64) - np.repeat(starts, counts)

        # Pre-batch state of each touched set as an (MRU, LRU) pair;
        # empty ways have stamp 0 so they sort to the LRU side.
        tags2 = np.array(self._tags, dtype=np.int64).reshape(n_sets, 2)
        dirty2 = np.array(self._dirty, dtype=np.bool_).reshape(n_sets, 2)
        stamp2 = np.array(self._stamp, dtype=np.int64).reshape(n_sets, 2)
        g_stamp = stamp2[uniq]
        g_tags = tags2[uniq]
        g_dirty = dirty2[uniq]
        mru_is_0 = g_stamp[:, 0] >= g_stamp[:, 1]
        t0 = np.where(mru_is_0, g_tags[:, 0], g_tags[:, 1])
        t1 = np.where(mru_is_0, g_tags[:, 1], g_tags[:, 0])
        d0 = np.where(mru_is_0, g_dirty[:, 0], g_dirty[:, 1])
        d1 = np.where(mru_is_0, g_dirty[:, 1], g_dirty[:, 0])

        # Boundary ops: col 0 probes {t0, t1}; whichever of the pair
        # op 0 does not reference (the batch LRU seed) is o0.
        q0 = starts
        y0 = s_lines[q0]
        hit0 = (y0 == t0) | (y0 == t1)
        o0 = np.where(y0 == t0, t1, t0)
        od = np.where(y0 == t0, d1, d0)
        eff[q0] |= hit0 & np.where(y0 == t0, d0, d1)
        has2 = counts >= 2
        q1 = (starts + 1)[has2]
        hit1 = s_lines[q1] == o0[has2]
        eff[q1] |= hit1 & od[has2]

        # Parity classes: stable-sort by (set, col parity) keeps col
        # order inside each class; residency runs are equal-value runs
        # there, and hit(j >= 2) is exactly "not a run head".
        pkey = s_sets * 2 + (col & 1)
        porder = np.argsort(pkey, kind="stable")
        py = s_lines[porder]
        pkey_s = pkey[porder]
        class_head = np.empty(m, dtype=np.bool_)
        class_head[0] = True
        np.not_equal(pkey_s[1:], pkey_s[:-1], out=class_head[1:])
        ph = np.empty(m, dtype=np.bool_)
        ph[0] = True
        np.not_equal(py[1:], py[:-1], out=ph[1:])
        ph |= class_head

        hit = np.empty(m, dtype=np.bool_)
        hit[porder] = ~ph
        hit[q0] = hit0
        hit[q1] = hit1

        run_start = np.flatnonzero(ph)
        run_or = np.logical_or.reduceat(eff[porder], run_start)
        run_id = np.cumsum(ph) - 1

        # Standard victims: a run head that is not a class head is a
        # miss at col >= 2 evicting y[j-2] — the final element of the
        # previous run in the same class, dirty iff that run's OR.
        sel = np.flatnonzero(ph & ~class_head)
        vic_dirty = run_or[run_id[sel] - 1]
        sel = sel[vic_dirty]
        ppos = s_pos[porder]
        victim_pos_parts = [ppos[sel]]
        victim_line_parts = [py[sel - 1]]
        # Boundary victims evict pre-batch lines with pre-batch dirty.
        mask0 = ~hit0 & (t1 >= 0) & d1
        victim_pos_parts.append(s_pos[q0][mask0])
        victim_line_parts.append(t1[mask0])
        mask1 = ~hit1 & (o0[has2] >= 0) & od[has2]
        victim_pos_parts.append(s_pos[q1][mask1])
        victim_line_parts.append(o0[has2][mask1])

        # Final state: {y[last], y[last-1]} (or the op-0 splice for
        # single-op sets); dirty bits are the final parity-run ORs.
        inv = np.empty(m, dtype=np.int64)
        inv[porder] = np.arange(m, dtype=np.int64)
        q_last = starts + counts - 1
        mru_tag = s_lines[q_last]
        mru_dirty = run_or[run_id[inv[q_last]]]
        q_prev = np.maximum(q_last - 1, starts)
        lru_tag = np.where(has2, s_lines[q_prev], o0)
        lru_dirty = np.where(has2, run_or[run_id[inv[q_prev]]], od)
        lru_real = lru_tag >= 0
        lru_dirty &= lru_real
        clock = self._clock
        tags2[uniq, 0] = mru_tag
        tags2[uniq, 1] = lru_tag
        dirty2[uniq, 0] = mru_dirty
        dirty2[uniq, 1] = lru_dirty
        stamp2[uniq, 0] = clock + 1
        stamp2[uniq, 1] = np.where(lru_real, clock, 0)
        self._tags = tags2.reshape(-1).tolist()
        self._dirty = dirty2.reshape(-1).tolist()
        self._stamp = stamp2.reshape(-1).tolist()
        self._clock = clock + 2

        hits_total = int(hit.sum())
        write_hits = int((hit & s_flags).sum())
        write_misses = int((~hit & s_flags).sum())
        stats = self.stats
        stats.read_hits += hits_total - write_hits + foll_read_hits
        stats.write_hits += write_hits + foll_write_hits
        stats.read_misses += m - hits_total - write_misses
        stats.write_misses += write_misses

        miss = s_pos[~hit]
        miss.sort()
        victim_pos = np.concatenate(victim_pos_parts)
        victims: List[Tuple[int, int]] = []
        if victim_pos.size:
            victim_line = np.concatenate(victim_line_parts)
            stats.writebacks_out += int(victim_pos.size)
            resort = np.argsort(victim_pos)
            victims = list(
                zip(
                    victim_pos[resort].tolist(),
                    victim_line[resort].tolist(),
                )
            )
        return miss, victims

    def _replay_lanes(
        self,
        lines: np.ndarray,
        flags: np.ndarray,
        kinds: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
        """Set-grouped vectorized replay.

        The batch is stable-sorted by set index, so each set's
        substream keeps its order — the only order that matters,
        because sets are independent. Each touched set becomes one
        *lane*; numpy then processes one op per lane per step, with
        lanes sorted longest-first so the lanes active at step ``s``
        are a contiguous prefix. Per-step stamps are ``clock + s``:
        within any one set that preserves the exact scalar stamp
        *order*, which is all LRU replacement ever observes.

        For pure-demand batches, consecutive same-line ops within a
        set's substream are collapsed first: once the head op runs,
        the line is resident and most-recently-used, so every
        follower is a guaranteed hit whose entire effect is hit
        statistics, a dirty-bit OR, and an MRU refresh that cannot
        change the set's recency order. The head op carries the run's
        OR-ed write flag for state (``eff``) while keeping its own
        flag for hit/miss classification — exactly the scalar
        outcome.
        """
        n = lines.size
        metrics.counter("cmpsim.cache_lane_ops").inc(n)
        n_sets = self._n_sets
        assoc = self._assoc
        set_index = lines % n_sets
        order = np.argsort(set_index, kind="stable")
        s_sets = set_index[order]
        s_lines = lines[order]
        s_flags = flags[order]
        s_pos = order

        foll_read_hits = 0
        foll_write_hits = 0
        if kinds is None:
            # Run collapse (same line implies same set, so equal
            # neighbours in the grouped order are exactly the runs).
            head = np.empty(n, dtype=np.bool_)
            head[0] = True
            np.not_equal(s_lines[1:], s_lines[:-1], out=head[1:])
            if head.all():
                s_eff = s_flags
            else:
                head_idx = np.flatnonzero(head)
                s_eff = np.logical_or.reduceat(s_flags, head_idx)
                foll_flags = s_flags[~head]
                foll_write_hits = int(foll_flags.sum())
                foll_read_hits = foll_flags.size - foll_write_hits
                s_sets = s_sets[head_idx]
                s_lines = s_lines[head_idx]
                s_flags = s_flags[head_idx]
                s_pos = s_pos[head_idx]
            s_kinds = None
        else:
            s_eff = s_flags
            s_kinds = kinds[order]
        n_ops = s_lines.size

        uniq, starts, counts = np.unique(
            s_sets, return_index=True, return_counts=True
        )
        lane_perm = np.argsort(-counts, kind="stable")
        n_lanes = uniq.size
        depth = int(counts[lane_perm[0]])
        lane_id = np.empty(n_lanes, dtype=np.int64)
        lane_id[lane_perm] = np.arange(n_lanes)
        lane = lane_id[np.repeat(np.arange(n_lanes), counts)]
        col = np.arange(n_ops, dtype=np.int64) - np.repeat(starts, counts)
        counts_sorted = counts[lane_perm]
        active = np.searchsorted(
            -counts_sorted, -(np.arange(depth, dtype=np.int64) + 1),
            side="right",
        )

        # (depth, n_lanes) matrices: each step's ops are one row.
        op_line = np.full((depth, n_lanes), -1, dtype=np.int64)
        op_line[col, lane] = s_lines
        op_flag = np.zeros((depth, n_lanes), dtype=np.bool_)
        op_flag[col, lane] = s_flags
        op_pos = np.full((depth, n_lanes), -1, dtype=np.int64)
        op_pos[col, lane] = s_pos
        if s_eff is s_flags:
            op_eff = op_flag
        else:
            op_eff = np.zeros((depth, n_lanes), dtype=np.bool_)
            op_eff[col, lane] = s_eff
        if s_kinds is not None:
            op_kind = np.full((depth, n_lanes), -1, dtype=np.int64)
            op_kind[col, lane] = s_kinds
        hit_mat = np.zeros((depth, n_lanes), dtype=np.bool_)

        tags_full = np.array(self._tags, dtype=np.int64).reshape(
            n_sets, assoc
        )
        dirty_full = np.array(self._dirty, dtype=np.bool_).reshape(
            n_sets, assoc
        )
        stamp_full = np.array(self._stamp, dtype=np.int64).reshape(
            n_sets, assoc
        )
        touched = uniq[lane_perm]
        lane_tags = tags_full[touched]
        lane_dirty = dirty_full[touched]
        lane_stamp = stamp_full[touched]
        clock = self._clock

        writebacks = 0
        victim_pos_parts: List[np.ndarray] = []
        victim_line_parts: List[np.ndarray] = []
        flatnonzero = np.flatnonzero

        for step in range(depth):
            width = int(active[step])
            tags = lane_tags[:width]
            line = op_line[step, :width]
            stamp_value = clock + step

            eq = tags == line[:, None]
            hit = eq.any(axis=1)
            hit_mat[step, :width] = hit
            way = eq.argmax(axis=1)
            if s_kinds is None:
                hrows = flatnonzero(hit)
                eff = op_eff[step, :width]
                insert_dirty_src = eff
            else:
                kind = op_kind[step, :width]
                not_prefetch = kind != OP_PREFETCH
                hrows = flatnonzero(hit & not_prefetch)
                eff = op_flag[step, :width]
                insert_dirty_src = eff & not_prefetch
            hways = way[hrows]
            lane_stamp[hrows, hways] = stamp_value
            setters = hrows[eff[hrows]]
            lane_dirty[setters, way[setters]] = True
            ins = flatnonzero(~hit)
            if ins.size:
                slot = lane_stamp[:width].argmin(axis=1)[ins]
                victim_line = lane_tags[ins, slot]
                evict = flatnonzero(
                    lane_dirty[ins, slot] & (victim_line >= 0)
                )
                if evict.size:
                    writebacks += evict.size
                    victim_pos_parts.append(op_pos[step, :width][ins[evict]])
                    victim_line_parts.append(victim_line[evict])
                lane_tags[ins, slot] = line[ins]
                lane_dirty[ins, slot] = insert_dirty_src[ins]
                lane_stamp[ins, slot] = stamp_value

        tags_full[touched] = lane_tags
        dirty_full[touched] = lane_dirty
        stamp_full[touched] = lane_stamp
        self._tags = tags_full.reshape(-1).tolist()
        self._dirty = dirty_full.reshape(-1).tolist()
        self._stamp = stamp_full.reshape(-1).tolist()
        self._clock = clock + depth

        # Deferred statistics: classification never feeds back into the
        # replay, so it is aggregated once from the hit matrix.
        valid = op_pos >= 0
        if s_kinds is None:
            demand_hit = hit_mat
            demand_miss = valid & ~hit_mat
        else:
            demand = op_kind == OP_ACCESS
            demand_hit = hit_mat & demand
            demand_miss = demand & ~hit_mat
        write_hits = int((demand_hit & op_flag).sum())
        read_hits = int(demand_hit.sum()) - write_hits
        write_misses = int((demand_miss & op_flag).sum())
        read_misses = int(demand_miss.sum()) - write_misses

        stats = self.stats
        stats.read_hits += read_hits + foll_read_hits
        stats.write_hits += write_hits + foll_write_hits
        stats.read_misses += read_misses
        stats.write_misses += write_misses
        stats.writebacks_out += writebacks

        miss = op_pos[demand_miss]
        miss.sort()
        victims: List[Tuple[int, int]] = []
        if victim_pos_parts:
            victim_pos = np.concatenate(victim_pos_parts)
            victim_line = np.concatenate(victim_line_parts)
            resort = np.argsort(victim_pos)
            victims = list(
                zip(
                    victim_pos[resort].tolist(),
                    victim_line[resort].tolist(),
                )
            )
        return miss, victims
