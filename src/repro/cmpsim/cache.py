"""Set-associative LRU write-back cache.

Lines are identified by integer line ids (byte address divided by line
size); the cache stores full line ids per set with true LRU ordering
(most recent first). A write marks the line dirty; evicting a dirty
line reports it so the hierarchy can write it back to the next level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cmpsim.config import CacheLevelConfig
from repro.errors import SimulationError


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks_out: int = 0

    @property
    def accesses(self) -> int:
        return (
            self.read_hits
            + self.read_misses
            + self.write_hits
            + self.write_misses
        )

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class SetAssociativeCache:
    """One cache level with LRU replacement and write-back policy."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self._n_sets = config.n_sets
        self._assoc = config.associativity
        # Per set: parallel MRU-ordered lists of line ids and dirty bits.
        self._tags: List[List[int]] = [[] for _ in range(self._n_sets)]
        self._dirty: List[List[bool]] = [[] for _ in range(self._n_sets)]
        self.stats = CacheStats()

    def access(self, line: int, write: bool) -> Tuple[bool, Optional[int]]:
        """Access a line; returns ``(hit, evicted dirty line or None)``.

        On a miss the line is allocated (fetch-on-write for write
        misses, as a write-back write-allocate cache does); if the set
        overflows, the LRU entry is evicted and returned when dirty.
        """
        index = line % self._n_sets
        tags = self._tags[index]
        dirty = self._dirty[index]
        stats = self.stats
        try:
            position = tags.index(line)
        except ValueError:
            position = -1
        if position >= 0:
            if position != 0:
                tags.insert(0, tags.pop(position))
                dirty.insert(0, dirty.pop(position))
            if write:
                dirty[0] = True
                stats.write_hits += 1
            else:
                stats.read_hits += 1
            return True, None
        if write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
        tags.insert(0, line)
        dirty.insert(0, write)
        victim: Optional[int] = None
        if len(tags) > self._assoc:
            victim_line = tags.pop()
            victim_dirty = dirty.pop()
            if victim_dirty:
                stats.writebacks_out += 1
                victim = victim_line
        return False, victim

    def fill(self, line: int, dirty: bool) -> Optional[int]:
        """Install a line without counting a demand access (writebacks
        arriving from an upper level). Returns an evicted dirty line."""
        index = line % self._n_sets
        tags = self._tags[index]
        dirty_bits = self._dirty[index]
        try:
            position = tags.index(line)
        except ValueError:
            position = -1
        if position >= 0:
            if position != 0:
                tags.insert(0, tags.pop(position))
                dirty_bits.insert(0, dirty_bits.pop(position))
            dirty_bits[0] = dirty_bits[0] or dirty
            return None
        tags.insert(0, line)
        dirty_bits.insert(0, dirty)
        if len(tags) > self._assoc:
            victim_line = tags.pop()
            victim_dirty = dirty_bits.pop()
            if victim_dirty:
                self.stats.writebacks_out += 1
                return victim_line
        return None

    def contains(self, line: int) -> bool:
        """Presence check without touching LRU state (tests/inspection)."""
        return line in self._tags[line % self._n_sets]

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(tags) for tags in self._tags)

    def reset(self) -> None:
        """Drop all contents and statistics (cold restart)."""
        for tags in self._tags:
            tags.clear()
        for dirty in self._dirty:
            dirty.clear()
        self.stats = CacheStats()
