"""Interval records.

An :class:`Interval` is one contiguous slice of a program's execution,
represented (per the paper's Section 2.2) by a basic block vector: for
each static basic block, the number of times it was entered during the
interval multiplied by the block's instruction count. Fixed-length
intervals carry only their index and size; variable-length intervals
additionally carry their start/end execution coordinates (set by
:mod:`repro.core.vli`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ProfilingError


@dataclass
class Interval:
    """One execution interval and its basic block vector.

    ``bbv`` maps block id to *instructions attributed* (entry count x
    block size, the paper's weighting). ``start_coord``/``end_coord``
    are ``(marker id, execution count)`` pairs for VLI intervals; they
    are ``None`` for fixed-length intervals, whose boundaries are plain
    dynamic instruction counts. ``end_coord`` is ``None`` for the final
    interval of a VLI run (it ends at program exit).
    """

    index: int
    instructions: int
    bbv: Dict[int, float] = field(default_factory=dict)
    start_coord: Optional[Tuple[int, int]] = None
    end_coord: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ProfilingError(
                f"interval {self.index}: instructions must be positive, "
                f"got {self.instructions}"
            )

    def bbv_total(self) -> float:
        """Total attributed instructions (should track ``instructions``)."""
        return sum(self.bbv.values())
