"""The call-and-branch profile (paper Section 3.2.1).

For each binary (run with the study's input), the profile records:

* per-procedure *entry counts* — how many times each symbol-visible
  procedure is entered over the whole execution;
* per-loop *entry counts* — how many times each loop is entered,
  regardless of how long it iterates;
* per-loop *iteration (body) counts* — how many times the loop's
  back-edge branch executes over the whole run;

together with each loop's debug line. These counts plus symbol/line
information are exactly what the cross-binary matcher
(:mod:`repro.core.matching`) uses to find mappable points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.compilation.binary import Binary
from repro.execution.pin import PinTool, run_with_tools
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.programs.ir import SourceLocation
from repro.runtime.cache import ProfileCache
from repro.runtime.config import active_cache, trace_replay_enabled


@dataclass(frozen=True)
class LoopProfile:
    """Whole-run profile of one loop in one binary."""

    loop_id: int
    location: Optional[SourceLocation]
    source_name: str
    entries: int
    iterations: int


@dataclass(frozen=True)
class CallBranchProfile:
    """Whole-run call-and-branch profile of one binary."""

    binary_name: str
    procedure_entries: Mapping[str, int]
    loops: Mapping[int, LoopProfile]
    total_instructions: int

    def executed_procedures(self) -> Tuple[str, ...]:
        """Symbols entered at least once, sorted by name."""
        return tuple(
            sorted(n for n, c in self.procedure_entries.items() if c > 0)
        )

    def executed_loops(self) -> Tuple[LoopProfile, ...]:
        """Loops entered at least once, sorted by loop id."""
        return tuple(
            profile
            for _, profile in sorted(self.loops.items())
            if profile.entries > 0
        )


class CallBranchProfiler(PinTool):
    """Pin tool that accumulates the call-and-branch profile."""

    def __init__(self) -> None:
        self._binary: Optional[Binary] = None
        self._proc_entries: Dict[str, int] = {}
        self._loop_entries: Dict[int, int] = {}
        self._loop_iterations: Dict[int, int] = {}
        self._instructions = 0

    def on_program_start(self, binary: Binary) -> None:
        self._binary = binary
        self._proc_entries = {name: 0 for name in binary.symbols}
        self._loop_entries = {loop_id: 0 for loop_id in binary.loops}
        self._loop_iterations = {loop_id: 0 for loop_id in binary.loops}

    def on_procedure_entry(self, name: str) -> None:
        self._proc_entries[name] = self._proc_entries.get(name, 0) + 1

    def on_loop_entry(self, loop_id: int) -> None:
        self._loop_entries[loop_id] += 1

    def on_loop_iterations(self, loop_id: int, iterations: int) -> None:
        self._loop_iterations[loop_id] += iterations

    def on_block_exec(self, block, execs: int) -> None:
        self._instructions += block.instructions * execs

    def profile(self) -> CallBranchProfile:
        """The accumulated profile (call after the run completes)."""
        assert self._binary is not None, "profiler was never run"
        loops: Dict[int, LoopProfile] = {}
        for loop_id, meta in self._binary.loops.items():
            loops[loop_id] = LoopProfile(
                loop_id=loop_id,
                location=meta.location,
                source_name=meta.source_name,
                entries=self._loop_entries.get(loop_id, 0),
                iterations=self._loop_iterations.get(loop_id, 0),
            )
        return CallBranchProfile(
            binary_name=self._binary.name,
            procedure_entries=dict(self._proc_entries),
            loops=loops,
            total_instructions=self._instructions,
        )


def collect_call_branch_profile(
    binary: Binary,
    program_input: ProgramInput = REF_INPUT,
    *,
    cache: Optional[ProfileCache] = None,
    use_trace: Optional[bool] = None,
) -> CallBranchProfile:
    """Run a binary under the call-and-branch profiler.

    By default the profile is reduced from the compiled execution
    trace (:mod:`repro.execution.trace`) with bulk ``np.add.at``
    accumulation — bit-identical to the scalar Pin-tool run;
    ``use_trace=False`` (or ``REPRO_NO_TRACE=1``) forces the scalar
    oracle. With a cache (explicit or the process-wide one), the
    profile is memoized by ``(binary, input)`` content fingerprint.
    """
    replay = trace_replay_enabled(use_trace)
    cache = cache if cache is not None else active_cache()

    def compute() -> CallBranchProfile:
        if replay:
            from repro.execution.trace import (
                compiled_trace,
                replay_call_branch,
            )

            trace = compiled_trace(binary, program_input, cache=cache)
            return replay_call_branch(trace, binary)
        profiler = CallBranchProfiler()
        run_with_tools(binary, (profiler,), program_input)
        return profiler.profile()

    if cache is None:
        return compute()
    return cache.get_or_compute(
        "callbranch", (binary, program_input), compute
    )
