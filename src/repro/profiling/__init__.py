"""Profilers built on the execution engine.

* :mod:`repro.profiling.intervals` — the interval record shared by the
  fixed-length (FLI) and variable-length (VLI) pipelines;
* :mod:`repro.profiling.bbv` — basic block vector collection over
  fixed-length intervals (SimPoint's classic frontend, paper Section 2);
* :mod:`repro.profiling.callbranch` — the call-and-branch profile of
  paper Section 3.2.1: per-procedure entry counts, per-loop entry
  counts, and per-loop iteration counts, each tied to debug info.
"""

from repro.profiling.bbv import FixedLengthBBVCollector, collect_fli_bbvs
from repro.profiling.callbranch import (
    CallBranchProfile,
    CallBranchProfiler,
    LoopProfile,
    collect_call_branch_profile,
)
from repro.profiling.intervals import Interval

__all__ = [
    "FixedLengthBBVCollector",
    "collect_fli_bbvs",
    "CallBranchProfile",
    "CallBranchProfiler",
    "LoopProfile",
    "collect_call_branch_profile",
    "Interval",
]
