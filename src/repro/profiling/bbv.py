"""Basic block vector collection over fixed-length intervals (FLI).

This is the classic SimPoint frontend (paper Section 2): execution is
cut into contiguous intervals of exactly ``interval_size`` committed
instructions (the last interval may be short), and each interval's BBV
records, per static basic block, the entries times the block size.

Interval boundaries are placed at exact instruction counts — mid-block
if necessary, with the block's instructions split across the two
intervals, just as instruction-granular interval cutting does in real
PinPoints profiles.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compilation.binary import Binary, LLoop
from repro.errors import ProfilingError
from repro.execution.engine import ExecutionEngine
from repro.execution.events import (
    ExecutionConsumer,
    IterationProfile,
    iteration_profile,
)
from repro.profiling.intervals import Interval
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.runtime.cache import ProfileCache
from repro.runtime.config import active_cache, trace_replay_enabled


class FixedLengthBBVCollector(ExecutionConsumer):
    """Streams execution into fixed-length-interval BBVs."""

    def __init__(self, binary: Binary, interval_size: int) -> None:
        if interval_size <= 0:
            raise ProfilingError(
                f"interval_size must be positive, got {interval_size}"
            )
        self._binary = binary
        self._size = interval_size
        self._current: Dict[int, float] = {}
        self._current_instr = 0
        self._profiles: Dict[int, IterationProfile] = {}
        self.intervals: List[Interval] = []

    def _profile(self, loop: LLoop) -> IterationProfile:
        """Per-loop iteration profile, resolved once per collector."""
        profile = self._profiles.get(loop.loop_id)
        if profile is None:
            profile = iteration_profile(self._binary, loop)
            self._profiles[loop.loop_id] = profile
        return profile

    def _emit(self) -> None:
        self.intervals.append(
            Interval(
                index=len(self.intervals),
                instructions=self._current_instr,
                bbv=self._current,
            )
        )
        self._current = {}
        self._current_instr = 0

    def _attribute(self, block_id: int, instructions: int) -> None:
        """Attribute instructions to intervals, cutting at exact size."""
        bbv = self._current
        while instructions > 0:
            space = self._size - self._current_instr
            take = instructions if instructions < space else space
            bbv[block_id] = bbv.get(block_id, 0.0) + take
            self._current_instr += take
            instructions -= take
            if self._current_instr == self._size:
                self._emit()
                bbv = self._current

    def on_block(self, block_id: int, execs: int = 1) -> None:
        self._attribute(
            block_id, self._binary.blocks[block_id].instructions * execs
        )

    def on_iterations(self, loop: LLoop, iterations: int) -> None:
        profile = self._profile(loop)
        for block_id in profile.body_blocks:
            self._attribute(
                block_id,
                self._binary.blocks[block_id].instructions * iterations,
            )
        self._attribute(
            profile.branch_block, profile.branch_instructions * iterations
        )

    def finish(self) -> None:
        if self._current_instr > 0:
            self._emit()


def collect_fli_bbvs(
    binary: Binary,
    interval_size: int,
    program_input: ProgramInput = REF_INPUT,
    *,
    cache: Optional[ProfileCache] = None,
    use_trace: Optional[bool] = None,
) -> List[Interval]:
    """Profile a binary into fixed-length-interval BBVs.

    By default the profile is replayed from the compiled execution
    trace (:mod:`repro.execution.trace`), which is bit-identical to
    (and much faster than) the scalar event-stream collector;
    ``use_trace=False`` (or ``REPRO_NO_TRACE=1``) forces the scalar
    oracle. With a cache (explicit or the process-wide one), the
    profile is memoized by ``(binary, input, interval size)``
    fingerprint — the key is path-independent because both paths
    produce identical intervals.
    """
    replay = trace_replay_enabled(use_trace)
    cache = cache if cache is not None else active_cache()

    def compute() -> List[Interval]:
        if replay:
            from repro.execution.trace import compiled_trace, replay_fli

            trace = compiled_trace(binary, program_input, cache=cache)
            return replay_fli(trace, interval_size)
        collector = FixedLengthBBVCollector(binary, interval_size)
        ExecutionEngine(binary, program_input).run(collector)
        return collector.intervals

    if cache is None:
        return compute()
    return cache.get_or_compute(
        "fli", (binary, program_input, interval_size), compute
    )
