"""Table regeneration (the paper's Tables 1-3).

Table 1 is the memory-system configuration; Tables 2 and 3 compare the
largest phases' weights and biases across two binary versions of gcc
(32u vs 64u) and apsi (32o vs 64o) for both methods — the paper's
evidence that per-binary FLI biases swing between binaries while
mappable VLI biases stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.phases import PhaseRow, phase_table
from repro.cmpsim.config import MemoryConfig, TABLE1_CONFIG
from repro.experiments.runner import (
    BenchmarkRun,
    ExperimentConfig,
    run_benchmark,
)


@dataclass(frozen=True)
class Table1Row:
    """One row of the memory-system configuration table."""

    level: str
    capacity: str
    associativity: str
    line_size: str
    hit_latency: str
    policy: str


def table1_configuration(
    config: MemoryConfig = TABLE1_CONFIG,
) -> Tuple[Table1Row, ...]:
    """The paper's Table 1, from the live simulator configuration."""
    rows = []
    for level in config.levels:
        rows.append(
            Table1Row(
                level=level.name,
                capacity=f"{level.capacity // 1024}KB",
                associativity=f"{level.associativity}-way",
                line_size=f"{level.line_size} bytes",
                hit_latency=f"{level.hit_latency} cycles",
                policy="WriteBack" if level.writeback else "WriteThrough",
            )
        )
    rows.append(
        Table1Row(
            level="DRAM",
            capacity="-",
            associativity="-",
            line_size="-",
            hit_latency=f"{config.dram_latency} cycles",
            policy="-",
        )
    )
    return tuple(rows)


@dataclass(frozen=True)
class PhaseComparison:
    """A Tables-2/3-style phase comparison across two binaries."""

    benchmark: str
    binary_a: str
    binary_b: str
    vli_rows: Mapping[str, Tuple[PhaseRow, ...]]  # keyed by target label
    fli_rows: Mapping[str, Tuple[PhaseRow, ...]]

    def max_fli_bias_swing(self) -> float:
        """Largest |bias(A) - bias(B)| over FLI phase ranks."""
        return _max_swing(self.fli_rows[self.binary_a],
                          self.fli_rows[self.binary_b])

    def max_vli_bias_swing(self) -> float:
        """Largest |bias(A) - bias(B)| over matched VLI phases."""
        rows_a = {row.cluster: row for row in self.vli_rows[self.binary_a]}
        rows_b = {row.cluster: row for row in self.vli_rows[self.binary_b]}
        swings = [
            abs(rows_a[cluster].cpi_error - rows_b[cluster].cpi_error)
            for cluster in rows_a
            if cluster in rows_b
        ]
        return max(swings) if swings else 0.0


def _max_swing(
    rows_a: Tuple[PhaseRow, ...], rows_b: Tuple[PhaseRow, ...]
) -> float:
    swings = [
        abs(row_a.cpi_error - row_b.cpi_error)
        for row_a, row_b in zip(rows_a, rows_b)
    ]
    return max(swings) if swings else 0.0


def phase_comparison(
    benchmark: str,
    label_a: str,
    label_b: str,
    config: Optional[ExperimentConfig] = None,
    top: int = 3,
    run: Optional[BenchmarkRun] = None,
) -> PhaseComparison:
    """Build a phase-bias comparison for two binaries of one benchmark."""
    if run is None:
        run = run_benchmark(benchmark, config)
    vli_rows: Dict[str, Tuple[PhaseRow, ...]] = {}
    fli_rows: Dict[str, Tuple[PhaseRow, ...]] = {}
    vli_points = {
        point.cluster: point.interval_index
        for point in run.cross.mapped_points
    }
    for label in (label_a, label_b):
        outcome = run.outcome(label)
        vli_rows[label] = phase_table(
            labels=run.cross.simpoint.labels,
            interval_stats=outcome.vli_intervals,
            point_intervals=vli_points,
            weights=outcome.vli_weights,
            top=top,
        )
        fli_points = {
            point.cluster: point.interval_index
            for point in outcome.fli_simpoint.points
        }
        fli_rows[label] = phase_table(
            labels=outcome.fli_simpoint.labels,
            interval_stats=outcome.fli_intervals,
            point_intervals=fli_points,
            weights=None,
            top=top,
        )
    return PhaseComparison(
        benchmark=benchmark,
        binary_a=label_a,
        binary_b=label_b,
        vli_rows=vli_rows,
        fli_rows=fli_rows,
    )


def table2_gcc_phases(
    config: Optional[ExperimentConfig] = None,
    run: Optional[BenchmarkRun] = None,
) -> PhaseComparison:
    """Table 2: gcc, 32-bit unoptimized vs 64-bit unoptimized."""
    return phase_comparison("gcc", "32u", "64u", config, run=run)


def table3_apsi_phases(
    config: Optional[ExperimentConfig] = None,
    run: Optional[BenchmarkRun] = None,
) -> PhaseComparison:
    """Table 3: apsi, 32-bit optimized vs 64-bit optimized."""
    return phase_comparison("apsi", "32o", "64o", config, run=run)
