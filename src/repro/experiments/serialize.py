"""JSON serialization of experiment results.

Turns harness outputs into plain dictionaries (and JSON files) so
results can be archived, diffed across runs, or consumed by external
plotting tools. Only summaries are serialized — per-interval raw data
stays in memory (it is cheap to regenerate deterministically).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.experiments.design_space import DesignSpaceResult
from repro.experiments.figures import FigureData
from repro.experiments.runner import BenchmarkRun

PathLike = Union[str, Path]


def figure_to_dict(figure: FigureData) -> Dict[str, Any]:
    """A figure's series as a plain dictionary."""
    return {
        "figure": figure.figure,
        "title": figure.title,
        "unit": figure.unit,
        "benchmarks": list(figure.benchmarks),
        "series": {
            name: list(values) for name, values in figure.series.items()
        },
        "averages": {
            name: figure.average(name) for name in figure.series
        },
    }


def benchmark_run_to_dict(run: BenchmarkRun) -> Dict[str, Any]:
    """One benchmark run's summary as a plain dictionary."""
    match = run.cross.match_report
    outcomes = {}
    for label, outcome in run.outcomes.items():
        outcomes[label] = {
            "binary": outcome.binary_name,
            "instructions": outcome.stats.instructions,
            "cycles": outcome.stats.cycles,
            "true_cpi": outcome.true_cpi,
            "fli": {
                "n_points": outcome.fli_estimate.n_points,
                "estimated_cpi": outcome.fli_estimate.estimated_cpi,
                "cpi_error": outcome.fli_estimate.cpi_error,
            },
            "vli": {
                "n_points": outcome.vli_estimate.n_points,
                "estimated_cpi": outcome.vli_estimate.estimated_cpi,
                "cpi_error": outcome.vli_estimate.cpi_error,
                "weights": {
                    str(cluster): weight
                    for cluster, weight in sorted(
                        outcome.vli_weights.items()
                    )
                },
            },
        }
    return {
        "benchmark": run.name,
        "interval_size": run.config.interval_size,
        "primary": run.cross.primary_name,
        "mappable_points": run.cross.marker_set.n_points,
        "matching": {
            "procedures_matched": match.procedures_matched,
            "loop_entries_matched": match.loop_entries_matched,
            "loop_branches_matched": match.loop_branches_matched,
            "recovered_by_signature": match.loops_recovered_by_signature,
            "dropped_ambiguous": match.loops_dropped_ambiguous,
            **match.to_summary(),
        },
        "n_intervals": len(run.cross.intervals),
        "k": run.cross.simpoint.k,
        "outcomes": outcomes,
    }


def design_space_to_dict(result: DesignSpaceResult) -> Dict[str, Any]:
    """A design-space exploration as a plain dictionary."""
    return {
        "program": result.program,
        "points": [
            {
                "binary": point.binary_label,
                "architecture": point.architecture,
                "true_cycles": point.true_cycles,
                "fli_cycles": point.fli_cycles,
                "vli_cycles": point.vli_cycles,
            }
            for point in result.points
        ],
        "true_best": list(result.best_pair()),
        "fli_best": list(result.best_pair("fli")),
        "vli_best": list(result.best_pair("vli")),
    }


def save_json(data: Dict[str, Any], path: PathLike) -> Path:
    """Write a serialized result to disk; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a serialized result back."""
    return json.loads(Path(path).read_text())
