"""Plain-text rendering of figures and tables.

The benchmark harness prints the same rows/series the paper reports;
EXPERIMENTS.md records these renderings next to the paper's numbers.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from repro.experiments.figures import FigureData
from repro.experiments.tables import PhaseComparison, Table1Row


def _render_grid(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    all_rows = [list(header)] + [list(row) for row in rows]
    widths = [
        max(len(row[col]) for row in all_rows)
        for col in range(len(header))
    ]
    lines = []
    for index, row in enumerate(all_rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_figure(data: FigureData, precision: int = 3) -> str:
    """Render a figure's series as an aligned text table with averages."""
    series_names = list(data.series)
    header = ["benchmark"] + series_names
    rows: List[List[str]] = []
    for index, benchmark in enumerate(data.benchmarks):
        row = [benchmark]
        for name in series_names:
            row.append(f"{data.series[name][index]:.{precision}f}")
        rows.append(row)
    avg_row = ["Avg"] + [
        f"{data.average(name):.{precision}f}" for name in series_names
    ]
    rows.append(avg_row)
    return f"{data.title} ({data.unit})\n" + _render_grid(header, rows)


def render_table1(rows: Tuple[Table1Row, ...]) -> str:
    """Render the memory-system configuration table."""
    header = [
        "Cache Level", "Capacity", "Associativity", "Line Size",
        "Hit Latency", "Type",
    ]
    body = [
        [
            row.level, row.capacity, row.associativity,
            row.line_size, row.hit_latency, row.policy,
        ]
        for row in rows
    ]
    return "Memory System Configuration\n" + _render_grid(header, body)


def render_simulation_stats(stats, level_names=("L1D", "L2", "L3")) -> str:
    """One binary's memory-system statistics as an aligned table."""
    header = ["level", "accesses", "misses", "miss rate"]
    body = []
    for name, accesses, misses in zip(
        level_names, stats.level_accesses, stats.level_misses
    ):
        rate = misses / accesses if accesses else 0.0
        body.append([name, f"{accesses:,}", f"{misses:,}", f"{rate:.1%}"])
    body.append(["DRAM", f"{stats.dram_reads:,}",
                 f"{stats.dram_writebacks:,} wb", "-"])
    mpki = 1000.0 * stats.dram_reads / stats.instructions
    return (
        _render_grid(header, body)
        + f"\nrefs/instr {stats.memory_refs / stats.instructions:.3f}, "
          f"DRAM MPKI {mpki:.2f}"
    )


def render_cache_stats(stats) -> str:
    """Render a profile cache's hit/miss/traffic counters.

    ``stats`` is a :class:`repro.runtime.cache.CacheStats`.
    """
    header = ["lookups", "hits", "misses", "hit rate", "read", "written"]
    row = [
        f"{stats.lookups:,}",
        f"{stats.hits:,}",
        f"{stats.misses:,}",
        f"{stats.hit_rate:.1%}",
        f"{stats.bytes_read:,} B",
        f"{stats.bytes_written:,} B",
    ]
    return "Profile cache\n" + _render_grid(header, [row])


def render_phase_comparison(comparison: PhaseComparison) -> str:
    """Render a Tables-2/3-style phase comparison."""
    lines = [
        f"{comparison.benchmark}: phase comparison across "
        f"{comparison.binary_a} and {comparison.binary_b}"
    ]
    for method, rows_by_binary in (
        ("VLI", comparison.vli_rows),
        ("FLI", comparison.fli_rows),
    ):
        lines.append(f"\n[{method}]")
        header = ["binary", "phase", "weight", "true CPI", "SP CPI", "CPI err"]
        body = []
        for label, rows in rows_by_binary.items():
            for row in rows:
                body.append(
                    [
                        label,
                        str(row.rank),
                        f"{row.weight:.2f}",
                        f"{row.true_cpi:.2f}",
                        f"{row.sp_cpi:.2f}",
                        f"{row.cpi_error:+.1%}",
                    ]
                )
        lines.append(_render_grid(header, body))
    lines.append(
        f"\nmax bias swing: FLI {comparison.max_fli_bias_swing():.1%}, "
        f"VLI {comparison.max_vli_bias_swing():.1%}"
    )
    return "\n".join(lines)
