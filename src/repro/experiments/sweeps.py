"""Parameter-sweep utilities.

The ablation studies (interval size, cluster budget, early-point
tolerance) are useful beyond the benchmark harness — anyone adopting
the library will want to sweep these knobs on their own workloads.
This module provides them as first-class functions over the experiment
runner's cached results.

Design note: sweeps that only change *clustering* parameters (maxK,
early tolerance) re-cluster the primary profile and re-derive
estimates from the cached detailed-simulation statistics, so they cost
milliseconds; sweeps that change the *interval structure* (interval
size) must re-run the full experiment per setting. Those full
experiments consult the content-keyed sim-result cache
(:mod:`repro.cmpsim.simcache`) through the runner — on both the direct
and ``via_jobs`` paths — so a re-run sweep only re-simulates cells
whose inputs actually changed, and a warm sweep costs profiling plus
clustering only.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.analysis.estimate import estimate_from_points
from repro.cmpsim.simulator import IntervalStats
from repro.core.weights import phase_weights
from repro.errors import SimulationError
from repro.experiments.figures import pair_speedup_error
from repro.observability import trace
from repro.experiments.runner import (
    BenchmarkRun,
    ExperimentConfig,
    _benchmark_task,
    remember_run,
    run_benchmark,
)
from repro.runtime.cache import cache_from_root, merge_stats
from repro.runtime.config import active_cache, resolve_jobs
from repro.runtime.parallel import parallel_map
from repro.simpoint.early import run_early_simpoint
from repro.simpoint.simpoint import SimPointConfig, SimPointResult, run_simpoint


@dataclass(frozen=True)
class IntervalSizeSweepPoint:
    """One interval-size setting's outcomes."""

    interval_size: int
    n_intervals: int
    k: int
    fli_cpi_error: float
    vli_cpi_error: float
    fli_speedup_error: float
    vli_speedup_error: float


def sweep_interval_sizes(
    benchmark: str,
    sizes: Sequence[int],
    base_config: Optional[ExperimentConfig] = None,
    speedup_pair: Tuple[str, str] = ("32u", "32o"),
    *,
    jobs: Optional[int] = None,
    via_jobs=None,
) -> Dict[int, IntervalSizeSweepPoint]:
    """Run the full experiment at several interval sizes.

    Each size is an independent full experiment, so with ``jobs`` > 1
    the settings fan out over worker processes; finished runs land in
    the runner's in-process memo either way.

    ``via_jobs`` routes the cells through the persistent job service
    instead of a transient process pool: pass a
    :class:`~repro.jobs.queue.JobQueue` (or a queue directory path) and
    the cells are submitted as jobs, executed by a worker pool with
    per-job receipts, and — because submission is idempotent and
    receipts are exactly-once — an interrupted sweep rerun against the
    same queue resumes from its finished cells. Results are
    bit-identical to the direct path.
    """
    if not sizes:
        raise SimulationError("no interval sizes given")
    base_config = base_config or ExperimentConfig()
    results: Dict[int, IntervalSizeSweepPoint] = {}
    baseline, improved = speedup_pair
    runs_by_size: Dict[int, BenchmarkRun] = {}
    with trace.span(
        "sweep_interval_sizes", benchmark=benchmark, settings=len(sizes)
    ):
        if via_jobs is not None:
            from repro.jobs.queue import JobQueue
            from repro.jobs.service import run_sweep_via_jobs

            queue = (
                via_jobs
                if isinstance(via_jobs, JobQueue)
                else JobQueue(via_jobs)
            )
            runs_by_size = run_sweep_via_jobs(
                benchmark, sizes, base_config, queue, workers=jobs
            )
        elif resolve_jobs(jobs) > 1 and len(sizes) > 1:
            cache = active_cache()
            cache_root = cache.root if cache is not None else None
            task_results = parallel_map(
                _benchmark_task,
                [
                    (benchmark, replace(base_config, interval_size=size),
                     cache_root)
                    for size in sizes
                ],
                jobs=jobs,
            )
            merge_stats(cache, [stats for _, stats in task_results])
            for size, (run, _) in zip(sizes, task_results):
                remember_run(run)
                runs_by_size[size] = run
        for size in sizes:
            run = runs_by_size.get(size) or run_benchmark(
                benchmark, replace(base_config, interval_size=size),
                jobs=jobs,
            )
            fli = pair_speedup_error(run, "fli", baseline, improved)
            vli = pair_speedup_error(run, "vli", baseline, improved)
            results[size] = IntervalSizeSweepPoint(
                interval_size=size,
                n_intervals=len(run.cross.intervals),
                k=run.cross.simpoint.k,
                fli_cpi_error=run.average_cpi_error("fli"),
                vli_cpi_error=run.average_cpi_error("vli"),
                fli_speedup_error=fli.error,
                vli_speedup_error=vli.error,
            )
    return results


def _reestimate_vli(
    run: BenchmarkRun, simpoint_result: SimPointResult
) -> float:
    """Average VLI CPI error under an alternative clustering, from the
    run's cached detailed statistics."""
    errors = []
    for outcome in run.outcomes.values():
        counts = [stats.instructions for stats in outcome.vli_intervals]
        weights = phase_weights(counts, simpoint_result.labels)
        estimate = estimate_from_points(
            outcome.binary_name, "vli",
            [(point.interval_index, weights.get(point.cluster, 0.0))
             for point in simpoint_result.points],
            outcome.vli_intervals,
            IntervalStats(
                instructions=outcome.stats.instructions,
                cycles=outcome.stats.cycles,
            ),
        )
        errors.append(estimate.cpi_error)
    return sum(errors) / len(errors)


def _representation_error(
    run: BenchmarkRun, simpoint_result: SimPointResult
) -> float:
    """Instruction-weighted |interval CPI - representative CPI|."""
    representatives = {
        point.cluster: point.interval_index
        for point in simpoint_result.points
    }
    total_error = 0.0
    total_instructions = 0
    for outcome in run.outcomes.values():
        intervals = outcome.vli_intervals
        for label, interval in zip(simpoint_result.labels, intervals):
            representative_cpi = intervals[representatives[label]].cpi
            total_error += (
                abs(interval.cpi - representative_cpi)
                * interval.instructions
            )
            total_instructions += interval.instructions
    return total_error / total_instructions


@dataclass(frozen=True)
class MaxKSweepPoint:
    """One cluster-budget setting's outcomes."""

    max_k: int
    k: int
    cpi_error: float
    representation_error: float


def _recluster_task(task):
    """Worker: re-cluster one profile under one configuration."""
    intervals, config, cache_root, task_jobs = task
    cache = cache_from_root(cache_root)
    result = run_simpoint(
        list(intervals), config, jobs=task_jobs, cache=cache
    )
    return result, (cache.stats if cache is not None else None)


def sweep_max_k(
    run: BenchmarkRun,
    budgets: Sequence[int],
    *,
    jobs: Optional[int] = None,
) -> Dict[int, MaxKSweepPoint]:
    """Re-cluster a cached run's VLI profile under several budgets.

    The re-clusterings are independent, so with ``jobs`` > 1 they fan
    out over worker processes; a serial sweep instead hands the job
    budget to each clustering's own (k, restart) fan-out. Either way
    the content-keyed clustering cache is consulted per cell.
    """
    if not budgets:
        raise SimulationError("no budgets given")
    results: Dict[int, MaxKSweepPoint] = {}
    with trace.span("sweep_max_k", settings=len(budgets)):
        cache = active_cache()
        cache_root = cache.root if cache is not None else None
        fanned = min(resolve_jobs(jobs), len(budgets)) > 1
        task_jobs = 1 if fanned else jobs
        task_results = parallel_map(
            _recluster_task,
            [
                (run.cross.intervals, SimPointConfig(max_k=budget),
                 cache_root, task_jobs)
                for budget in budgets
            ],
            jobs=jobs,
        )
        merge_stats(cache, [stats for _, stats in task_results])
        simpoint_results = [result for result, _ in task_results]
    for budget, simpoint_result in zip(budgets, simpoint_results):
        results[budget] = MaxKSweepPoint(
            max_k=budget,
            k=simpoint_result.k,
            cpi_error=_reestimate_vli(run, simpoint_result),
            representation_error=_representation_error(
                run, simpoint_result
            ),
        )
    return results


@dataclass(frozen=True)
class EarlySweepPoint:
    """One early-tolerance setting's outcomes."""

    tolerance: float
    last_point_index: int
    cpi_error: float


def sweep_early_tolerance(
    run: BenchmarkRun,
    tolerances: Sequence[float],
    *,
    jobs: Optional[int] = None,
) -> Dict[float, EarlySweepPoint]:
    """Early-point tolerance sweep over a cached run's VLI profile."""
    if not tolerances:
        raise SimulationError("no tolerances given")
    intervals = list(run.cross.intervals)
    results: Dict[float, EarlySweepPoint] = {}
    with trace.span("sweep_early_tolerance", settings=len(tolerances)):
        for tolerance in tolerances:
            # Every tolerance reuses one cached clustering (the key is
            # tolerance-independent); only the first call clusters.
            early = run_early_simpoint(
                intervals, SimPointConfig(), tolerance=tolerance,
                jobs=jobs,
            )
            results[tolerance] = EarlySweepPoint(
                tolerance=tolerance,
                last_point_index=early.last_point_index,
                cpi_error=_reestimate_vli(run, early.result),
            )
    return results
