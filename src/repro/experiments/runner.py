"""Per-benchmark experiment orchestration.

For one benchmark, :func:`run_benchmark`:

1. builds the program and compiles the paper's four binaries
   (32u/32o/64u/64o);
2. runs the cross-binary pipeline (profiles, matching, primary-binary
   VLIs, SimPoint, mapping, per-binary weights);
3. runs per-binary FLI SimPoint on each binary;
4. runs **one detailed CMP$im simulation per binary** with both
   interval trackers attached, yielding the whole-run "true" statistics
   plus per-interval CPIs for both interval structures (equivalent to
   warm-fast-forward region simulation of every interval);
5. derives both methods' whole-program estimates per binary.

Results are cached in-process keyed by (benchmark, config), since every
figure and table consumes the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.analysis.estimate import MethodEstimate, estimate_from_points
from repro.cmpsim.config import MemoryConfig, TABLE1_CONFIG
from repro.cmpsim.simcache import cached_full_run
from repro.cmpsim.simulator import IntervalStats, SimulationStats
from repro.compilation.binary import Binary
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS, Target
from repro.core.pipeline import (
    CrossBinaryConfig,
    CrossBinaryResult,
    run_cross_binary_simpoint,
)
from repro.errors import SimulationError
from repro.observability import trace
from repro.observability.session import (
    current_session,
    record_bias,
    record_clustering,
    record_config,
    record_errors,
)
from repro.profiling.bbv import collect_fli_bbvs
from repro.profiling.intervals import Interval
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.programs.suite import build_benchmark
from repro.runtime.cache import cache_from_root, merge_stats
from repro.runtime.config import (
    active_cache,
    resolve_jobs,
    resolve_match_confidence,
)
from repro.runtime.parallel import parallel_map
from repro.simpoint.simpoint import SimPointConfig, SimPointResult, run_simpoint


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of the whole reproduction (defaults match DESIGN.md).

    ``match_confidence`` is the fuzzy marker-match acceptance
    threshold; ``None`` defers to ``REPRO_MATCH_CONFIDENCE`` / the
    process default (1.0 = exact matching only).
    """

    interval_size: int = 100_000
    simpoint: SimPointConfig = field(default_factory=SimPointConfig)
    memory: MemoryConfig = TABLE1_CONFIG
    program_input: ProgramInput = REF_INPUT
    targets: Tuple[Target, ...] = STANDARD_TARGETS
    primary_index: int = 0
    enable_signature_recovery: bool = True
    match_confidence: Optional[float] = None

    def cache_key(self) -> Tuple:
        # The memo key uses the *resolved* threshold, so a config left
        # at None keys on the effective environment/process default.
        return (
            self.interval_size,
            self.simpoint,
            self.memory,
            self.program_input,
            self.targets,
            self.primary_index,
            self.enable_signature_recovery,
            resolve_match_confidence(self.match_confidence),
        )


@dataclass(frozen=True)
class BinaryOutcome:
    """Everything measured for one binary of one benchmark."""

    target: Target
    binary_name: str
    stats: SimulationStats
    fli_intervals: Tuple[IntervalStats, ...]
    vli_intervals: Tuple[IntervalStats, ...]
    fli_simpoint: SimPointResult
    fli_estimate: MethodEstimate
    vli_estimate: MethodEstimate
    vli_weights: Mapping[int, float]

    @property
    def true_cpi(self) -> float:
        return self.stats.cpi

    @property
    def average_vli_interval_size(self) -> float:
        if not self.vli_intervals:
            raise SimulationError(f"{self.binary_name}: no VLI intervals")
        return self.stats.instructions / len(self.vli_intervals)


@dataclass(frozen=True)
class BenchmarkRun:
    """One benchmark's complete experiment output."""

    name: str
    config: ExperimentConfig
    cross: CrossBinaryResult
    outcomes: Mapping[str, BinaryOutcome]  # keyed by target label

    def outcome(self, label: str) -> BinaryOutcome:
        try:
            return self.outcomes[label]
        except KeyError:
            known = ", ".join(sorted(self.outcomes))
            raise SimulationError(
                f"{self.name}: no outcome for target {label!r}; "
                f"known: {known}"
            ) from None

    def average_fli_points(self) -> float:
        return sum(
            outcome.fli_simpoint.n_points for outcome in self.outcomes.values()
        ) / len(self.outcomes)

    def vli_points(self) -> int:
        """VLI point count (one clustering, shared by all binaries)."""
        return self.cross.simpoint.n_points

    def average_vli_interval_size(self) -> float:
        return sum(
            outcome.average_vli_interval_size
            for outcome in self.outcomes.values()
        ) / len(self.outcomes)

    def average_cpi_error(self, method: str) -> float:
        if method not in ("fli", "vli"):
            raise SimulationError(f"unknown method {method!r}")
        errors = []
        for outcome in self.outcomes.values():
            estimate = (
                outcome.fli_estimate if method == "fli" else outcome.vli_estimate
            )
            errors.append(estimate.cpi_error)
        return sum(errors) / len(errors)


_CACHE: Dict[Tuple, BenchmarkRun] = {}


def clear_cache() -> None:
    """Drop all cached benchmark runs (tests use this)."""
    _CACHE.clear()


def _fli_estimate(
    binary: Binary,
    intervals: Sequence[Interval],
    simpoint: SimPointResult,
    tracked: Sequence[IntervalStats],
    stats: SimulationStats,
) -> MethodEstimate:
    if len(tracked) != len(intervals):
        raise SimulationError(
            f"{binary.name}: FLI profile found {len(intervals)} intervals "
            f"but detailed simulation tracked {len(tracked)}"
        )
    point_weights = [
        (point.interval_index, point.weight) for point in simpoint.points
    ]
    true = IntervalStats(instructions=stats.instructions, cycles=stats.cycles)
    return estimate_from_points(
        binary.name, "fli", point_weights, tracked, true
    )


def _vli_estimate(
    binary: Binary,
    cross: CrossBinaryResult,
    tracked: Sequence[IntervalStats],
    stats: SimulationStats,
) -> MethodEstimate:
    expected = len(cross.intervals)
    if len(tracked) != expected:
        raise SimulationError(
            f"{binary.name}: expected {expected} mapped intervals, "
            f"tracked {len(tracked)}"
        )
    weights = cross.weights_for(binary.name)
    point_weights = [
        (point.interval_index, weights.get(point.cluster, 0.0))
        for point in cross.mapped_points
    ]
    true = IntervalStats(instructions=stats.instructions, cycles=stats.cycles)
    return estimate_from_points(
        binary.name, "vli", point_weights, tracked, true
    )


def _outcome_task(task):
    """Worker: one binary's full measurement (profile + detailed sim)."""
    target, binary, cross, config, cache_root, task_jobs = task
    cache = cache_from_root(cache_root)
    fli_profile = collect_fli_bbvs(
        binary, config.interval_size, config.program_input, cache=cache
    )
    # ``task_jobs`` is 1 when the per-binary pool itself fans out, so
    # the clustering stage's restart fan-out composes with the outer
    # pool instead of oversubscribing it.
    fli_simpoint = run_simpoint(
        fli_profile, config.simpoint, jobs=task_jobs, cache=cache
    )

    # The detailed simulation — the dominant repeated cost of a sweep —
    # is keyed by content and reused across runs whenever a cache is
    # active (the sim-cache knob can veto reuse without touching the
    # profiling caches above).
    tracked = cached_full_run(
        binary,
        memory=config.memory,
        program_input=config.program_input,
        fli_interval_size=config.interval_size,
        vli_table=cross.marker_set.table_for(binary.name),
        vli_boundaries=cross.boundaries,
        cache=cache,
    )
    stats = tracked.stats

    outcome = BinaryOutcome(
        target=target,
        binary_name=binary.name,
        stats=stats,
        fli_intervals=tracked.fli_intervals,
        vli_intervals=tracked.vli_intervals,
        fli_simpoint=fli_simpoint,
        fli_estimate=_fli_estimate(
            binary, fli_profile, fli_simpoint, tracked.fli_intervals, stats
        ),
        vli_estimate=_vli_estimate(
            binary, cross, tracked.vli_intervals, stats
        ),
        vli_weights=cross.weights_for(binary.name),
    )
    return outcome, (cache.stats if cache is not None else None)


def _annotate_session(run: BenchmarkRun) -> None:
    """Feed a finished run's provenance into the active observation
    session (chosen k + BIC trace per clustering, final error tables,
    and per-binary per-cluster bias tables). No-ops when no session is
    active."""
    record_clustering(
        f"{run.name}/cross:{run.cross.primary_name}",
        k=run.cross.simpoint.k,
        bic_scores=run.cross.simpoint.bic_scores,
        n_points=run.cross.simpoint.n_points,
    )
    for label, outcome in run.outcomes.items():
        record_clustering(
            f"{run.name}/fli:{outcome.binary_name}",
            k=outcome.fli_simpoint.k,
            bic_scores=outcome.fli_simpoint.bic_scores,
            n_points=outcome.fli_simpoint.n_points,
        )
        record_errors(
            f"{run.name}/{label}",
            {
                "fli_cpi_error": outcome.fli_estimate.cpi_error,
                "vli_cpi_error": outcome.vli_estimate.cpi_error,
            },
        )
    if current_session() is not None:
        _annotate_bias(run)


def _annotate_bias(run: BenchmarkRun) -> None:
    """Record both methods' per-cluster bias tables for every binary.

    This is the paper's Section 3 argument made observable: the same
    semantic phases measured on each binary, with FLI biases free to
    swing between binaries while VLI biases should stay put — so the
    run ledger's differ can flag a bias-consistency regression like
    any other drift.
    """
    from repro.analysis.phases import phase_table

    vli_points = {
        point.cluster: point.interval_index
        for point in run.cross.mapped_points
    }
    for outcome in run.outcomes.values():
        fli_points = {
            point.cluster: point.interval_index
            for point in outcome.fli_simpoint.points
        }
        for method, labels, stats, point_intervals, weights in (
            (
                "fli",
                outcome.fli_simpoint.labels,
                outcome.fli_intervals,
                fli_points,
                None,
            ),
            (
                "vli",
                run.cross.simpoint.labels,
                outcome.vli_intervals,
                vli_points,
                outcome.vli_weights,
            ),
        ):
            try:
                rows = phase_table(
                    labels,
                    stats,
                    point_intervals,
                    weights=weights,
                    top=len(point_intervals) or 1,
                )
            except SimulationError:
                # Bias tables are an annotation, never a reason to
                # fail the run (degenerate clusterings can lack a
                # representative for an empty cluster).
                continue
            record_bias(
                f"{run.name}/{method}:{outcome.binary_name}",
                {
                    row.cluster: {
                        "weight": row.weight,
                        "true_cpi": row.true_cpi,
                        "sp_cpi": row.sp_cpi,
                        "bias": row.cpi_error,
                    }
                    for row in rows
                },
            )


def remember_run(run: BenchmarkRun) -> None:
    """Install a run (e.g. computed in a worker) in the in-process memo."""
    _CACHE[(run.name, run.config.cache_key())] = run
    _annotate_session(run)


def run_benchmark(
    name: str,
    config: Optional[ExperimentConfig] = None,
    *,
    jobs: Optional[int] = None,
) -> BenchmarkRun:
    """Run (or fetch from cache) the full experiment for one benchmark.

    Independent per-binary work — call-branch profiling, weight
    re-measurement, FLI profiling, and the detailed simulations — fans
    out over ``jobs`` worker processes (default: the runtime
    configuration; serial unless configured otherwise). Results are
    bit-identical to a serial run.
    """
    config = config or ExperimentConfig()
    key = (name, config.cache_key())
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    record_config(config.cache_key())

    with trace.span("build", benchmark=name):
        program = build_benchmark(name)
        binaries = compile_standard_binaries(program, config.targets)
        ordered = [binaries[target] for target in config.targets]

    with trace.span("cross_binary", benchmark=name):
        cross = run_cross_binary_simpoint(
            ordered,
            CrossBinaryConfig(
                interval_size=config.interval_size,
                simpoint=config.simpoint,
                program_input=config.program_input,
                primary_index=config.primary_index,
                enable_signature_recovery=config.enable_signature_recovery,
                match_confidence=config.match_confidence,
            ),
            jobs=jobs,
        )

    with trace.span("outcomes", benchmark=name):
        cache = active_cache()
        cache_root = cache.root if cache is not None else None
        # When the per-binary pool fans out, each worker clusters
        # serially (nested jobs = 1); when it runs serially, the
        # clustering stage gets the whole job budget instead.
        fanned = min(resolve_jobs(jobs), len(config.targets)) > 1
        task_jobs = 1 if fanned else jobs
        results = parallel_map(
            _outcome_task,
            [
                (target, binaries[target], cross, config, cache_root,
                 task_jobs)
                for target in config.targets
            ],
            jobs=jobs,
        )
        merge_stats(cache, [stats for _, stats in results])
        outcomes: Dict[str, BinaryOutcome] = {
            target.label: outcome
            for target, (outcome, _) in zip(config.targets, results)
        }

    run = BenchmarkRun(
        name=name, config=config, cross=cross, outcomes=outcomes
    )
    _annotate_session(run)
    _CACHE[key] = run
    return run


def _benchmark_task(task):
    """Worker: one benchmark's full experiment (nested fan-out is
    suppressed inside workers, so this runs serially there)."""
    name, config, cache_root = task
    cache = cache_from_root(cache_root)
    if cache is not None:
        from repro.runtime.config import runtime_session

        with runtime_session(cache=cache):
            run = run_benchmark(name, config)
    else:
        run = run_benchmark(name, config)
    return run, (cache.stats if cache is not None else None)


def run_suite(
    names: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    progress: bool = False,
    *,
    jobs: Optional[int] = None,
) -> Dict[str, BenchmarkRun]:
    """Run the experiment for several benchmarks.

    With ``jobs`` > 1 the benchmarks themselves fan out over worker
    processes (each worker runs its benchmark serially); finished runs
    are installed in the in-process memo so later sweeps reuse them.
    """
    from repro.runtime.config import resolve_jobs

    runs: Dict[str, BenchmarkRun] = {}
    pending = []
    for name in names:
        key = (name, (config or ExperimentConfig()).cache_key())
        if key in _CACHE:
            runs[name] = _CACHE[key]
        else:
            pending.append(name)
    if pending and resolve_jobs(jobs) > 1:
        if progress:
            for name in pending:
                print(f"[repro] running {name} ...", flush=True)
        cache = active_cache()
        cache_root = cache.root if cache is not None else None
        results = parallel_map(
            _benchmark_task,
            [(name, config, cache_root) for name in pending],
            jobs=jobs,
        )
        merge_stats(cache, [stats for _, stats in results])
        for run, _ in results:
            remember_run(run)
            runs[run.name] = run
    else:
        for name in pending:
            if progress:
                print(f"[repro] running {name} ...", flush=True)
            runs[name] = run_benchmark(name, config, jobs=jobs)
    return {name: runs[name] for name in names}
