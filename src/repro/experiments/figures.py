"""Figure regeneration (the paper's Figures 1-5).

Every function takes the per-benchmark runs (from
:func:`repro.experiments.runner.run_suite`) and returns a
:class:`FigureData`: named series over the benchmark axis, plus the
suite average — the same bars the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.analysis.speedup import SpeedupComparison, speedup_comparison
from repro.errors import SimulationError
from repro.experiments.runner import BenchmarkRun


@dataclass(frozen=True)
class FigureData:
    """One figure: named series over the benchmark axis."""

    figure: str
    title: str
    unit: str
    benchmarks: Tuple[str, ...]
    series: Mapping[str, Tuple[float, ...]]

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.benchmarks):
                raise SimulationError(
                    f"{self.figure}: series {name!r} has {len(values)} "
                    f"values for {len(self.benchmarks)} benchmarks"
                )

    def average(self, series_name: str) -> float:
        values = self.series[series_name]
        return sum(values) / len(values)

    def value(self, series_name: str, benchmark: str) -> float:
        index = self.benchmarks.index(benchmark)
        return self.series[series_name][index]


def _ordered(runs: Mapping[str, BenchmarkRun]) -> Sequence[BenchmarkRun]:
    return [runs[name] for name in runs]


def figure1_number_of_simpoints(
    runs: Mapping[str, BenchmarkRun],
) -> FigureData:
    """Figure 1: number of simulation points, per-binary FLI vs mappable VLI.

    FLI bars average the four per-binary clusterings; VLI has a single
    clustering shared by all binaries.
    """
    ordered = _ordered(runs)
    return FigureData(
        figure="figure1",
        title="Number of SimPoints (FLI vs VLI, avg across 4 binaries)",
        unit="simulation points",
        benchmarks=tuple(run.name for run in ordered),
        series={
            "FLI": tuple(run.average_fli_points() for run in ordered),
            "VLI": tuple(float(run.vli_points()) for run in ordered),
        },
    )


def figure2_interval_sizes(runs: Mapping[str, BenchmarkRun]) -> FigureData:
    """Figure 2: average VLI interval size (FLI is fixed at the target).

    Mapped intervals shrink in binaries that execute fewer instructions
    than the primary, and grow where mappable markers are sparse
    (applu's optimized solver region is the paper's outlier).
    """
    ordered = _ordered(runs)
    return FigureData(
        figure="figure2",
        title="Average interval size for mappable SimPoint (VLI)",
        unit="instructions",
        benchmarks=tuple(run.name for run in ordered),
        series={
            "VLI": tuple(
                run.average_vli_interval_size() for run in ordered
            ),
            "FLI (fixed)": tuple(
                float(run.config.interval_size) for run in ordered
            ),
        },
    )


def figure3_cpi_error(runs: Mapping[str, BenchmarkRun]) -> FigureData:
    """Figure 3: relative CPI error vs full simulation, per method."""
    ordered = _ordered(runs)
    return FigureData(
        figure="figure3",
        title="CPI error (avg across 4 binaries)",
        unit="relative error",
        benchmarks=tuple(run.name for run in ordered),
        series={
            "FLI": tuple(run.average_cpi_error("fli") for run in ordered),
            "VLI": tuple(run.average_cpi_error("vli") for run in ordered),
        },
    )


def pair_speedup_error(
    run: BenchmarkRun, method: str, baseline: str, improved: str
) -> SpeedupComparison:
    """Speedup comparison for one binary pair under one method."""
    outcome_a = run.outcome(baseline)
    outcome_b = run.outcome(improved)
    if method == "fli":
        return speedup_comparison(
            outcome_a.fli_estimate, outcome_b.fli_estimate
        )
    if method == "vli":
        return speedup_comparison(
            outcome_a.vli_estimate, outcome_b.vli_estimate
        )
    raise SimulationError(f"unknown method {method!r}")


def _speedup_figure(
    runs: Mapping[str, BenchmarkRun],
    figure: str,
    title: str,
    pairs: Sequence[Tuple[str, str]],
) -> FigureData:
    ordered = _ordered(runs)
    series: Dict[str, Tuple[float, ...]] = {}
    for baseline, improved in pairs:
        for method in ("fli", "vli"):
            key = f"{method}_{baseline}{improved}"
            series[key] = tuple(
                pair_speedup_error(run, method, baseline, improved).error
                for run in ordered
            )
    return FigureData(
        figure=figure,
        title=title,
        unit="relative speedup error",
        benchmarks=tuple(run.name for run in ordered),
        series=series,
    )


def figure4_speedup_error_same_platform(
    runs: Mapping[str, BenchmarkRun],
) -> FigureData:
    """Figure 4: speedup error across optimization levels, same platform.

    Pairs: 32-bit unoptimized -> 32-bit optimized, and 64-bit
    unoptimized -> 64-bit optimized.
    """
    return _speedup_figure(
        runs,
        "figure4",
        "Speedup error, same platform (32u->32o, 64u->64o)",
        pairs=(("32u", "32o"), ("64u", "64o")),
    )


def figure5_speedup_error_cross_platform(
    runs: Mapping[str, BenchmarkRun],
) -> FigureData:
    """Figure 5: speedup error across platforms, same optimization level.

    Pairs: 32-bit unoptimized -> 64-bit unoptimized, and 32-bit
    optimized -> 64-bit optimized.
    """
    return _speedup_figure(
        runs,
        "figure5",
        "Speedup error, cross platform (32u->64u, 32o->64o)",
        pairs=(("32u", "64u"), ("32o", "64o")),
    )
