"""Experiment harness: regenerates every exhibit of the paper.

* :mod:`repro.experiments.runner` — per-benchmark orchestration: build
  the four standard binaries, run the per-binary FLI pipeline and the
  cross-binary VLI pipeline, run detailed simulation once per binary
  with both interval trackers attached, and derive both methods'
  estimates;
* :mod:`repro.experiments.figures` — Figures 1-5;
* :mod:`repro.experiments.tables` — Tables 1-3;
* :mod:`repro.experiments.reporting` — plain-text rendering of the
  exhibits (what EXPERIMENTS.md records).
"""

from repro.experiments.design_space import (
    ArchitecturePoint,
    DesignPoint,
    DesignSpaceResult,
    STANDARD_DESIGN_SPACE,
    explore_design_space,
    render_design_space,
)
from repro.experiments.figures import (
    FigureData,
    figure1_number_of_simpoints,
    figure2_interval_sizes,
    figure3_cpi_error,
    figure4_speedup_error_same_platform,
    figure5_speedup_error_cross_platform,
)
from repro.experiments.runner import (
    BenchmarkRun,
    BinaryOutcome,
    ExperimentConfig,
    run_benchmark,
    run_suite,
)
from repro.experiments.sweeps import (
    sweep_early_tolerance,
    sweep_interval_sizes,
    sweep_max_k,
)
from repro.experiments.tables import (
    PhaseComparison,
    table1_configuration,
    table2_gcc_phases,
    table3_apsi_phases,
)

__all__ = [
    "ArchitecturePoint",
    "DesignPoint",
    "DesignSpaceResult",
    "STANDARD_DESIGN_SPACE",
    "explore_design_space",
    "render_design_space",
    "FigureData",
    "figure1_number_of_simpoints",
    "figure2_interval_sizes",
    "figure3_cpi_error",
    "figure4_speedup_error_same_platform",
    "figure5_speedup_error_cross_platform",
    "BenchmarkRun",
    "BinaryOutcome",
    "ExperimentConfig",
    "run_benchmark",
    "run_suite",
    "sweep_early_tolerance",
    "sweep_interval_sizes",
    "sweep_max_k",
    "PhaseComparison",
    "table1_configuration",
    "table2_gcc_phases",
    "table3_apsi_phases",
]
