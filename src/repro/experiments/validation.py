"""Claim-by-claim validation of the reproduction.

Each of the paper's qualitative claims is encoded as a checkable
predicate over the measured results; :func:`validate_reproduction`
evaluates them all and reports a verdict per claim — the programmatic
version of EXPERIMENTS.md, runnable as ``python -m repro validate``.

Claims that need specific benchmarks (applu for Figure 2's outlier,
gcc/apsi for the tables) are skipped, not failed, when those benchmarks
are absent from the run set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Mapping, Tuple

from repro.experiments.figures import (
    figure1_number_of_simpoints,
    figure2_interval_sizes,
    figure3_cpi_error,
    figure4_speedup_error_same_platform,
    figure5_speedup_error_cross_platform,
)
from repro.experiments.runner import BenchmarkRun
from repro.experiments.tables import table2_gcc_phases, table3_apsi_phases


class Verdict(enum.Enum):
    PASS = "PASS"
    FAIL = "FAIL"
    SKIP = "SKIP"


@dataclass(frozen=True)
class ClaimResult:
    """One paper claim's verdict."""

    claim: str
    description: str
    verdict: Verdict
    details: str


def _check_figure1(runs: Mapping[str, BenchmarkRun]) -> ClaimResult:
    data = figure1_number_of_simpoints(runs)
    fli, vli = data.average("FLI"), data.average("VLI")
    ok = abs(fli - vli) <= 2.0 and fli <= 10 and vli <= 10
    return ClaimResult(
        claim="figure1",
        description="FLI and VLI select a similar number of SimPoints",
        verdict=Verdict.PASS if ok else Verdict.FAIL,
        details=f"avg FLI {fli:.2f}, avg VLI {vli:.2f}",
    )


def _check_figure2(runs: Mapping[str, BenchmarkRun]) -> ClaimResult:
    if "applu" not in runs:
        return ClaimResult(
            "figure2", "applu is the VLI interval-size outlier",
            Verdict.SKIP, "applu not in run set",
        )
    data = figure2_interval_sizes(runs)
    sizes = dict(zip(data.benchmarks, data.series["VLI"]))
    applu = sizes.pop("applu")
    others = max(sizes.values()) if sizes else 0.0
    ok = not sizes or applu >= 1.5 * others
    return ClaimResult(
        claim="figure2",
        description="applu is the VLI interval-size outlier "
                    "(unmappable inlined solver)",
        verdict=Verdict.PASS if ok else Verdict.FAIL,
        details=f"applu {applu:,.0f} vs largest other {others:,.0f}",
    )


def _check_figure3(runs: Mapping[str, BenchmarkRun]) -> ClaimResult:
    data = figure3_cpi_error(runs)
    fli, vli = data.average("FLI"), data.average("VLI")
    ok = fli <= 0.10 and vli <= 0.10
    return ClaimResult(
        claim="figure3",
        description="both methods estimate per-binary CPI accurately",
        verdict=Verdict.PASS if ok else Verdict.FAIL,
        details=f"avg CPI error: FLI {fli:.1%}, VLI {vli:.1%}",
    )


def _check_speedups(
    runs: Mapping[str, BenchmarkRun], figure: str
) -> ClaimResult:
    if figure == "figure4":
        data = figure4_speedup_error_same_platform(runs)
        pairs = ("32u32o", "64u64o")
        description = (
            "VLI speedup error < FLI, same platform (32u->32o, 64u->64o)"
        )
    else:
        data = figure5_speedup_error_cross_platform(runs)
        pairs = ("32u64u", "32o64o")
        description = (
            "VLI speedup error < FLI, cross platform (32u->64u, 32o->64o)"
        )
    details = []
    ok = True
    for pair in pairs:
        fli = data.average(f"fli_{pair}")
        vli = data.average(f"vli_{pair}")
        ok = ok and vli < fli
        details.append(f"{pair}: FLI {fli:.1%} vs VLI {vli:.1%}")
    return ClaimResult(
        claim=figure,
        description=description,
        verdict=Verdict.PASS if ok else Verdict.FAIL,
        details="; ".join(details),
    )


def _check_table(
    runs: Mapping[str, BenchmarkRun], claim: str
) -> ClaimResult:
    benchmark = "gcc" if claim == "table2" else "apsi"
    if benchmark not in runs:
        return ClaimResult(
            claim, f"{benchmark} phase biases: FLI swings, VLI consistent",
            Verdict.SKIP, f"{benchmark} not in run set",
        )
    if claim == "table2":
        comparison = table2_gcc_phases(run=runs["gcc"])
    else:
        comparison = table3_apsi_phases(run=runs["apsi"])
    fli_swing = comparison.max_fli_bias_swing()
    vli_swing = comparison.max_vli_bias_swing()
    ok = vli_swing < fli_swing
    return ClaimResult(
        claim=claim,
        description=f"{benchmark} phase biases: FLI swings across "
                    f"binaries, VLI stays consistent",
        verdict=Verdict.PASS if ok else Verdict.FAIL,
        details=f"max bias swing: FLI {fli_swing:.1%}, VLI {vli_swing:.1%}",
    )


def validate_reproduction(
    runs: Mapping[str, BenchmarkRun],
) -> Tuple[ClaimResult, ...]:
    """Evaluate every encoded paper claim over the given runs."""
    return (
        _check_figure1(runs),
        _check_figure2(runs),
        _check_figure3(runs),
        _check_speedups(runs, "figure4"),
        _check_speedups(runs, "figure5"),
        _check_table(runs, "table2"),
        _check_table(runs, "table3"),
    )


def render_validation(results: Tuple[ClaimResult, ...]) -> str:
    """Human-readable validation report."""
    lines = ["reproduction validation", "=" * 23]
    for result in results:
        lines.append(
            f"[{result.verdict.value}] {result.claim}: "
            f"{result.description}"
        )
        lines.append(f"       {result.details}")
    failed = sum(1 for r in results if r.verdict is Verdict.FAIL)
    passed = sum(1 for r in results if r.verdict is Verdict.PASS)
    skipped = sum(1 for r in results if r.verdict is Verdict.SKIP)
    lines.append(
        f"\n{passed} passed, {failed} failed, {skipped} skipped"
    )
    return "\n".join(lines)
