"""Design-space exploration over (binary, architecture) pairs.

The paper's introduction motivates cross-binary sampling with exactly
this task: "these issues ... are especially important when determining
which (binary, architecture) pair performs the best." This module
builds that experiment:

* a small architecture design space (the paper's Table 1 system, a
  4 MB-LLC variant, and a next-line-prefetch variant);
* for one program: the four standard binaries x every architecture,
  each simulated in detail once with both interval trackers attached;
* per method (per-binary FLI vs mappable VLI), the estimated cycle
  count of every design point, the implied ranking, and the pairwise
  comparison error against the true ranking.

The clustering work is architecture-independent, so the cross-binary
pipeline and the per-binary FLI SimPoints are computed once and reused
across the whole design space — which is precisely how the technique
would be used in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.estimate import MethodEstimate, estimate_from_points
from repro.cmpsim.config import (
    BIG_LLC_CONFIG,
    MemoryConfig,
    PREFETCH_CONFIG,
    TABLE1_CONFIG,
)
from repro.cmpsim.simulator import CMPSim, FLITracker, IntervalStats, VLITracker
from repro.compilation.binary import Binary
from repro.compilation.compiler import compile_standard_binaries
from repro.compilation.targets import STANDARD_TARGETS, Target
from repro.core.pipeline import CrossBinaryConfig, run_cross_binary_simpoint
from repro.errors import SimulationError
from repro.profiling.bbv import collect_fli_bbvs
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.programs.suite import build_benchmark
from repro.simpoint.simpoint import SimPointConfig, run_simpoint


@dataclass(frozen=True)
class ArchitecturePoint:
    """One architecture of the design space."""

    name: str
    memory: MemoryConfig


#: The default three-point architecture space.
STANDARD_DESIGN_SPACE: Tuple[ArchitecturePoint, ...] = (
    ArchitecturePoint("table1", TABLE1_CONFIG),
    ArchitecturePoint("big-llc", BIG_LLC_CONFIG),
    ArchitecturePoint("prefetch", PREFETCH_CONFIG),
)


@dataclass(frozen=True)
class DesignPoint:
    """One (binary, architecture) pair's true and estimated cycles."""

    binary_label: str
    architecture: str
    true_cycles: float
    fli_cycles: float
    vli_cycles: float

    def estimated_cycles(self, method: str) -> float:
        if method == "fli":
            return self.fli_cycles
        if method == "vli":
            return self.vli_cycles
        raise SimulationError(f"unknown method {method!r}")


@dataclass(frozen=True)
class DesignSpaceResult:
    """The whole exploration for one program."""

    program: str
    points: Tuple[DesignPoint, ...]

    def ranking(self, method: Optional[str] = None) -> Tuple[Tuple[str, str], ...]:
        """(binary, architecture) pairs, best (fewest cycles) first.

        ``method`` ``None`` ranks by true cycles; ``"fli"``/``"vli"``
        rank by the method's estimates.
        """
        def key(point: DesignPoint) -> float:
            if method is None:
                return point.true_cycles
            return point.estimated_cycles(method)

        ordered = sorted(self.points, key=key)
        return tuple(
            (point.binary_label, point.architecture) for point in ordered
        )

    def best_pair(self, method: Optional[str] = None) -> Tuple[str, str]:
        return self.ranking(method)[0]

    def pairwise_comparison_error(self, method: str) -> float:
        """Mean relative error over all design-point cycle ratios.

        For every unordered pair of design points, compare the true
        cycle ratio with the estimated one — the design-exploration
        generalization of the paper's speedup error.
        """
        errors: List[float] = []
        for i, a in enumerate(self.points):
            for b in self.points[i + 1:]:
                true_ratio = a.true_cycles / b.true_cycles
                est_ratio = (
                    a.estimated_cycles(method) / b.estimated_cycles(method)
                )
                errors.append(abs(true_ratio - est_ratio) / true_ratio)
        if not errors:
            raise SimulationError("need at least two design points")
        return sum(errors) / len(errors)

    def cross_binary_error(self, method: str, architecture: str) -> float:
        """Mean speedup error across binaries, within one architecture.

        This is the comparison the paper's consistent-bias argument is
        about: different binaries, same machine. (Cross-architecture
        comparisons of the *same* binary stress a different property —
        how representative a single interval stays when the memory
        system changes — which neither method guarantees.)
        """
        subset = [
            point for point in self.points
            if point.architecture == architecture
        ]
        if len(subset) < 2:
            raise SimulationError(
                f"architecture {architecture!r} has fewer than two points"
            )
        errors: List[float] = []
        for i, a in enumerate(subset):
            for b in subset[i + 1:]:
                true_ratio = a.true_cycles / b.true_cycles
                est_ratio = (
                    a.estimated_cycles(method) / b.estimated_cycles(method)
                )
                errors.append(abs(true_ratio - est_ratio) / true_ratio)
        return sum(errors) / len(errors)


def explore_design_space(
    benchmark: str,
    architectures: Sequence[ArchitecturePoint] = STANDARD_DESIGN_SPACE,
    targets: Tuple[Target, ...] = STANDARD_TARGETS,
    interval_size: int = 100_000,
    simpoint: Optional[SimPointConfig] = None,
    program_input: ProgramInput = REF_INPUT,
) -> DesignSpaceResult:
    """Run the full (binary x architecture) exploration for a benchmark."""
    if len(architectures) < 1:
        raise SimulationError("need at least one architecture")
    names = [arch.name for arch in architectures]
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate architecture names: {names}")
    simpoint = simpoint or SimPointConfig()

    program = build_benchmark(benchmark)
    binaries = compile_standard_binaries(program, targets)
    ordered: List[Binary] = [binaries[target] for target in targets]

    # Architecture-independent work: one cross-binary pipeline, one
    # per-binary FLI SimPoint per binary.
    cross = run_cross_binary_simpoint(
        ordered,
        CrossBinaryConfig(
            interval_size=interval_size,
            simpoint=simpoint,
            program_input=program_input,
        ),
    )
    fli_simpoints = {}
    for binary in ordered:
        profile = collect_fli_bbvs(binary, interval_size, program_input)
        fli_simpoints[binary.name] = run_simpoint(profile, simpoint)

    points: List[DesignPoint] = []
    for target in targets:
        binary = binaries[target]
        fli_simpoint = fli_simpoints[binary.name]
        vli_weights = cross.weights_for(binary.name)
        for arch in architectures:
            fli_tracker = FLITracker(interval_size)
            vli_tracker = VLITracker(
                cross.marker_set.table_for(binary.name), cross.boundaries
            )
            sim = CMPSim(binary, arch.memory, program_input)
            stats = sim.run_full(
                trackers=(fli_tracker, vli_tracker)
            ).stats
            true = IntervalStats(
                instructions=stats.instructions, cycles=stats.cycles
            )
            fli_estimate = estimate_from_points(
                binary.name, "fli",
                [(p.interval_index, p.weight)
                 for p in fli_simpoint.points],
                fli_tracker.intervals, true,
            )
            vli_estimate = estimate_from_points(
                binary.name, "vli",
                [(p.interval_index, vli_weights.get(p.cluster, 0.0))
                 for p in cross.mapped_points],
                vli_tracker.intervals, true,
            )
            points.append(
                DesignPoint(
                    binary_label=target.label,
                    architecture=arch.name,
                    true_cycles=stats.cycles,
                    fli_cycles=fli_estimate.estimated_cycles,
                    vli_cycles=vli_estimate.estimated_cycles,
                )
            )
    return DesignSpaceResult(program=benchmark, points=tuple(points))


def render_design_space(result: DesignSpaceResult) -> str:
    """Text table of the exploration, best true pair first."""
    lines = [
        f"design space for {result.program} "
        f"({len(result.points)} (binary, architecture) points)",
        f"{'binary':<7} {'arch':<9} {'true cycles':>14} "
        f"{'FLI est':>14} {'VLI est':>14}",
    ]
    for point in sorted(result.points, key=lambda p: p.true_cycles):
        lines.append(
            f"{point.binary_label:<7} {point.architecture:<9} "
            f"{point.true_cycles:>14,.0f} {point.fli_cycles:>14,.0f} "
            f"{point.vli_cycles:>14,.0f}"
        )
    lines.append(
        f"true best: {result.best_pair()} | "
        f"FLI best: {result.best_pair('fli')} | "
        f"VLI best: {result.best_pair('vli')}"
    )
    lines.append(
        f"pairwise comparison error: "
        f"FLI {result.pairwise_comparison_error('fli'):.2%}, "
        f"VLI {result.pairwise_comparison_error('vli'):.2%}"
    )
    return "\n".join(lines)
