"""PinPoints-style tool chain and file formats.

The paper drives CMP$im with "PinPoints files": the output of running
a BBV profiler and SimPoint 3.0 over a binary. This package provides
the same artifacts:

* :mod:`repro.pinpoints.files` — read/write the classic ``.simpoints``
  and ``.weights`` text formats, plus a region file carrying
  cross-binary ``(marker, count)`` coordinates;
* :mod:`repro.pinpoints.toolchain` — one-call generation of the files
  for a binary (per-binary FLI flavour) or for a binary set
  (cross-binary VLI flavour).
"""

from repro.pinpoints.files import (
    read_regions,
    read_simpoints,
    read_weights,
    write_regions,
    write_simpoints,
    write_weights,
)
from repro.pinpoints.markers_io import read_marker_set, write_marker_set
from repro.pinpoints.toolchain import (
    PinPointsPackage,
    generate_cross_binary_pinpoints,
    generate_pinpoints,
)

__all__ = [
    "read_regions",
    "read_simpoints",
    "read_weights",
    "write_regions",
    "write_simpoints",
    "write_weights",
    "read_marker_set",
    "write_marker_set",
    "PinPointsPackage",
    "generate_cross_binary_pinpoints",
    "generate_pinpoints",
]
