"""PinPoints/SimPoint file formats.

``.simpoints`` and ``.weights`` follow the classic SimPoint 3.0 layout:
one line per simulation point, ``<value> <cluster id>``, where the
value is the interval index (simpoints) or the phase weight (weights).

The regions format is this library's cross-binary extension: each line
carries a simulation point's cluster, interval index, and start/end
execution coordinates (``-`` for program start/exit), so the same file
drives region simulation of *any* binary in the matched set:

    # repro cross-binary regions v1
    region <cluster> <interval> <start_marker> <start_count> \
<end_marker> <end_count> <weight>
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.mapping import MappedSimulationPoint
from repro.core.markers import ExecutionCoordinate
from repro.errors import FileFormatError
from repro.simpoint.simpoint import SimPointResult, SimulationPoint

_REGIONS_HEADER = "# repro cross-binary regions v1"

PathLike = Union[str, Path]


def write_simpoints(path: PathLike, result: SimPointResult) -> None:
    """Write a ``.simpoints`` file (interval index + cluster per line)."""
    lines = [
        f"{point.interval_index} {point.cluster}" for point in result.points
    ]
    Path(path).write_text("\n".join(lines) + "\n")


def read_simpoints(path: PathLike) -> List[Tuple[int, int]]:
    """Read a ``.simpoints`` file as ``(interval index, cluster)`` pairs."""
    pairs = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise FileFormatError(
                f"{path}:{lineno}: expected 'interval cluster', got {line!r}"
            )
        try:
            pairs.append((int(parts[0]), int(parts[1])))
        except ValueError as exc:
            raise FileFormatError(f"{path}:{lineno}: {exc}") from None
    return pairs


def write_weights(path: PathLike, result: SimPointResult) -> None:
    """Write a ``.weights`` file (weight + cluster per line)."""
    lines = [
        f"{point.weight:.10f} {point.cluster}" for point in result.points
    ]
    Path(path).write_text("\n".join(lines) + "\n")


def read_weights(path: PathLike) -> List[Tuple[float, int]]:
    """Read a ``.weights`` file as ``(weight, cluster)`` pairs."""
    pairs = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise FileFormatError(
                f"{path}:{lineno}: expected 'weight cluster', got {line!r}"
            )
        try:
            weight = float(parts[0])
            cluster = int(parts[1])
        except ValueError as exc:
            raise FileFormatError(f"{path}:{lineno}: {exc}") from None
        if not 0.0 <= weight <= 1.0:
            raise FileFormatError(
                f"{path}:{lineno}: weight {weight} outside [0, 1]"
            )
        pairs.append((weight, cluster))
    return pairs


def _coord_str(coord: Optional[ExecutionCoordinate]) -> str:
    if coord is None:
        return "- -"
    return f"{coord[0]} {coord[1]}"


def _parse_coord(
    marker: str, count: str, context: str
) -> Optional[ExecutionCoordinate]:
    if marker == "-" and count == "-":
        return None
    try:
        return (int(marker), int(count))
    except ValueError:
        raise FileFormatError(
            f"{context}: bad coordinate {marker!r} {count!r}"
        ) from None


def write_regions(
    path: PathLike,
    points: Sequence[MappedSimulationPoint],
) -> None:
    """Write cross-binary simulation regions with primary weights."""
    lines = [_REGIONS_HEADER]
    for point in points:
        lines.append(
            f"region {point.cluster} {point.interval_index} "
            f"{_coord_str(point.start)} {_coord_str(point.end)} "
            f"{point.primary_weight!r}"
        )
    Path(path).write_text("\n".join(lines) + "\n")


def read_regions(path: PathLike) -> List[MappedSimulationPoint]:
    """Read a regions file back into mapped simulation points."""
    points = []
    text = Path(path).read_text().splitlines()
    if not text or text[0].strip() != _REGIONS_HEADER:
        raise FileFormatError(f"{path}: missing regions header")
    for lineno, line in enumerate(text[1:], 2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 8 or parts[0] != "region":
            raise FileFormatError(
                f"{path}:{lineno}: expected 8-field region line, got {line!r}"
            )
        context = f"{path}:{lineno}"
        try:
            cluster = int(parts[1])
            interval_index = int(parts[2])
            weight = float(parts[7])
        except ValueError as exc:
            raise FileFormatError(f"{context}: {exc}") from None
        points.append(
            MappedSimulationPoint(
                cluster=cluster,
                interval_index=interval_index,
                start=_parse_coord(parts[3], parts[4], context),
                end=_parse_coord(parts[5], parts[6], context),
                primary_weight=weight,
            )
        )
    return points
