"""One-call PinPoints generation.

:func:`generate_pinpoints` reproduces the paper's per-binary tool
chain: profile a binary into fixed-length-interval BBVs, run SimPoint
3.0, and (optionally) write the ``.simpoints``/``.weights`` files.

:func:`generate_cross_binary_pinpoints` is the cross-binary flavour: it
runs the full mappable pipeline over a binary set and writes a regions
file whose coordinates drive region simulation of *any* of the
binaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.compilation.binary import Binary
from repro.core.pipeline import (
    CrossBinaryConfig,
    CrossBinaryResult,
    run_cross_binary_simpoint,
)
from repro.pinpoints.files import write_regions, write_simpoints, write_weights
from repro.profiling.bbv import collect_fli_bbvs
from repro.profiling.intervals import Interval
from repro.programs.inputs import ProgramInput, REF_INPUT
from repro.simpoint.simpoint import SimPointConfig, SimPointResult, run_simpoint

PathLike = Union[str, Path]


@dataclass(frozen=True)
class PinPointsPackage:
    """Everything the per-binary tool chain produced."""

    binary_name: str
    intervals: Tuple[Interval, ...]
    simpoint: SimPointResult
    simpoints_path: Optional[Path] = None
    weights_path: Optional[Path] = None


def generate_pinpoints(
    binary: Binary,
    interval_size: int = 100_000,
    config: Optional[SimPointConfig] = None,
    program_input: ProgramInput = REF_INPUT,
    output_dir: Optional[PathLike] = None,
) -> PinPointsPackage:
    """Profile one binary and pick its simulation points (FLI flavour).

    When ``output_dir`` is given, ``<name>.simpoints`` and
    ``<name>.weights`` are written there.
    """
    intervals = collect_fli_bbvs(binary, interval_size, program_input)
    result = run_simpoint(intervals, config or SimPointConfig())
    simpoints_path: Optional[Path] = None
    weights_path: Optional[Path] = None
    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        stem = binary.name.replace("/", "_")
        simpoints_path = directory / f"{stem}.simpoints"
        weights_path = directory / f"{stem}.weights"
        write_simpoints(simpoints_path, result)
        write_weights(weights_path, result)
    return PinPointsPackage(
        binary_name=binary.name,
        intervals=tuple(intervals),
        simpoint=result,
        simpoints_path=simpoints_path,
        weights_path=weights_path,
    )


def generate_cross_binary_pinpoints(
    binaries: Sequence[Binary],
    config: Optional[CrossBinaryConfig] = None,
    output_dir: Optional[PathLike] = None,
) -> Tuple[CrossBinaryResult, Optional[Path]]:
    """Run the cross-binary pipeline; optionally write the regions file."""
    result = run_cross_binary_simpoint(
        list(binaries), config or CrossBinaryConfig()
    )
    regions_path: Optional[Path] = None
    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        program = binaries[0].program_name
        regions_path = directory / f"{program}.regions"
        write_regions(regions_path, result.mapped_points)
    return result, regions_path
