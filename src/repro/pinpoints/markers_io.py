"""Marker-set serialization.

Matching mappable points requires profiling every binary; in a real
workflow that is done once and the marker set is archived alongside the
binaries so later simulation campaigns (new architectures, new region
choices) can reuse it. This module provides that artifact:

    # repro marker set v2
    binaries <name> <name> ...
    point <marker id> <kind> <total count> <confidence> <key as JSON>
    anchor <binary index> <marker id> <block id>

Keys are JSON-encoded (they are heterogeneous tuples); binary names
are indexed by the header line so anchors stay compact.

Version history: v1 point lines carry no confidence column (every
marker was an exact match, confidence 1.0). The reader accepts both
versions; the writer emits v1 whenever every point's confidence is
exactly 1.0, so archives of exact-only marker sets stay bit-identical
to those written before fuzzy matching existed.

Reading also cross-validates the archive: duplicate point ids,
duplicate ``(binary, marker)`` anchor records, anchors naming unknown
marker ids, and points left dangling (no anchor in some binary) are
all rejected with the offending line — a MarkerSet that passed
matching satisfies all of these, so any violation means the archive
was corrupted or hand-edited.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.core.markers import (
    MappablePoint,
    MarkerKind,
    MarkerSet,
    MarkerTable,
)
from repro.errors import FileFormatError

_HEADER_V1 = "# repro marker set v1"
_HEADER_V2 = "# repro marker set v2"

PathLike = Union[str, Path]


def write_marker_set(path: PathLike, marker_set: MarkerSet) -> None:
    """Write a marker set (points + per-binary anchors) to disk.

    Binary names are space-separated on the ``binaries`` header line,
    so a name containing whitespace (or an empty name) would produce a
    file :func:`read_marker_set` silently mis-parses — such names are
    rejected up front instead of corrupting the archive.

    Marker sets whose points are all exact matches (confidence 1.0)
    are written in the v1 format, byte-identical to archives written
    before the confidence column existed; any fuzzy-matched point
    switches the file to v2.
    """
    names = sorted(marker_set.tables)
    for name in names:
        if not name or name.split() != [name]:
            raise FileFormatError(
                f"binary name {name!r} cannot be archived: names are "
                f"space-separated in the marker-set format and must be "
                f"non-empty and whitespace-free"
            )
    exact_only = all(
        point.confidence == 1.0 for point in marker_set.points
    )
    header = _HEADER_V1 if exact_only else _HEADER_V2
    lines = [header, "binaries " + " ".join(names)]
    for point in marker_set.points:
        key_json = json.dumps(list(point.key), separators=(",", ":"))
        if exact_only:
            lines.append(
                f"point {point.marker_id} {point.kind.value} "
                f"{point.total_count} {key_json}"
            )
        else:
            lines.append(
                f"point {point.marker_id} {point.kind.value} "
                f"{point.total_count} {point.confidence!r} {key_json}"
            )
    for index, name in enumerate(names):
        table = marker_set.tables[name]
        for marker_id, block_id in sorted(table.anchor_blocks.items()):
            lines.append(f"anchor {index} {marker_id} {block_id}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_marker_set(path: PathLike) -> MarkerSet:
    """Read a marker set back; validates structure on the way.

    Both format versions load (v1 points get confidence 1.0). Beyond
    per-line syntax, the archive is cross-validated as a whole: point
    ids must be unique, ``(binary, marker)`` anchor records must be
    unique, every anchor must name a declared point, and every point
    must be anchored in every binary.
    """
    lines = Path(path).read_text().splitlines()
    if not lines or lines[0].strip() not in (_HEADER_V1, _HEADER_V2):
        raise FileFormatError(f"{path}: missing marker-set header")
    version = 1 if lines[0].strip() == _HEADER_V1 else 2
    names: List[str] = []
    points: List[MappablePoint] = []
    point_lines: Dict[int, int] = {}  # marker id -> declaring line
    anchors: Dict[str, Dict[int, int]] = {}
    anchor_records: List[Tuple[int, str, int]] = []  # (line, binary, id)
    for lineno, line in enumerate(lines[1:], 2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 1)
        context = f"{path}:{lineno}"
        if parts[0] == "binaries":
            if names:
                raise FileFormatError(f"{context}: duplicate binaries line")
            names = parts[1].split() if len(parts) > 1 else []
            anchors = {name: {} for name in names}
        elif parts[0] == "point":
            n_fields = 5 if version == 1 else 6
            fields = line.split(None, n_fields - 1)
            if len(fields) != n_fields:
                raise FileFormatError(f"{context}: malformed point line")
            try:
                marker_id = int(fields[1])
                kind = MarkerKind(fields[2])
                total_count = int(fields[3])
                confidence = 1.0 if version == 1 else float(fields[4])
                key = tuple(json.loads(fields[-1]))
            except (ValueError, json.JSONDecodeError) as exc:
                raise FileFormatError(f"{context}: {exc}") from None
            if marker_id in point_lines:
                raise FileFormatError(
                    f"{context}: duplicate point id {marker_id} "
                    f"(first declared at line {point_lines[marker_id]})"
                )
            point_lines[marker_id] = lineno
            points.append(
                MappablePoint(
                    marker_id=marker_id,
                    kind=kind,
                    key=key,
                    total_count=total_count,
                    confidence=confidence,
                )
            )
        elif parts[0] == "anchor":
            fields = line.split()
            if len(fields) != 4:
                raise FileFormatError(f"{context}: malformed anchor line")
            try:
                binary_index = int(fields[1])
                marker_id = int(fields[2])
                block_id = int(fields[3])
            except ValueError as exc:
                raise FileFormatError(f"{context}: {exc}") from None
            if not names:
                raise FileFormatError(
                    f"{context}: anchor line before the binaries line"
                )
            if not 0 <= binary_index < len(names):
                raise FileFormatError(
                    f"{context}: binary index {binary_index} out of range"
                )
            name = names[binary_index]
            if marker_id in anchors[name]:
                raise FileFormatError(
                    f"{context}: duplicate anchor for marker {marker_id} "
                    f"in binary {name!r}"
                )
            anchors[name][marker_id] = block_id
            anchor_records.append((lineno, name, marker_id))
        else:
            raise FileFormatError(
                f"{context}: unknown record {parts[0]!r}"
            )
    if not names:
        raise FileFormatError(f"{path}: no binaries line")
    # Cross-validation: anchors and points must agree exactly.
    declared = set(point_lines)
    for lineno, name, marker_id in anchor_records:
        if marker_id not in declared:
            raise FileFormatError(
                f"{path}:{lineno}: anchor references unknown marker id "
                f"{marker_id} (binary {name!r})"
            )
    for marker_id, lineno in point_lines.items():
        missing = [name for name in names if marker_id not in anchors[name]]
        if missing:
            raise FileFormatError(
                f"{path}:{lineno}: point {marker_id} is dangling: no "
                f"anchor in {', '.join(missing)}"
            )
    tables = {
        name: MarkerTable(binary_name=name, anchor_blocks=mapping)
        for name, mapping in anchors.items()
    }
    return MarkerSet(points=tuple(points), tables=tables)
