"""Marker-set serialization.

Matching mappable points requires profiling every binary; in a real
workflow that is done once and the marker set is archived alongside the
binaries so later simulation campaigns (new architectures, new region
choices) can reuse it. This module provides that artifact:

    # repro marker set v1
    binaries <name> <name> ...
    point <marker id> <kind> <total count> <key as JSON>
    anchor <binary index> <marker id> <block id>

Keys are JSON-encoded (they are heterogeneous tuples); binary names
are indexed by the header line so anchors stay compact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.markers import (
    MappablePoint,
    MarkerKind,
    MarkerSet,
    MarkerTable,
)
from repro.errors import FileFormatError

_HEADER = "# repro marker set v1"

PathLike = Union[str, Path]


def write_marker_set(path: PathLike, marker_set: MarkerSet) -> None:
    """Write a marker set (points + per-binary anchors) to disk.

    Binary names are space-separated on the ``binaries`` header line,
    so a name containing whitespace (or an empty name) would produce a
    file :func:`read_marker_set` silently mis-parses — such names are
    rejected up front instead of corrupting the archive.
    """
    names = sorted(marker_set.tables)
    for name in names:
        if not name or name.split() != [name]:
            raise FileFormatError(
                f"binary name {name!r} cannot be archived: names are "
                f"space-separated in the marker-set format and must be "
                f"non-empty and whitespace-free"
            )
    lines = [_HEADER, "binaries " + " ".join(names)]
    for point in marker_set.points:
        key_json = json.dumps(list(point.key), separators=(",", ":"))
        lines.append(
            f"point {point.marker_id} {point.kind.value} "
            f"{point.total_count} {key_json}"
        )
    for index, name in enumerate(names):
        table = marker_set.tables[name]
        for marker_id, block_id in sorted(table.anchor_blocks.items()):
            lines.append(f"anchor {index} {marker_id} {block_id}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_marker_set(path: PathLike) -> MarkerSet:
    """Read a marker set back; validates structure on the way."""
    lines = Path(path).read_text().splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise FileFormatError(f"{path}: missing marker-set header")
    names: List[str] = []
    points: List[MappablePoint] = []
    anchors: Dict[str, Dict[int, int]] = {}
    for lineno, line in enumerate(lines[1:], 2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 1)
        context = f"{path}:{lineno}"
        if parts[0] == "binaries":
            if names:
                raise FileFormatError(f"{context}: duplicate binaries line")
            names = parts[1].split() if len(parts) > 1 else []
            anchors = {name: {} for name in names}
        elif parts[0] == "point":
            fields = line.split(None, 4)
            if len(fields) != 5:
                raise FileFormatError(f"{context}: malformed point line")
            try:
                marker_id = int(fields[1])
                kind = MarkerKind(fields[2])
                total_count = int(fields[3])
                key = tuple(json.loads(fields[4]))
            except (ValueError, json.JSONDecodeError) as exc:
                raise FileFormatError(f"{context}: {exc}") from None
            points.append(
                MappablePoint(
                    marker_id=marker_id,
                    kind=kind,
                    key=key,
                    total_count=total_count,
                )
            )
        elif parts[0] == "anchor":
            fields = line.split()
            if len(fields) != 4:
                raise FileFormatError(f"{context}: malformed anchor line")
            try:
                binary_index = int(fields[1])
                marker_id = int(fields[2])
                block_id = int(fields[3])
            except ValueError as exc:
                raise FileFormatError(f"{context}: {exc}") from None
            if not names:
                raise FileFormatError(
                    f"{context}: anchor line before the binaries line"
                )
            if not 0 <= binary_index < len(names):
                raise FileFormatError(
                    f"{context}: binary index {binary_index} out of range"
                )
            anchors[names[binary_index]][marker_id] = block_id
        else:
            raise FileFormatError(
                f"{context}: unknown record {parts[0]!r}"
            )
    if not names:
        raise FileFormatError(f"{path}: no binaries line")
    tables = {
        name: MarkerTable(binary_name=name, anchor_blocks=mapping)
        for name, mapping in anchors.items()
    }
    return MarkerSet(points=tuple(points), tables=tables)
