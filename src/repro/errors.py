"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries while tests can assert
on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProgramError(ReproError):
    """A program IR is malformed (unknown callee, empty loop, bad counts)."""


class CompilationError(ReproError):
    """The compiler could not lower a program for the requested target."""


class ExecutionError(ReproError):
    """The executor encountered an inconsistent binary or runaway run."""


class ProfilingError(ReproError):
    """A profiler was driven with inconsistent intervals or streams."""


class ClusteringError(ReproError):
    """SimPoint clustering was given unusable data or parameters."""


class MatchingError(ReproError):
    """Cross-binary mappable-point matching failed structurally."""


class MappingError(ReproError):
    """A simulation region could not be located in a target binary."""


class SimulationError(ReproError):
    """The CMP$im-style simulator was misconfigured or misdriven."""


class FileFormatError(ReproError):
    """A PinPoints-style file could not be parsed or round-tripped."""


class CacheError(ReproError):
    """The profile cache is misconfigured or cannot store a value."""


class JobError(ReproError):
    """The job service was given an unusable job, queue, or payload."""
