"""Finding mappable points across all binaries (paper Section 3.2.2).

Three matching stages, mirroring the paper:

1. **Procedures by symbol name** — a procedure entry is mappable when
   the symbol exists in every binary and its whole-run entry count is
   identical everywhere. (Inlined-away procedures fail the existence
   test, exactly as with real symbol tables.)
2. **Loops by debug line** — a loop is identified by its source line.
   Its *entry* is mappable when every binary has that line and the
   entry counts match; its *back-edge branch* is additionally mappable
   when the iteration counts match (unrolled loops keep a mappable
   entry but lose the branch). Lines carrying several loops (the
   optimizer's loop splitting re-uses the source line) are matched by
   per-loop count signatures when unambiguous, otherwise dropped.
3. **Count-signature recovery for inlined loops** (paper Section 3.3) —
   inlining clobbers a loop's debug line, so stage 2 misses it. A
   leftover loop is recovered when its ``(entry count, iteration
   count)`` signature identifies exactly one leftover loop in *every*
   binary. Equal-count siblings (the paper's applu case: five inlined
   PDE solvers with identical loop structure) stay ambiguous and are
   dropped — their execution regions simply contain no markers.

The output is a :class:`~repro.core.markers.MarkerSet` whose points all
carry identical whole-run counts in every binary, plus a
:class:`MatchReport` describing what matched and what was dropped.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.compilation.binary import Binary, LLoop
from repro.core.markers import (
    MappablePoint,
    MarkerKind,
    MarkerSet,
    MarkerTable,
)
from repro.errors import MatchingError
from repro.profiling.callbranch import CallBranchProfile, LoopProfile


@dataclass(frozen=True)
class MatchReport:
    """Diagnostics from one matching run."""

    procedures_matched: int
    procedures_dropped: int
    loop_entries_matched: int
    loop_branches_matched: int
    loops_recovered_by_signature: int
    loops_dropped_ambiguous: int
    dropped_details: Tuple[str, ...] = ()


@dataclass
class _BinaryView:
    """Pre-indexed view of one binary + its profile."""

    binary: Binary
    profile: CallBranchProfile
    loops_by_id: Dict[int, LLoop] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for proc_name in self.binary.procedures:
            for loop in self.binary.iter_loops_of(proc_name):
                self.loops_by_id[loop.loop_id] = loop

    def executed_loops(self) -> Tuple[LoopProfile, ...]:
        return self.profile.executed_loops()


def _match_procedures(
    views: Sequence[_BinaryView],
) -> Tuple[List[Tuple[Tuple, int, Dict[str, int]]], int]:
    """Returns (matched proc descriptors, dropped count).

    Each descriptor is ``(key, total count, {binary name: anchor})``.
    """
    name_sets = [
        set(view.profile.executed_procedures()) for view in views
    ]
    common = set.intersection(*name_sets)
    all_names = set.union(*name_sets)
    matched = []
    dropped = len(all_names) - len(common)
    for name in sorted(common):
        counts = {
            view.binary.name: view.profile.procedure_entries[name]
            for view in views
        }
        distinct = set(counts.values())
        if len(distinct) != 1:
            dropped += 1
            continue
        anchors = {
            view.binary.name: view.binary.procedures[name].entry_block
            for view in views
        }
        matched.append((("proc", name), distinct.pop(), anchors))
    return matched, dropped


_Signature = Tuple[int, int]  # (entries, iterations)


def _loop_anchor(
    view: _BinaryView, loop_id: int, kind: MarkerKind
) -> int:
    loop = view.loops_by_id[loop_id]
    return loop.entry_block if kind is MarkerKind.LOOP_ENTRY else loop.branch_block


@dataclass
class _LoopMatch:
    """One matched loop construct across all binaries."""

    key: Tuple
    kind: MarkerKind
    total_count: int
    anchors: Dict[str, int]


def _match_line_group(
    views: Sequence[_BinaryView],
    line_key: Tuple[str, int],
    groups: Sequence[Tuple[LoopProfile, ...]],
    details: List[str],
) -> Tuple[List[_LoopMatch], Set[Tuple[str, int]], int]:
    """Match the loops all binaries place at one source line.

    Returns (matches, consumed (binary name, loop id) pairs, dropped).
    """
    matches: List[_LoopMatch] = []
    consumed: Set[Tuple[str, int]] = set()
    dropped = 0

    if all(len(group) == 1 for group in groups):
        profiles = [group[0] for group in groups]
        entries = {p.entries for p in profiles}
        iterations = {p.iterations for p in profiles}
        if len(entries) == 1:
            matches.append(
                _LoopMatch(
                    key=("line", line_key[0], line_key[1], "entry"),
                    kind=MarkerKind.LOOP_ENTRY,
                    total_count=entries.pop(),
                    anchors={
                        view.binary.name: _loop_anchor(
                            view, p.loop_id, MarkerKind.LOOP_ENTRY
                        )
                        for view, p in zip(views, profiles)
                    },
                )
            )
            if len(iterations) == 1:
                matches.append(
                    _LoopMatch(
                        key=("line", line_key[0], line_key[1], "branch"),
                        kind=MarkerKind.LOOP_BRANCH,
                        total_count=iterations.pop(),
                        anchors={
                            view.binary.name: _loop_anchor(
                                view, p.loop_id, MarkerKind.LOOP_BRANCH
                            )
                            for view, p in zip(views, profiles)
                        },
                    )
                )
            for view, p in zip(views, profiles):
                consumed.add((view.binary.name, p.loop_id))
        else:
            dropped += 1
            details.append(
                f"line {line_key[0]}:{line_key[1]}: entry counts differ"
            )
        return matches, consumed, dropped

    # Several loops share the line in some binary (loop splitting).
    # Try per-loop count signatures; any duplicate signature within a
    # binary is irresolvably ambiguous.
    sig_maps: List[Dict[_Signature, LoopProfile]] = []
    ambiguous = False
    for group in groups:
        sig_map: Dict[_Signature, LoopProfile] = {}
        for profile in group:
            signature = (profile.entries, profile.iterations)
            if signature in sig_map:
                ambiguous = True
                break
            sig_map[signature] = profile
        if ambiguous:
            break
        sig_maps.append(sig_map)
    if ambiguous or len({frozenset(m) for m in sig_maps}) != 1:
        details.append(
            f"line {line_key[0]}:{line_key[1]}: ambiguous split loops"
        )
        return [], set(), 1

    for signature in sorted(sig_maps[0]):
        entries, iterations = signature
        entry_anchors = {}
        branch_anchors = {}
        for view, sig_map in zip(views, sig_maps):
            profile = sig_map[signature]
            consumed.add((view.binary.name, profile.loop_id))
            entry_anchors[view.binary.name] = _loop_anchor(
                view, profile.loop_id, MarkerKind.LOOP_ENTRY
            )
            branch_anchors[view.binary.name] = _loop_anchor(
                view, profile.loop_id, MarkerKind.LOOP_BRANCH
            )
        base_key = ("line", line_key[0], line_key[1], entries, iterations)
        matches.append(
            _LoopMatch(
                key=base_key + ("entry",),
                kind=MarkerKind.LOOP_ENTRY,
                total_count=entries,
                anchors=entry_anchors,
            )
        )
        matches.append(
            _LoopMatch(
                key=base_key + ("branch",),
                kind=MarkerKind.LOOP_BRANCH,
                total_count=iterations,
                anchors=branch_anchors,
            )
        )
    return matches, consumed, 0


def _match_loops_by_line(
    views: Sequence[_BinaryView], details: List[str]
) -> Tuple[List[_LoopMatch], Set[Tuple[str, int]], int]:
    by_line: List[Dict[Tuple[str, int], List[LoopProfile]]] = []
    for view in views:
        groups: Dict[Tuple[str, int], List[LoopProfile]] = defaultdict(list)
        for profile in view.executed_loops():
            if profile.location is not None:
                groups[(profile.location.file, profile.location.line)].append(
                    profile
                )
        by_line.append(dict(groups))

    common_lines = set.intersection(*(set(m) for m in by_line))
    matches: List[_LoopMatch] = []
    consumed: Set[Tuple[str, int]] = set()
    dropped = 0
    for line_key in sorted(common_lines):
        groups = [tuple(m[line_key]) for m in by_line]
        line_matches, line_consumed, line_dropped = _match_line_group(
            views, line_key, groups, details
        )
        matches.extend(line_matches)
        consumed |= line_consumed
        dropped += line_dropped
    return matches, consumed, dropped


def _recover_by_signature(
    views: Sequence[_BinaryView],
    consumed: Set[Tuple[str, int]],
    details: List[str],
) -> Tuple[List[_LoopMatch], int, int]:
    """Stage 3: match leftover loops by unique count signatures."""
    leftovers: List[Dict[_Signature, List[LoopProfile]]] = []
    for view in views:
        sig_map: Dict[_Signature, List[LoopProfile]] = defaultdict(list)
        for profile in view.executed_loops():
            if (view.binary.name, profile.loop_id) in consumed:
                continue
            sig_map[(profile.entries, profile.iterations)].append(profile)
        leftovers.append(dict(sig_map))

    candidate_sigs = set.intersection(*(set(m) for m in leftovers))
    matches: List[_LoopMatch] = []
    recovered = 0
    dropped = 0
    for signature in sorted(candidate_sigs):
        groups = [m[signature] for m in leftovers]
        if any(len(group) != 1 for group in groups):
            dropped += 1
            details.append(
                f"signature entries={signature[0]} "
                f"iterations={signature[1]}: ambiguous inlined loops"
            )
            continue
        entries, iterations = signature
        entry_anchors = {}
        branch_anchors = {}
        for view, group in zip(views, groups):
            profile = group[0]
            entry_anchors[view.binary.name] = _loop_anchor(
                view, profile.loop_id, MarkerKind.LOOP_ENTRY
            )
            branch_anchors[view.binary.name] = _loop_anchor(
                view, profile.loop_id, MarkerKind.LOOP_BRANCH
            )
        recovered += 1
        base_key = ("sig", entries, iterations)
        matches.append(
            _LoopMatch(
                key=base_key + ("entry",),
                kind=MarkerKind.LOOP_ENTRY,
                total_count=entries,
                anchors=entry_anchors,
            )
        )
        matches.append(
            _LoopMatch(
                key=base_key + ("branch",),
                kind=MarkerKind.LOOP_BRANCH,
                total_count=iterations,
                anchors=branch_anchors,
            )
        )
    # Leftovers in any binary that matched nothing are unmappable.
    unmatched_sigs = set.union(*(set(m) for m in leftovers)) - candidate_sigs
    dropped += len(unmatched_sigs)
    return matches, recovered, dropped


def find_mappable_points(
    profiled_binaries: Sequence[Tuple[Binary, CallBranchProfile]],
    enable_signature_recovery: bool = True,
) -> Tuple[MarkerSet, MatchReport]:
    """Find the mappable points shared by all binaries.

    ``profiled_binaries`` pairs each binary with its call-and-branch
    profile (all collected with the same input).
    ``enable_signature_recovery`` toggles the paper's Section 3.3
    inlining heuristic (the ablation benchmark turns it off).
    """
    if len(profiled_binaries) < 2:
        raise MatchingError(
            "cross-binary matching needs at least two binaries"
        )
    names = [binary.name for binary, _ in profiled_binaries]
    if len(set(names)) != len(names):
        raise MatchingError(f"duplicate binary names: {names}")
    views = [
        _BinaryView(binary=binary, profile=profile)
        for binary, profile in profiled_binaries
    ]

    details: List[str] = []
    proc_matches, procs_dropped = _match_procedures(views)
    line_matches, consumed, line_dropped = _match_loops_by_line(views, details)
    if enable_signature_recovery:
        sig_matches, recovered, sig_dropped = _recover_by_signature(
            views, consumed, details
        )
    else:
        sig_matches, recovered, sig_dropped = [], 0, 0

    points: List[MappablePoint] = []
    anchor_tables: Dict[str, Dict[int, int]] = {name: {} for name in names}
    marker_id = 0
    for key, total, anchors in proc_matches:
        points.append(
            MappablePoint(
                marker_id=marker_id,
                kind=MarkerKind.PROCEDURE,
                key=key,
                total_count=total,
            )
        )
        for binary_name, block_id in anchors.items():
            anchor_tables[binary_name][marker_id] = block_id
        marker_id += 1
    for match in line_matches + sig_matches:
        points.append(
            MappablePoint(
                marker_id=marker_id,
                kind=match.kind,
                key=match.key,
                total_count=match.total_count,
            )
        )
        for binary_name, block_id in match.anchors.items():
            anchor_tables[binary_name][marker_id] = block_id
        marker_id += 1

    tables = {
        name: MarkerTable(binary_name=name, anchor_blocks=anchor_tables[name])
        for name in names
    }
    marker_set = MarkerSet(points=tuple(points), tables=tables)
    entry_count = sum(
        1 for p in points if p.kind is MarkerKind.LOOP_ENTRY
    )
    branch_count = sum(
        1 for p in points if p.kind is MarkerKind.LOOP_BRANCH
    )
    report = MatchReport(
        procedures_matched=len(proc_matches),
        procedures_dropped=procs_dropped,
        loop_entries_matched=entry_count,
        loop_branches_matched=branch_count,
        loops_recovered_by_signature=recovered,
        loops_dropped_ambiguous=line_dropped + sig_dropped,
        dropped_details=tuple(details),
    )
    return marker_set, report
