"""Finding mappable points across all binaries (paper Section 3.2.2).

Three matching stages, mirroring the paper:

1. **Procedures by symbol name** — a procedure entry is mappable when
   the symbol exists in every binary and its whole-run entry count is
   identical everywhere. (Inlined-away procedures fail the existence
   test, exactly as with real symbol tables.)
2. **Loops by debug line** — a loop is identified by its source line.
   Its *entry* is mappable when every binary has that line and the
   entry counts match; its *back-edge branch* is additionally mappable
   when the iteration counts match (unrolled loops keep a mappable
   entry but lose the branch). Lines carrying several loops (the
   optimizer's loop splitting re-uses the source line) are matched by
   per-loop count signatures when unambiguous, otherwise dropped.
3. **Count-signature recovery for inlined loops** (paper Section 3.3) —
   inlining clobbers a loop's debug line, so stage 2 misses it. A
   leftover loop is recovered when its ``(entry count, iteration
   count)`` signature identifies exactly one leftover loop in *every*
   binary.

4. **Confidence-scored fuzzy fallback** (off by default) — equal-count
   siblings (the paper's applu case: five inlined PDE solvers with
   identical loop structure) defeat stages 1-3. The fallback
   canonicalizes names — stripping compiler clone suffixes like
   ``.part.N`` / ``.isra.N`` / ``.constprop.N`` and the inline/split
   decoration inlining leaves on loop names — and aligns the leftovers
   by canonical name (exact, then :mod:`difflib` similarity). A fuzzy
   match still *requires* identical whole-run counts in every binary
   (the count invariant is what makes execution coordinates sound);
   the confidence only scores the risk that the aligned constructs are
   not the same source construct. Matches below the resolved
   ``match_confidence`` threshold are dropped; at the default
   threshold of 1.0 the stage is skipped entirely and the output is
   bit-identical to the exact matcher.

The output is a :class:`~repro.core.markers.MarkerSet` whose points all
carry identical whole-run counts in every binary, plus a
:class:`MatchReport` describing what matched, what was dropped, and —
per binary pair — how much of each binary's executed constructs the
marker set covers.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from difflib import SequenceMatcher
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.compilation.binary import Binary, LLoop
from repro.core.markers import (
    MappablePoint,
    MarkerKind,
    MarkerSet,
    MarkerTable,
)
from repro.errors import MatchingError
from repro.profiling.callbranch import CallBranchProfile, LoopProfile
from repro.runtime.config import resolve_match_confidence

#: Aligned canonical names must be at least this similar to pair up.
NAME_SIMILARITY_FLOOR = 0.6

_CLONE_SUFFIX = re.compile(r"\.(?:part|isra|constprop|cold)\.\d+$")


def canonical_symbol_name(name: str) -> str:
    """Strip compiler clone suffixes (``.part.N`` etc.), repeatedly."""
    while True:
        stripped = _CLONE_SUFFIX.sub("", name)
        if stripped == name:
            return name
        name = stripped


def canonical_loop_name(name: str) -> str:
    """Canonical identity of a (possibly inlined/split) loop name.

    Inlining decorates a loop name with its call site
    (``{callsite}__{name}``) and splitting appends a fragment marker
    (``__a`` / ``__b``); both are stripped, as are compiler clone
    suffixes, so every derived copy of ``pde0_loop`` canonicalizes back
    to ``pde0_loop``.
    """
    segments = canonical_symbol_name(name).split("__")
    while len(segments) > 1 and len(segments[-1]) == 1:
        segments.pop()
    return segments[-1]


def _split_stem(name: str) -> str:
    """A split fragment's name without its trailing fragment markers."""
    segments = name.split("__")
    while len(segments) > 1 and len(segments[-1]) == 1:
        segments.pop()
    return "__".join(segments)


@dataclass(frozen=True)
class PairCoverage:
    """Matched/unmatched construct coverage for one binary pair.

    A *construct* is one executed procedure or one executed loop (a
    loop's entry and branch markers count as one construct). The
    matched counts differ per binary: a split loop contributes two
    matched fragments on the optimized side but one loop on the other.
    """

    binary_a: str
    binary_b: str
    matched_a: int
    candidates_a: int
    matched_b: int
    candidates_b: int

    @property
    def coverage(self) -> float:
        """Worst-side fraction of executed constructs that mapped."""

        def frac(matched: int, candidates: int) -> float:
            return matched / candidates if candidates else 1.0

        return min(
            frac(self.matched_a, self.candidates_a),
            frac(self.matched_b, self.candidates_b),
        )


@dataclass(frozen=True)
class MatchReport:
    """Diagnostics from one matching run."""

    procedures_matched: int
    procedures_dropped: int
    loop_entries_matched: int
    loop_branches_matched: int
    loops_recovered_by_signature: int
    loops_dropped_ambiguous: int
    dropped_details: Tuple[str, ...] = ()
    procedures_matched_fuzzy: int = 0
    loops_matched_fuzzy: int = 0
    low_confidence_dropped: int = 0
    confidence_threshold: float = 1.0
    min_confidence: float = 1.0
    pair_coverage: Tuple[PairCoverage, ...] = ()

    def min_pair_coverage(self) -> float:
        """The weakest pairwise coverage (1.0 with no pairs)."""
        if not self.pair_coverage:
            return 1.0
        return min(pair.coverage for pair in self.pair_coverage)

    def to_summary(self) -> Dict[str, Any]:
        """Flat JSON-ready summary for manifests and run archives."""
        return {
            "threshold": float(self.confidence_threshold),
            "min_confidence": float(self.min_confidence),
            "fuzzy_procedures": int(self.procedures_matched_fuzzy),
            "fuzzy_loops": int(self.loops_matched_fuzzy),
            "low_confidence_dropped": int(self.low_confidence_dropped),
            "min_pair_coverage": float(self.min_pair_coverage()),
            "pairs": {
                f"{pair.binary_a}|{pair.binary_b}": {
                    "matched_a": pair.matched_a,
                    "candidates_a": pair.candidates_a,
                    "matched_b": pair.matched_b,
                    "candidates_b": pair.candidates_b,
                    "coverage": float(pair.coverage),
                }
                for pair in self.pair_coverage
            },
        }


@dataclass
class _BinaryView:
    """Pre-indexed view of one binary + its profile."""

    binary: Binary
    profile: CallBranchProfile
    loops_by_id: Dict[int, LLoop] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for proc_name in self.binary.procedures:
            for loop in self.binary.iter_loops_of(proc_name):
                self.loops_by_id[loop.loop_id] = loop

    def executed_loops(self) -> Tuple[LoopProfile, ...]:
        return self.profile.executed_loops()


def _match_procedures(
    views: Sequence[_BinaryView], details: List[str]
) -> Tuple[List[Tuple[Tuple, int, Dict[str, int]]], int, Set[str]]:
    """Returns (matched proc descriptors, dropped count, matched names).

    Each descriptor is ``(key, total count, {binary name: anchor})``.
    Every dropped procedure — missing symbol or count mismatch — is
    recorded in ``details`` so the coverage report can explain itself.
    """
    name_sets = [
        set(view.profile.executed_procedures()) for view in views
    ]
    common = set.intersection(*name_sets)
    all_names = set.union(*name_sets)
    matched = []
    matched_names: Set[str] = set()
    dropped = len(all_names) - len(common)
    for name in sorted(all_names - common):
        missing = [
            view.binary.name
            for view, names in zip(views, name_sets)
            if name not in names
        ]
        details.append(
            f"procedure {name}: missing from {', '.join(missing)}"
        )
    for name in sorted(common):
        counts = {
            view.binary.name: view.profile.procedure_entries[name]
            for view in views
        }
        distinct = set(counts.values())
        if len(distinct) != 1:
            dropped += 1
            shown = ", ".join(
                f"{binary}={count}" for binary, count in sorted(counts.items())
            )
            details.append(f"procedure {name}: entry counts differ ({shown})")
            continue
        anchors = {
            view.binary.name: view.binary.procedures[name].entry_block
            for view in views
        }
        matched.append((("proc", name), distinct.pop(), anchors))
        matched_names.add(name)
    return matched, dropped, matched_names


_Signature = Tuple[int, int]  # (entries, iterations)


def _loop_anchor(
    view: _BinaryView, loop_id: int, kind: MarkerKind
) -> int:
    loop = view.loops_by_id[loop_id]
    return loop.entry_block if kind is MarkerKind.LOOP_ENTRY else loop.branch_block


@dataclass
class _LoopMatch:
    """One matched loop construct across all binaries."""

    key: Tuple
    kind: MarkerKind
    total_count: int
    anchors: Dict[str, int]
    confidence: float = 1.0


def _match_line_group(
    views: Sequence[_BinaryView],
    line_key: Tuple[str, int],
    groups: Sequence[Tuple[LoopProfile, ...]],
    details: List[str],
) -> Tuple[List[_LoopMatch], Set[Tuple[str, int]], int]:
    """Match the loops all binaries place at one source line.

    Returns (matches, consumed (binary name, loop id) pairs, dropped).
    """
    matches: List[_LoopMatch] = []
    consumed: Set[Tuple[str, int]] = set()
    dropped = 0

    if all(len(group) == 1 for group in groups):
        profiles = [group[0] for group in groups]
        entries = {p.entries for p in profiles}
        iterations = {p.iterations for p in profiles}
        if len(entries) == 1:
            matches.append(
                _LoopMatch(
                    key=("line", line_key[0], line_key[1], "entry"),
                    kind=MarkerKind.LOOP_ENTRY,
                    total_count=entries.pop(),
                    anchors={
                        view.binary.name: _loop_anchor(
                            view, p.loop_id, MarkerKind.LOOP_ENTRY
                        )
                        for view, p in zip(views, profiles)
                    },
                )
            )
            if len(iterations) == 1:
                matches.append(
                    _LoopMatch(
                        key=("line", line_key[0], line_key[1], "branch"),
                        kind=MarkerKind.LOOP_BRANCH,
                        total_count=iterations.pop(),
                        anchors={
                            view.binary.name: _loop_anchor(
                                view, p.loop_id, MarkerKind.LOOP_BRANCH
                            )
                            for view, p in zip(views, profiles)
                        },
                    )
                )
            for view, p in zip(views, profiles):
                consumed.add((view.binary.name, p.loop_id))
        else:
            dropped += 1
            details.append(
                f"line {line_key[0]}:{line_key[1]}: entry counts differ"
            )
        return matches, consumed, dropped

    # Several loops share the line in some binary (loop splitting).
    # Try per-loop count signatures; any duplicate signature within a
    # binary is irresolvably ambiguous.
    sig_maps: List[Dict[_Signature, LoopProfile]] = []
    ambiguous = False
    for group in groups:
        sig_map: Dict[_Signature, LoopProfile] = {}
        for profile in group:
            signature = (profile.entries, profile.iterations)
            if signature in sig_map:
                ambiguous = True
                break
            sig_map[signature] = profile
        if ambiguous:
            break
        sig_maps.append(sig_map)
    if ambiguous or len({frozenset(m) for m in sig_maps}) != 1:
        details.append(
            f"line {line_key[0]}:{line_key[1]}: ambiguous split loops"
        )
        return [], set(), 1

    for signature in sorted(sig_maps[0]):
        entries, iterations = signature
        entry_anchors = {}
        branch_anchors = {}
        for view, sig_map in zip(views, sig_maps):
            profile = sig_map[signature]
            consumed.add((view.binary.name, profile.loop_id))
            entry_anchors[view.binary.name] = _loop_anchor(
                view, profile.loop_id, MarkerKind.LOOP_ENTRY
            )
            branch_anchors[view.binary.name] = _loop_anchor(
                view, profile.loop_id, MarkerKind.LOOP_BRANCH
            )
        base_key = ("line", line_key[0], line_key[1], entries, iterations)
        matches.append(
            _LoopMatch(
                key=base_key + ("entry",),
                kind=MarkerKind.LOOP_ENTRY,
                total_count=entries,
                anchors=entry_anchors,
            )
        )
        matches.append(
            _LoopMatch(
                key=base_key + ("branch",),
                kind=MarkerKind.LOOP_BRANCH,
                total_count=iterations,
                anchors=branch_anchors,
            )
        )
    return matches, consumed, 0


def _match_loops_by_line(
    views: Sequence[_BinaryView], details: List[str]
) -> Tuple[List[_LoopMatch], Set[Tuple[str, int]], int]:
    by_line: List[Dict[Tuple[str, int], List[LoopProfile]]] = []
    for view in views:
        groups: Dict[Tuple[str, int], List[LoopProfile]] = defaultdict(list)
        for profile in view.executed_loops():
            if profile.location is not None:
                groups[(profile.location.file, profile.location.line)].append(
                    profile
                )
        by_line.append(dict(groups))

    common_lines = set.intersection(*(set(m) for m in by_line))
    matches: List[_LoopMatch] = []
    consumed: Set[Tuple[str, int]] = set()
    dropped = 0
    for line_key in sorted(common_lines):
        groups = [tuple(m[line_key]) for m in by_line]
        line_matches, line_consumed, line_dropped = _match_line_group(
            views, line_key, groups, details
        )
        matches.extend(line_matches)
        consumed |= line_consumed
        dropped += line_dropped
    return matches, consumed, dropped


def _recover_by_signature(
    views: Sequence[_BinaryView],
    consumed: Set[Tuple[str, int]],
    details: List[str],
) -> Tuple[List[_LoopMatch], int, int]:
    """Stage 3: match leftover loops by unique count signatures."""
    leftovers: List[Dict[_Signature, List[LoopProfile]]] = []
    for view in views:
        sig_map: Dict[_Signature, List[LoopProfile]] = defaultdict(list)
        for profile in view.executed_loops():
            if (view.binary.name, profile.loop_id) in consumed:
                continue
            sig_map[(profile.entries, profile.iterations)].append(profile)
        leftovers.append(dict(sig_map))

    candidate_sigs = set.intersection(*(set(m) for m in leftovers))
    matches: List[_LoopMatch] = []
    recovered = 0
    dropped = 0
    for signature in sorted(candidate_sigs):
        groups = [m[signature] for m in leftovers]
        if any(len(group) != 1 for group in groups):
            dropped += 1
            details.append(
                f"signature entries={signature[0]} "
                f"iterations={signature[1]}: ambiguous inlined loops"
            )
            continue
        entries, iterations = signature
        entry_anchors = {}
        branch_anchors = {}
        for view, group in zip(views, groups):
            profile = group[0]
            consumed.add((view.binary.name, profile.loop_id))
            entry_anchors[view.binary.name] = _loop_anchor(
                view, profile.loop_id, MarkerKind.LOOP_ENTRY
            )
            branch_anchors[view.binary.name] = _loop_anchor(
                view, profile.loop_id, MarkerKind.LOOP_BRANCH
            )
        recovered += 1
        base_key = ("sig", entries, iterations)
        matches.append(
            _LoopMatch(
                key=base_key + ("entry",),
                kind=MarkerKind.LOOP_ENTRY,
                total_count=entries,
                anchors=entry_anchors,
            )
        )
        matches.append(
            _LoopMatch(
                key=base_key + ("branch",),
                kind=MarkerKind.LOOP_BRANCH,
                total_count=iterations,
                anchors=branch_anchors,
            )
        )
    # Leftovers in any binary that matched nothing are unmappable.
    unmatched_sigs = set.union(*(set(m) for m in leftovers)) - candidate_sigs
    dropped += len(unmatched_sigs)
    return matches, recovered, dropped


# Confidence model for the fuzzy fallback. A fuzzy match always has
# exact whole-run count equality; confidence scores only the identity
# claim, so the factors are structural:
_STRIPPED_BASE = 0.9  # canonicalization removed decoration somewhere
_PLAIN_BASE = 0.95  # names already equal, yet the exact stages missed
_FRAGMENT_PENALTY = 0.8  # anchored on one fragment of a split loop


def _align_names(
    name_sets: Sequence[Set[str]],
) -> List[Tuple[Tuple[str, ...], float]]:
    """Align canonical names across binaries.

    Names present in every binary align exactly (score 1.0); the rest
    are greedily paired by :class:`difflib.SequenceMatcher` similarity
    with :data:`NAME_SIMILARITY_FLOOR` as the cut-off. Returns
    ``(per-binary names, name score)`` tuples, deterministically
    ordered.
    """
    aligned: List[Tuple[Tuple[str, ...], float]] = []
    shared = set.intersection(*(set(s) for s in name_sets))
    for name in sorted(shared):
        aligned.append(((name,) * len(name_sets), 1.0))
    remaining = [sorted(s - shared) for s in name_sets]
    for name in list(remaining[0]):
        choice = [name]
        score = 1.0
        for names in remaining[1:]:
            best, best_ratio = None, 0.0
            for candidate in names:
                ratio = SequenceMatcher(None, name, candidate).ratio()
                if ratio > best_ratio:
                    best, best_ratio = candidate, ratio
            if best is None or best_ratio < NAME_SIMILARITY_FLOOR:
                choice = []
                break
            choice.append(best)
            score = min(score, best_ratio)
        if not choice:
            continue
        for names, picked in zip(remaining, choice):
            names.remove(picked)
        aligned.append((tuple(choice), score))
    return aligned


def _fuzzy_match_procedures(
    views: Sequence[_BinaryView],
    matched_names: Set[str],
    threshold: float,
    details: List[str],
) -> Tuple[
    List[Tuple[Tuple, int, Dict[str, int], float]],
    int,
    Dict[str, Set[str]],
]:
    """Stage 4a: align leftover procedures by canonical symbol name.

    Returns (matched descriptors ``(key, total, anchors, confidence)``,
    low-confidence drops, per-binary matched raw names).
    """
    leftover_maps: List[Dict[str, List[str]]] = []
    for view in views:
        groups: Dict[str, List[str]] = defaultdict(list)
        for name in view.profile.executed_procedures():
            if name in matched_names:
                continue
            groups[canonical_symbol_name(name)].append(name)
        leftover_maps.append(dict(groups))

    matches: List[Tuple[Tuple, int, Dict[str, int], float]] = []
    matched_raw: Dict[str, Set[str]] = {
        view.binary.name: set() for view in views
    }
    low_dropped = 0
    for canonicals, name_score in _align_names(
        [set(m) for m in leftover_maps]
    ):
        label = canonicals[0]
        groups = [m[c] for m, c in zip(leftover_maps, canonicals)]
        if any(len(group) != 1 for group in groups):
            details.append(f"fuzzy procedure {label}: ambiguous candidates")
            continue
        raws = [group[0] for group in groups]
        counts = {
            view.profile.procedure_entries[raw]
            for view, raw in zip(views, raws)
        }
        if len(counts) != 1:
            details.append(f"fuzzy procedure {label}: entry counts differ")
            continue
        stripped = any(
            raw != canonical for raw, canonical in zip(raws, canonicals)
        )
        confidence = name_score * (
            _STRIPPED_BASE if stripped else _PLAIN_BASE
        )
        if confidence < threshold:
            low_dropped += 1
            details.append(
                f"fuzzy procedure {label}: confidence {confidence:.3f} "
                f"below threshold {threshold:.3f}"
            )
            continue
        anchors = {
            view.binary.name: view.binary.procedures[raw].entry_block
            for view, raw in zip(views, raws)
        }
        matches.append(
            (("fuzzy-proc", label), counts.pop(), anchors, confidence)
        )
        for view, raw in zip(views, raws):
            matched_raw[view.binary.name].add(raw)
    return matches, low_dropped, matched_raw


@dataclass
class _FuzzyCandidate:
    """One leftover loop construct: a loop or its split-fragment group.

    ``profiles`` holds every fragment, representative (lowest split
    index) first — the representative's entry block fires at the same
    semantic moment as the unsplit loop's entry.
    """

    profiles: List[LoopProfile]
    fragment: bool

    @property
    def rep(self) -> LoopProfile:
        return self.profiles[0]


def _fuzzy_loop_candidates(
    view: _BinaryView, consumed: Set[Tuple[str, int]]
) -> Dict[str, List[_FuzzyCandidate]]:
    """Group one binary's leftover loops by canonical name."""
    by_stem: Dict[Tuple[str, str], List[LoopProfile]] = defaultdict(list)
    for profile in view.executed_loops():
        if (view.binary.name, profile.loop_id) in consumed:
            continue
        canonical = canonical_loop_name(profile.source_name)
        by_stem[(canonical, _split_stem(profile.source_name))].append(
            profile
        )
    by_canonical: Dict[str, List[_FuzzyCandidate]] = defaultdict(list)
    for (canonical, _stem), profiles in sorted(by_stem.items()):
        ordered = sorted(
            profiles,
            key=lambda p: (view.binary.loops[p.loop_id].split_index, p.loop_id),
        )
        split = [
            p for p in ordered
            if view.binary.loops[p.loop_id].split_index > 0
        ]
        if split and len(split) == len(ordered):
            by_canonical[canonical].append(
                _FuzzyCandidate(profiles=ordered, fragment=True)
            )
        else:
            for profile in ordered:
                by_canonical[canonical].append(
                    _FuzzyCandidate(profiles=[profile], fragment=False)
                )
    return dict(by_canonical)


def _fuzzy_match_loops(
    views: Sequence[_BinaryView],
    consumed: Set[Tuple[str, int]],
    threshold: float,
    details: List[str],
) -> Tuple[List[_LoopMatch], int, int]:
    """Stage 4b: align leftover loops by canonical name + count gate.

    Returns (matches, matched construct count, low-confidence drops).
    Matched fragment groups are consumed whole.
    """
    candidate_maps = [
        _fuzzy_loop_candidates(view, consumed) for view in views
    ]
    matches: List[_LoopMatch] = []
    constructs = 0
    low_dropped = 0
    for canonicals, name_score in _align_names(
        [set(m) for m in candidate_maps]
    ):
        label = canonicals[0]
        groups = [m[c] for m, c in zip(candidate_maps, canonicals)]
        count_maps: List[Dict[int, _FuzzyCandidate]] = []
        ambiguous = False
        for group in groups:
            count_map: Dict[int, _FuzzyCandidate] = {}
            for candidate in group:
                if candidate.rep.entries in count_map:
                    ambiguous = True
                count_map[candidate.rep.entries] = candidate
            count_maps.append(count_map)
        shared_counts = set.intersection(*(set(m) for m in count_maps))
        if ambiguous or len(shared_counts) > 1:
            details.append(f"fuzzy loop {label}: ambiguous candidates")
            continue
        if not shared_counts:
            details.append(f"fuzzy loop {label}: entry counts differ")
            continue
        entries = shared_counts.pop()
        chosen = [count_map[entries] for count_map in count_maps]
        fragment = any(candidate.fragment for candidate in chosen)
        stripped = any(
            candidate.rep.source_name != canonical
            for candidate, canonical in zip(chosen, canonicals)
        )
        multiplicity = max(len(group) for group in groups)
        confidence = name_score * (
            _STRIPPED_BASE if stripped else _PLAIN_BASE
        )
        if fragment:
            confidence *= _FRAGMENT_PENALTY
        if multiplicity > 1:
            confidence /= multiplicity
        if confidence < threshold:
            low_dropped += 1
            details.append(
                f"fuzzy loop {label}: confidence {confidence:.3f} below "
                f"threshold {threshold:.3f}"
            )
            continue
        constructs += 1
        entry_anchors: Dict[str, int] = {}
        branch_anchors: Dict[str, int] = {}
        for view, candidate in zip(views, chosen):
            rep = candidate.rep
            entry_anchors[view.binary.name] = _loop_anchor(
                view, rep.loop_id, MarkerKind.LOOP_ENTRY
            )
            branch_anchors[view.binary.name] = _loop_anchor(
                view, rep.loop_id, MarkerKind.LOOP_BRANCH
            )
            for profile in candidate.profiles:
                consumed.add((view.binary.name, profile.loop_id))
        matches.append(
            _LoopMatch(
                key=("fuzzy", label, "entry"),
                kind=MarkerKind.LOOP_ENTRY,
                total_count=entries,
                anchors=entry_anchors,
                confidence=confidence,
            )
        )
        iteration_counts = {
            candidate.rep.iterations for candidate in chosen
        }
        if len(iteration_counts) == 1 and not fragment:
            matches.append(
                _LoopMatch(
                    key=("fuzzy", label, "branch"),
                    kind=MarkerKind.LOOP_BRANCH,
                    total_count=iteration_counts.pop(),
                    anchors=branch_anchors,
                    confidence=confidence,
                )
            )
    return matches, constructs, low_dropped


def find_mappable_points(
    profiled_binaries: Sequence[Tuple[Binary, CallBranchProfile]],
    enable_signature_recovery: bool = True,
    match_confidence: Optional[float] = None,
) -> Tuple[MarkerSet, MatchReport]:
    """Find the mappable points shared by all binaries.

    ``profiled_binaries`` pairs each binary with its call-and-branch
    profile (all collected with the same input).
    ``enable_signature_recovery`` toggles the paper's Section 3.3
    inlining heuristic (the ablation benchmark turns it off).
    ``match_confidence`` is the fuzzy-fallback acceptance threshold,
    resolved through :func:`repro.runtime.config.
    resolve_match_confidence` when not given explicitly; at the
    default of 1.0 the fuzzy stage is skipped entirely and the result
    is bit-identical to the exact matcher.
    """
    if len(profiled_binaries) < 2:
        raise MatchingError(
            "cross-binary matching needs at least two binaries"
        )
    names = [binary.name for binary, _ in profiled_binaries]
    if len(set(names)) != len(names):
        raise MatchingError(f"duplicate binary names: {names}")
    threshold = resolve_match_confidence(match_confidence)
    views = [
        _BinaryView(binary=binary, profile=profile)
        for binary, profile in profiled_binaries
    ]

    details: List[str] = []
    proc_matches, procs_dropped, matched_proc_names = _match_procedures(
        views, details
    )
    line_matches, consumed, line_dropped = _match_loops_by_line(views, details)
    if enable_signature_recovery:
        sig_matches, recovered, sig_dropped = _recover_by_signature(
            views, consumed, details
        )
    else:
        sig_matches, recovered, sig_dropped = [], 0, 0

    fuzzy_matched_procs: Dict[str, Set[str]] = {name: set() for name in names}
    if threshold < 1.0:
        fuzzy_proc_matches, proc_low_dropped, fuzzy_matched_procs = (
            _fuzzy_match_procedures(
                views, matched_proc_names, threshold, details
            )
        )
        fuzzy_loop_matches, fuzzy_loop_constructs, loop_low_dropped = (
            _fuzzy_match_loops(views, consumed, threshold, details)
        )
    else:
        fuzzy_proc_matches, proc_low_dropped = [], 0
        fuzzy_loop_matches, fuzzy_loop_constructs, loop_low_dropped = [], 0, 0

    points: List[MappablePoint] = []
    anchor_tables: Dict[str, Dict[int, int]] = {name: {} for name in names}
    marker_id = 0
    for key, total, anchors in proc_matches:
        points.append(
            MappablePoint(
                marker_id=marker_id,
                kind=MarkerKind.PROCEDURE,
                key=key,
                total_count=total,
            )
        )
        for binary_name, block_id in anchors.items():
            anchor_tables[binary_name][marker_id] = block_id
        marker_id += 1
    for match in line_matches + sig_matches:
        points.append(
            MappablePoint(
                marker_id=marker_id,
                kind=match.kind,
                key=match.key,
                total_count=match.total_count,
            )
        )
        for binary_name, block_id in match.anchors.items():
            anchor_tables[binary_name][marker_id] = block_id
        marker_id += 1
    for key, total, anchors, confidence in fuzzy_proc_matches:
        points.append(
            MappablePoint(
                marker_id=marker_id,
                kind=MarkerKind.PROCEDURE,
                key=key,
                total_count=total,
                confidence=confidence,
            )
        )
        for binary_name, block_id in anchors.items():
            anchor_tables[binary_name][marker_id] = block_id
        marker_id += 1
    for match in fuzzy_loop_matches:
        points.append(
            MappablePoint(
                marker_id=marker_id,
                kind=match.kind,
                key=match.key,
                total_count=match.total_count,
                confidence=match.confidence,
            )
        )
        for binary_name, block_id in match.anchors.items():
            anchor_tables[binary_name][marker_id] = block_id
        marker_id += 1

    tables = {
        name: MarkerTable(binary_name=name, anchor_blocks=anchor_tables[name])
        for name in names
    }
    marker_set = MarkerSet(points=tuple(points), tables=tables)
    entry_count = sum(
        1 for p in points if p.kind is MarkerKind.LOOP_ENTRY
    )
    branch_count = sum(
        1 for p in points if p.kind is MarkerKind.LOOP_BRANCH
    )

    # Per-binary construct coverage: executed procedures + executed
    # loops are the candidates; exact + fuzzy matches (and every
    # fragment of a consumed split group) are the matched side.
    matched_constructs: Dict[str, int] = {}
    candidate_constructs: Dict[str, int] = {}
    for view in views:
        name = view.binary.name
        consumed_here = sum(
            1 for binary_name, _ in consumed if binary_name == name
        )
        matched_constructs[name] = (
            len(matched_proc_names)
            + len(fuzzy_matched_procs[name])
            + consumed_here
        )
        candidate_constructs[name] = len(
            view.profile.executed_procedures()
        ) + len(view.executed_loops())
    pair_coverage = tuple(
        PairCoverage(
            binary_a=a,
            binary_b=b,
            matched_a=matched_constructs[a],
            candidates_a=candidate_constructs[a],
            matched_b=matched_constructs[b],
            candidates_b=candidate_constructs[b],
        )
        for i, a in enumerate(names)
        for b in names[i + 1:]
    )

    report = MatchReport(
        procedures_matched=len(proc_matches),
        procedures_dropped=procs_dropped,
        loop_entries_matched=entry_count,
        loop_branches_matched=branch_count,
        loops_recovered_by_signature=recovered,
        loops_dropped_ambiguous=line_dropped + sig_dropped,
        dropped_details=tuple(details),
        procedures_matched_fuzzy=len(fuzzy_proc_matches),
        loops_matched_fuzzy=fuzzy_loop_constructs,
        low_confidence_dropped=proc_low_dropped + loop_low_dropped,
        confidence_threshold=threshold,
        min_confidence=marker_set.min_confidence(),
        pair_coverage=pair_coverage,
    )
    return marker_set, report
